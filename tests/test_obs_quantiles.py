"""QuantileDigest accuracy: bounded relative error, merge, wire form."""

import random

import pytest

from repro.obs.quantiles import QuantileDigest, digest_of

#: the digest's advertised worst-case relative error at growth 1.07 is
#: ~3.5%; test against a slightly looser bound to stay float-safe
RELATIVE_ERROR = 0.04


def exact_quantile(values, q):
    ordered = sorted(values)
    rank = q * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    fraction = rank - low
    return ordered[low] * (1 - fraction) + ordered[high] * fraction


def assert_close(estimate, exact):
    assert estimate is not None
    assert abs(estimate - exact) <= RELATIVE_ERROR * max(exact, 1e-9) + 1e-9


class TestAccuracy:
    @pytest.mark.parametrize("q", [0.5, 0.95, 0.99])
    def test_uniform_distribution(self, q):
        rng = random.Random(7)
        values = [rng.uniform(0.001, 2.0) for __ in range(5000)]
        digest = digest_of(values)
        assert_close(digest.quantile(q), exact_quantile(values, q))

    @pytest.mark.parametrize("q", [0.5, 0.95, 0.99])
    def test_lognormal_distribution(self, q):
        # Heavy tails are where naive fixed-width histograms fall over;
        # the geometric grid's error stays relative, not absolute.
        rng = random.Random(11)
        values = [rng.lognormvariate(-5.0, 1.5) for __ in range(5000)]
        digest = digest_of(values)
        assert_close(digest.quantile(q), exact_quantile(values, q))

    def test_single_value(self):
        digest = digest_of([0.125])
        for q in (0.0, 0.5, 1.0):
            assert digest.quantile(q) == pytest.approx(0.125, rel=0.05)

    def test_estimates_clamp_to_observed_range(self):
        digest = digest_of([0.010, 0.011, 0.012])
        assert digest.quantile(0.0) >= 0.010
        assert digest.quantile(1.0) <= 0.012

    def test_overflow_bucket_reports_exact_maximum(self):
        digest = QuantileDigest(max_value=1.0)
        digest.observe(0.5)
        digest.observe(7200.0)  # beyond max_value -> overflow
        assert digest.quantile(1.0) == 7200.0

    def test_values_below_min_clamp_into_first_bucket(self):
        digest = QuantileDigest(min_value=1e-3)
        digest.observe(1e-9)
        assert digest.count == 1
        assert digest.quantile(0.5) == 1e-9  # clamped to observed min


class TestBookkeeping:
    def test_empty_digest(self):
        digest = QuantileDigest()
        assert digest.count == 0
        assert digest.quantile(0.5) is None
        assert digest.mean == 0.0

    def test_rejects_bad_observations(self):
        digest = QuantileDigest()
        with pytest.raises(ValueError):
            digest.observe(-0.1)
        with pytest.raises(ValueError):
            digest.observe(float("nan"))
        with pytest.raises(ValueError):
            digest.observe(float("inf"))

    def test_rejects_bad_quantile(self):
        with pytest.raises(ValueError):
            digest_of([1.0]).quantile(1.5)

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            QuantileDigest(min_value=0.0)
        with pytest.raises(ValueError):
            QuantileDigest(growth=1.0)

    def test_summary_keys(self):
        summary = digest_of([0.1, 0.2, 0.3]).summary()
        for key in (
            "count", "sum_seconds", "mean_seconds", "min_seconds",
            "max_seconds", "p50_seconds", "p95_seconds", "p99_seconds",
        ):
            assert key in summary
        assert summary["count"] == 3


class TestComposition:
    def test_merge_equals_combined_stream(self):
        rng = random.Random(3)
        left = [rng.uniform(0.001, 1.0) for __ in range(1000)]
        right = [rng.uniform(0.5, 4.0) for __ in range(1000)]
        merged = digest_of(left)
        merged.merge(digest_of(right))
        combined = digest_of(left + right)
        assert merged.count == combined.count
        for q in (0.5, 0.95, 0.99):
            assert merged.quantile(q) == combined.quantile(q)

    def test_merge_rejects_different_geometry(self):
        with pytest.raises(ValueError):
            QuantileDigest().merge(QuantileDigest(growth=1.5))

    def test_plain_round_trip(self):
        digest = digest_of([0.001, 0.01, 0.1, 1.0, 10.0])
        clone = QuantileDigest.from_plain(digest.to_plain())
        assert clone.count == digest.count
        assert clone.minimum == digest.minimum
        assert clone.maximum == digest.maximum
        for q in (0.5, 0.95, 0.99):
            assert clone.quantile(q) == digest.quantile(q)

    def test_plain_round_trip_is_json_safe(self):
        import json

        digest = digest_of([0.25, 0.75])
        clone = QuantileDigest.from_plain(
            json.loads(json.dumps(digest.to_plain()))
        )
        assert clone.quantile(0.5) == digest.quantile(0.5)
