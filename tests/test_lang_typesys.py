"""Tests for the mini-IR type system and struct layout."""

import pytest

from repro.lang.ast import TypeExpr
from repro.lang.parser import parse
from repro.lang.typesys import (
    WORD,
    ArrayType,
    IntType,
    PointerType,
    StructType,
    TypeError_,
    TypeTable,
)


def table(source):
    return TypeTable(parse(source))


class TestResolution:
    def test_int(self):
        types = table("")
        resolved = types.resolve(TypeExpr("int"))
        assert isinstance(resolved, IntType)
        assert resolved.size() == WORD

    def test_pointer(self):
        types = table("")
        resolved = types.resolve(TypeExpr("int", pointer_depth=2))
        assert isinstance(resolved, PointerType)
        assert isinstance(resolved.pointee, PointerType)
        assert resolved.size() == WORD

    def test_array(self):
        types = table("")
        resolved = types.resolve(TypeExpr("int", array_length=10))
        assert isinstance(resolved, ArrayType)
        assert resolved.size() == 10 * WORD

    def test_array_of_pointers(self):
        types = table("")
        resolved = types.resolve(TypeExpr("int", pointer_depth=1, array_length=4))
        assert isinstance(resolved, ArrayType)
        assert isinstance(resolved.element, PointerType)

    def test_unknown_struct(self):
        types = table("")
        with pytest.raises(TypeError_):
            types.resolve(TypeExpr("ghost"))

    def test_invalid_array_length(self):
        types = table("")
        with pytest.raises(TypeError_):
            types.resolve(TypeExpr("int", array_length=0))


class TestStructLayout:
    def test_simple_layout(self):
        types = table("struct pair { int a; int b; }")
        struct = types.struct("pair")
        assert struct.size() == 2 * WORD
        assert struct.field("a").offset == 0
        assert struct.field("b").offset == WORD

    def test_nested_struct_by_value(self):
        types = table(
            "struct inner { int x; int y; }"
            "struct outer { int tag; inner body; int tail; }"
        )
        outer = types.struct("outer")
        assert outer.field("body").offset == WORD
        assert outer.field("tail").offset == 3 * WORD
        assert outer.size() == 4 * WORD

    def test_array_field(self):
        types = table("struct buf { int len; int[8] data; }")
        struct = types.struct("buf")
        assert struct.field("data").offset == WORD
        assert struct.size() == 9 * WORD

    def test_self_referential_pointer(self):
        types = table("struct node { int data; node* next; }")
        struct = types.struct("node")
        assert struct.size() == 2 * WORD
        next_field = struct.field("next")
        assert isinstance(next_field.type, PointerType)

    def test_mutually_recursive_pointers(self):
        types = table(
            "struct a { b* other; } struct b { a* other; }"
        )
        assert types.struct("a").size() == WORD
        assert types.struct("b").size() == WORD

    def test_recursive_by_value_rejected(self):
        with pytest.raises(TypeError_):
            table("struct bad { int x; bad inner; }")

    def test_duplicate_field_rejected(self):
        with pytest.raises(TypeError_):
            table("struct bad { int x; int x; }")

    def test_unknown_field(self):
        types = table("struct pair { int a; }")
        with pytest.raises(TypeError_):
            types.struct("pair").field("z")

    def test_unknown_field_struct_type(self):
        with pytest.raises(TypeError_):
            table("struct bad { ghost g; }")

    def test_str_forms(self):
        types = table("struct node { int data; node* next; }")
        assert str(types.resolve(TypeExpr("int"))) == "int"
        assert str(types.resolve(TypeExpr("node", 1))) == "node*"
        assert str(types.resolve(TypeExpr("int", 0, 3))) == "int[3]"
        assert isinstance(types.struct("node"), StructType)
