"""The cross-module class model behind the lockset checker.

Builds, from the parsed tree alone, what the race detector needs to
know about every class:

* which attributes exist, where they are assigned, and which of them
  are **locks** (``self._lock = threading.Lock()`` and friends, plus a
  naming fallback for locks constructed elsewhere);
* which attributes hold instances of other project classes
  (``self.cache = LRUCache(...)``) -- the *composition* edges along
  which thread-shared status propagates;
* which methods exist, and which private methods are only ever called
  from ``__init__`` (initialization extensions, exempt from lockset
  rules) or only from under a held lock (they inherit it).

Thread-shared inference starts from the seed classes named in the
issue (the daemon, the store, the cache, the quarantine, the event
log, the telemetry registry), adds every ``# repro: shared`` class,
and closes over inheritance and composition: anything a shared class
holds in an attribute, or derives from one, is reachable from the same
threads.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.selfcheck.loader import SourceModule, class_directives, dotted_name

#: classes that are thread-shared by construction in this codebase
DEFAULT_SHARED_SEEDS = frozenset(
    {
        "StoreServer",
        "LRUCache",
        "ProfileStore",
        "Quarantine",
        "EventLog",
        "Registry",
        # SCALE-OUT cluster state: handler threads, the health-probe
        # thread, and the supervisor callback all share these
        "RingState",
        "ShardHealthTable",
        "DigestMerger",
    }
)

#: threading constructors whose product is a mutual-exclusion guard
_LOCK_CONSTRUCTORS = frozenset(
    {
        "Lock",
        "RLock",
        "Condition",
        "threading.Lock",
        "threading.RLock",
        "threading.Condition",
    }
)


def is_lock_name(name: str) -> bool:
    """Naming-convention fallback: ``lock`` / ``*_lock`` attributes."""
    return name == "lock" or name.endswith("_lock")


def is_io_lock_name(name: str) -> bool:
    """Locks that exist to serialize I/O, not to guard in-memory state.

    Holding one across a write is the *fix* for RL103, so the checker
    must not re-convict it: the convention is a ``sink``/``io`` lock
    name (``_sink_lock``, ``_io_lock``).
    """
    return "sink" in name or "io_lock" in name or "write_lock" in name


@dataclass
class AttrInfo:
    """One instance attribute of a class."""

    name: str
    assigned_in_init: bool = False
    #: (line, col, method) of every mutation outside init context
    post_init_mutations: List[Tuple[int, int, str]] = field(
        default_factory=list
    )
    #: class name when assigned ``self.x = ClassName(...)``
    value_class: Optional[str] = None
    is_lock: bool = False


@dataclass
class ClassInfo:
    name: str
    module: SourceModule
    node: ast.ClassDef
    bases: List[str] = field(default_factory=list)
    attrs: Dict[str, AttrInfo] = field(default_factory=dict)
    methods: Dict[str, ast.FunctionDef] = field(default_factory=dict)
    directives: Set[str] = field(default_factory=set)

    @property
    def qualified(self) -> str:
        return f"{self.module.name}.{self.name}"

    @property
    def lock_attrs(self) -> Set[str]:
        return {a.name for a in self.attrs.values() if a.is_lock}

    @property
    def synchronized_externally(self) -> bool:
        return "synchronized-externally" in self.directives

    def guarded_attrs(self) -> Set[str]:
        """Attributes with at least one post-init mutation site --
        the state a lock exists to protect."""
        return {
            a.name
            for a in self.attrs.values()
            if a.post_init_mutations and not a.is_lock
        }


def _is_lock_call(call: ast.AST) -> bool:
    if not isinstance(call, ast.Call):
        return False
    name = dotted_name(call.func)
    return name in _LOCK_CONSTRUCTORS if name is not None else False


def _class_of_value(value: ast.AST) -> Optional[str]:
    """``ClassName`` when the value is a direct instantiation."""
    if isinstance(value, ast.Call):
        name = dotted_name(value.func)
        if name is not None:
            tail = name.rsplit(".", 1)[-1]
            if tail[:1].isupper():
                return tail
    return None


_MUTATING_METHODS = frozenset(
    {
        "append",
        "appendleft",
        "extend",
        "insert",
        "remove",
        "discard",
        "pop",
        "popitem",
        "popleft",
        "clear",
        "update",
        "setdefault",
        "add",
        "move_to_end",
        "sort",
        "reverse",
    }
)


def self_attr_of_target(target: ast.AST) -> Optional[str]:
    """The ``self`` attribute a store/del target mutates, if any.

    ``self.x = ...`` and ``self.x[...] = ...`` and ``self.x.y = ...``
    all mutate state hanging off attribute ``x``.
    """
    node = target
    while isinstance(node, (ast.Subscript, ast.Attribute)):
        parent = node.value
        if (
            isinstance(node, ast.Attribute)
            and isinstance(parent, ast.Name)
            and parent.id == "self"
        ):
            return node.attr
        node = parent
    return None


def mutated_self_attr(node: ast.AST) -> Optional[Tuple[str, ast.AST]]:
    """``(attr, site)`` when ``node`` mutates a ``self`` attribute."""
    if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
        targets = (
            node.targets if isinstance(node, ast.Assign) else [node.target]
        )
        for target in targets:
            for element in _flatten_targets(target):
                attr = self_attr_of_target(element)
                if attr is not None:
                    return attr, node
    elif isinstance(node, ast.Delete):
        for target in node.targets:
            attr = self_attr_of_target(target)
            if attr is not None:
                return attr, node
    elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        if node.func.attr in _MUTATING_METHODS:
            receiver = node.func.value
            attr = None
            if (
                isinstance(receiver, ast.Attribute)
                and isinstance(receiver.value, ast.Name)
                and receiver.value.id == "self"
            ):
                attr = receiver.attr
            if attr is not None:
                return attr, node
    return None


def _flatten_targets(target: ast.AST):
    if isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _flatten_targets(element)
    else:
        yield target


def _init_like_methods(info: ClassInfo) -> Set[str]:
    """``__init__`` plus private methods called only from init context."""
    call_sites: Dict[str, Set[str]] = {}
    for method_name, method in info.methods.items():
        for node in ast.walk(method):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == "self"
            ):
                call_sites.setdefault(node.func.attr, set()).add(method_name)
    init_like = {"__init__"}
    changed = True
    while changed:
        changed = False
        for method_name in info.methods:
            if method_name in init_like:
                continue
            if not method_name.startswith("_"):
                continue
            sites = call_sites.get(method_name)
            if sites and sites <= init_like:
                init_like.add(method_name)
                changed = True
    return init_like


def build_class_info(module: SourceModule, node: ast.ClassDef) -> ClassInfo:
    info = ClassInfo(
        name=node.name,
        module=module,
        node=node,
        bases=[dotted_name(b) or "" for b in node.bases],
        directives=class_directives(module, node),
    )
    for child in node.body:
        if isinstance(child, ast.FunctionDef):
            info.methods[child.name] = child
    # first pass: attribute discovery (init assignments, locks, classes)
    for method_name, method in info.methods.items():
        for inner in ast.walk(method):
            found = mutated_self_attr(inner)
            if found is None:
                continue
            attr_name, site = found
            attr = info.attrs.setdefault(attr_name, AttrInfo(attr_name))
            if isinstance(
                site, (ast.Assign, ast.AnnAssign)
            ) and method_name == "__init__":
                attr.assigned_in_init = True
                value = site.value
                if value is not None:
                    if _is_lock_call(value):
                        attr.is_lock = True
                    value_class = _class_of_value(value)
                    if value_class is not None and not attr.is_lock:
                        attr.value_class = value_class
            if is_lock_name(attr_name):
                attr.is_lock = True
            # composition edges from any method, not just __init__
            if isinstance(site, (ast.Assign, ast.AnnAssign)):
                value = site.value
                if value is not None and not attr.is_lock:
                    value_class = _class_of_value(value)
                    if value_class is not None:
                        attr.value_class = value_class
    # second pass: post-init mutation sites
    init_like = _init_like_methods(info)
    for method_name, method in info.methods.items():
        if method_name in init_like:
            continue
        for inner in ast.walk(method):
            found = mutated_self_attr(inner)
            if found is None:
                continue
            attr_name, site = found
            attr = info.attrs.setdefault(attr_name, AttrInfo(attr_name))
            attr.post_init_mutations.append(
                (site.lineno, site.col_offset, method_name)
            )
    return info


class ClassIndex:
    """Every class in the analyzed tree, keyed by bare and dotted name."""

    def __init__(self, modules: List[SourceModule]) -> None:
        self.by_name: Dict[str, ClassInfo] = {}
        self.all: List[ClassInfo] = []
        for module in modules:
            for node in module.tree.body:
                if isinstance(node, ast.ClassDef):
                    info = build_class_info(module, node)
                    self.all.append(info)
                    # bare-name lookup: first definition wins, which is
                    # fine in this tree (class names are unique)
                    self.by_name.setdefault(info.name, info)
                    self.by_name[info.qualified] = info

    def get(self, name: Optional[str]) -> Optional[ClassInfo]:
        if name is None:
            return None
        return self.by_name.get(name)

    def shared_classes(
        self, seeds: frozenset = DEFAULT_SHARED_SEEDS
    ) -> Set[str]:
        """Bare names of thread-shared classes: seeds + annotations,
        closed over inheritance and composition."""
        shared: Set[str] = set()
        for info in self.all:
            if info.name in seeds or "shared" in info.directives:
                shared.add(info.name)
            if info.synchronized_externally:
                shared.add(info.name)
        changed = True
        while changed:
            changed = False
            for info in self.all:
                if info.name in shared:
                    # composition: attributes holding project classes
                    for attr in info.attrs.values():
                        held = self.get(attr.value_class)
                        if held is not None and held.name not in shared:
                            shared.add(held.name)
                            changed = True
                    continue
                # inheritance: subclasses of shared classes are shared
                for base in info.bases:
                    base_info = self.get(base)
                    if base_info is not None and base_info.name in shared:
                        shared.add(info.name)
                        changed = True
                        break
        return shared
