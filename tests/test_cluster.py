"""SCALE-OUT integration: router + supervised shards, end to end.

A real 3-shard cluster (subprocess shards, in-process router) backs
the module-scoped fixture; destructive drills (kill, drain) boot their
own.  The satellite contracts live here too: ``repro-serve serve
--port 0`` announcing its bound address, and SIGTERM draining with a
``server_shutdown`` event.
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request

import pytest

import repro
from repro.cluster.loadgen import (
    LoadReport,
    build_plan,
    run_load,
    synthetic_documents,
)
from repro.cluster.router import ClusterRouter
from repro.cluster.supervisor import ShardSupervisor
from repro.obs.events import EventLog, read_events
from repro.store.blobs import sha256_hex


class Cluster:
    """One booted cluster and the plumbing the tests poke at."""

    def __init__(self, root, shards=3, replicas=2):
        self.root = str(root)
        self.events = EventLog()
        self.router = ClusterRouter(
            port=0, replicas=replicas, probe_interval=0.2, events=self.events
        )
        self.supervisor = ShardSupervisor(
            self.root,
            shards=shards,
            events=self.events,
            on_address_change=self.router.attach_shard,
            drain_deadline=2.0,
            backoff=0.1,
        )
        self.router.supervisor = self.supervisor

    def start(self):
        self.supervisor.start()
        self.router.start()
        return self

    def stop(self):
        self.router.stop()
        self.supervisor.stop()

    @property
    def url(self):
        return self.router.url

    def get_json(self, path, timeout=15):
        with urllib.request.urlopen(self.url + path, timeout=timeout) as r:
            return r.status, json.loads(r.read().decode("utf-8"))

    def post(self, path, data=b"", timeout=60, headers=None):
        request = urllib.request.Request(
            self.url + path, data=data, method="POST",
            headers=headers or {},
        )
        with urllib.request.urlopen(request, timeout=timeout) as r:
            return r.status, json.loads(r.read().decode("utf-8"))

    def wait_for(self, predicate, deadline=20.0, interval=0.2):
        end = time.time() + deadline
        while time.time() < end:
            if predicate():
                return True
            time.sleep(interval)
        return False


@pytest.fixture(scope="module")
def cluster(tmp_path_factory):
    instance = Cluster(tmp_path_factory.mktemp("cluster")).start()
    yield instance
    instance.stop()


@pytest.fixture(scope="module")
def documents():
    return synthetic_documents(count=6, seed=3)


class TestRoutedWrites:
    def test_ingest_replicates(self, cluster, documents):
        workload, __, data = documents[0]
        status, payload = cluster.post(
            f"/ingest?workload={workload}", data=data
        )
        assert status == 201
        assert payload["digest"] == sha256_hex(data)
        assert payload["written"] == 2
        assert payload["capture_completeness"] == 1.0
        assert len(set(payload["replicas"])) == 2
        assert not payload["degraded"]

    def test_replicas_follow_the_ring(self, cluster, documents):
        workload, __, data = documents[1]
        __, payload = cluster.post(f"/ingest?workload={workload}", data=data)
        assert payload["replicas"] == cluster.router.ring.place(
            payload["digest"]
        )

    def test_corrupt_document_rejected_everywhere(self, cluster):
        status_error = None
        try:
            cluster.post("/ingest?workload=bad", data=b"not a profile")
        except urllib.error.HTTPError as exc:
            status_error = exc.code
        assert status_error == 400

    def test_stream_ingest_places_each_document(self, cluster, documents):
        from repro.core.binformat import StreamWriter

        pending = []
        writer = StreamWriter(pending.append)
        writer.begin()
        for workload, __, data in documents[:2]:
            writer.send_document(workload, data)
        writer.close()
        body = b"".join(pending)
        status, payload = cluster.post(
            "/ingest/stream", data=body,
        )
        assert status == 201
        assert payload["complete"]
        assert len(payload["ingested"]) == 2
        for row in payload["ingested"]:
            assert row["capture_completeness"] == 1.0


class TestRoutedReads:
    def test_get_round_trips_bit_identical(self, cluster, documents):
        workload, __, data = documents[2]
        __, ingest = cluster.post(f"/ingest?workload={workload}", data=data)
        status, document = cluster.get_json(f"/get?run={ingest['digest']}")
        assert status == 200
        assert document == json.loads(data.decode("utf-8"))

    def test_query_runs_dedupes_replicas(self, cluster, documents):
        workload, __, data = documents[3]
        cluster.post(f"/ingest?workload={workload}", data=data)
        status, payload = cluster.get_json(f"/query/runs?workload={workload}")
        assert status == 200
        digests = [row["digest"] for row in payload["runs"]]
        # stored on two shards, reported once
        assert len(digests) == len(set(digests))
        assert sha256_hex(data) in digests
        assert payload["capture_completeness"] == 1.0
        assert not payload["degraded"]

    def test_query_entries_dedupes_replicas(self, cluster, documents):
        workload, __, data = documents[2]
        digest = sha256_hex(data)
        status, payload = cluster.get_json(f"/query/entries?run={digest}")
        assert status == 200
        assert payload["entries"]
        keys = [
            (row["digest"], row["instruction"], row["group"])
            for row in payload["entries"]
        ]
        assert len(keys) == len(set(keys))

    def test_diff_resolves_cluster_wide(self, cluster, documents):
        __, __fmt, data_a = documents[2]
        __, __fmt2, data_b = documents[3]
        status, payload = cluster.get_json(
            f"/diff?a={sha256_hex(data_a)}&b={sha256_hex(data_b)}"
        )
        assert status == 200
        assert "regressions" in payload

    def test_blob_is_verified_raw_bytes(self, cluster, documents):
        workload, __, data = documents[4]
        __, ingest = cluster.post(f"/ingest?workload={workload}", data=data)
        request = urllib.request.Request(
            cluster.url + f"/blob?digest={ingest['digest']}"
        )
        with urllib.request.urlopen(request, timeout=15) as response:
            served = response.read()
            headers = dict(response.headers)
        assert served == data
        assert headers["X-Repro-Digest"] == ingest["digest"]
        assert headers["X-Repro-Served-By"] in ingest["replicas"]


class TestReadRepair:
    def test_corrupt_replica_heals_byte_for_byte(self, cluster, documents):
        workload, __, data = documents[5]
        __, ingest = cluster.post(f"/ingest?workload={workload}", data=data)
        digest = ingest["digest"]
        victim = ingest["replicas"][0]
        blob_path = os.path.join(
            cluster.root, victim, "objects", digest[:2], digest[2:]
        )
        with open(blob_path, "wb") as handle:
            handle.write(b"bit rot")
        request = urllib.request.Request(cluster.url + f"/blob?digest={digest}")
        with urllib.request.urlopen(request, timeout=15) as response:
            served = response.read()
        assert served == data  # the corrupt replica never answers
        # the victim now holds the good bytes again (ask it directly)
        assert cluster.wait_for(
            lambda: self._shard_blob(cluster, victim, digest) == data
        )
        repairs = [
            record
            for record in cluster.events.tail()
            if record["kind"] == "read_repair" and record["digest"] == digest
        ]
        assert repairs and repairs[-1]["repaired"]
        __, clusterz = cluster.get_json("/clusterz")
        assert clusterz["replication"]["read_repairs"] >= 1

    @staticmethod
    def _shard_blob(cluster, shard, digest):
        url = cluster.router.health.url(shard)
        try:
            with urllib.request.urlopen(
                url + f"/blob?digest={digest}", timeout=10
            ) as response:
                return response.read()
        except (urllib.error.URLError, OSError):
            return None


class TestObservability:
    def test_healthz_reports_all_alive(self, cluster):
        status, payload = cluster.get_json("/healthz")
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["shards_alive"] == payload["shards_total"] == 3
        assert payload["capture_completeness"] == 1.0
        assert payload["port"] == cluster.router.address[1]

    def test_clusterz_layout_and_health(self, cluster):
        __, payload = cluster.get_json("/clusterz")
        assert sorted(payload["ring"]["shards"]) == [
            "shard0", "shard1", "shard2",
        ]
        assert abs(
            sum(payload["ring"]["keyspace_share"].values()) - 1.0
        ) < 1e-6
        for row in payload["shards"].values():
            assert row["url"] and isinstance(row["pid"], int)

    def test_metricsz_merges_shard_digests(self, cluster):
        # make sure every shard has served something
        for __ in range(3):
            cluster.get_json("/query/runs")
        __, payload = cluster.get_json("/metricsz")
        assert payload["router"]["endpoints"]["*"]["count"] >= 1
        cluster_all = payload["cluster"]["endpoints"].get("*")
        assert cluster_all and cluster_all["count"] >= 1
        shard_counts = sum(
            row["endpoints"]["*"]["count"]
            for row in payload["shards"].values()
            if row.get("endpoints")
        )
        # the merge carries every shard's samples
        assert cluster_all["count"] == shard_counts

    def test_trace_header_propagates_to_shards(self, cluster, documents):
        workload, __, data = documents[0]
        trace_id = "ab" * 16
        header = f"{trace_id}-{'cd' * 8}"
        request = urllib.request.Request(
            cluster.url + f"/ingest?workload={workload}",
            data=data,
            method="POST",
            headers={"X-Repro-Trace": header},
        )
        with urllib.request.urlopen(request, timeout=15) as response:
            echoed = response.headers.get("X-Repro-Trace")
        assert echoed and echoed.split("-")[0] == trace_id
        status, payload = cluster.get_json(f"/tracez?trace={trace_id}")
        assert status == 200
        shards_seen = {
            record.get("shard")
            for record in payload["records"]
            if record.get("shard")
        }
        assert shards_seen  # at least one shard logged under this trace


class TestFaultDrill:
    def test_kill_one_shard_zero_client_errors(self, tmp_path):
        cluster = Cluster(tmp_path / "drill").start()
        try:
            outcome = {}

            def killer():
                time.sleep(0.6)
                outcome["pid"] = cluster.supervisor.kill_shard("shard1")

            thread = threading.Thread(target=killer)
            thread.start()
            report = run_load(
                cluster.url, requests=120, concurrency=6, seed=11
            )
            thread.join()
            assert outcome["pid"] is not None
            assert report.failures == 0
            assert report.server_errors == 0
            assert report.completed + report.client_errors == report.requests
            # supervisor restarts the shard; the router re-marks it live
            assert cluster.wait_for(
                lambda: cluster.get_json("/clusterz")[1]["shards"]["shard1"][
                    "alive"
                ]
                and cluster.get_json("/clusterz")[1]["shards"]["shard1"][
                    "restarts"
                ]
                >= 1
            )
            restarts = [
                record
                for record in cluster.events.tail()
                if record["kind"] == "shard_restart"
            ]
            assert restarts and restarts[0]["shard"] == "shard1"
        finally:
            cluster.stop()

    def test_drain_relocates_and_stops(self, tmp_path):
        cluster = Cluster(tmp_path / "drain").start()
        try:
            digests = []
            for workload, __, data in synthetic_documents(count=4, seed=7):
                __, payload = cluster.post(
                    f"/ingest?workload={workload}", data=data
                )
                digests.append(payload["digest"])
            status, payload = cluster.post("/drain?shard=shard2")
            assert status == 200
            assert payload["stopped"]
            assert "error" not in payload
            assert "shard2" not in payload["ring"]["shards"]
            # every digest still fully readable from the remaining pair
            for digest in digests:
                status, __doc = cluster.get_json(f"/get?run={digest}")
                assert status == 200
            drains = [
                record
                for record in cluster.events.tail()
                if record["kind"] == "shard_drain"
            ]
            assert drains and drains[0]["shard"] == "shard2"
        finally:
            cluster.stop()


class TestServeCliContract:
    """The --port 0 announce + SIGTERM drain satellites, end to end."""

    def _spawn(self, root):
        env = dict(os.environ)
        src = os.path.dirname(
            os.path.dirname(os.path.abspath(repro.__file__))
        )
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        return subprocess.Popen(
            [
                sys.executable, "-m", "repro.store.serve_cli", "serve",
                "--root", str(root), "--port", "0",
                "--trace-out", str(root / "events.jsonl"),
                "--drain-deadline", "2.0",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            env=env,
            bufsize=0,
        )

    def test_port_zero_announces_and_sigterm_drains(self, tmp_path):
        proc = self._spawn(tmp_path)
        try:
            address = None
            pending = b""
            deadline = time.time() + 30
            while address is None and time.time() < deadline:
                piece = proc.stdout.read(4096)
                if not piece:
                    break
                pending += piece
                while b"\n" in pending:
                    line, __, pending = pending.partition(b"\n")
                    text = line.decode("utf-8", "replace").strip()
                    if text.startswith("listening "):
                        address = text.split(" ", 1)[1]
                        break
            assert address, "daemon never announced its bound address"
            host, port = address.rsplit(":", 1)
            assert int(port) > 0
            with urllib.request.urlopen(
                f"http://{host}:{port}/healthz", timeout=10
            ) as response:
                payload = json.loads(response.read().decode("utf-8"))
            assert payload["host"] == host
            assert payload["port"] == int(port)
        finally:
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=15) == 0
        events = read_events(str(tmp_path / "events.jsonl"))
        shutdown = [e for e in events if e["kind"] == "server_shutdown"]
        assert len(shutdown) == 1
        assert shutdown[0]["drained"] is True
        assert shutdown[0]["in_flight"] == 0


class TestLoadgenUnits:
    def test_plan_is_deterministic(self):
        assert build_plan(50, seed=4) == build_plan(50, seed=4)
        assert build_plan(50, seed=4) != build_plan(50, seed=5)

    def test_plan_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            build_plan(10, seed=0, mix={"no-such-op": 1.0})

    def test_documents_are_distinct(self):
        docs = synthetic_documents(count=6, seed=1)
        digests = {sha256_hex(data) for __, __fmt, data in docs}
        assert len(digests) == 6
        assert {fmt for __, fmt, __data in docs} == {"json", "binary"}

    def test_report_merge_sums_counts_and_digests(self):
        first = LoadReport()
        first.record("get", 0.010, 200)
        first.record("get", 0.020, 503)
        second = LoadReport()
        second.record("get", 0.030, 200)
        second.record("diff", 0.040, None)
        first.merge(second)
        assert first.requests == 4
        assert first.completed == 2
        assert first.server_errors == 1
        assert first.failures == 1
        assert first.digests["*"].count == 4
        rebuilt = LoadReport.from_plain(first.to_plain())
        assert rebuilt.requests == 4
        assert rebuilt.digests["get"].count == 3
