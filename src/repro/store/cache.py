"""A thread-safe LRU cache of decoded profiles.

Decoding a profile (grammar expansion, LMAD reconstruction) is orders
of magnitude more expensive than a manifest lookup, and the serving
daemon sees the same handful of hot runs queried repeatedly -- the
classic cache shape.  Capacity is bounded by entry count (profiles of
one sweep are similar sizes), eviction is least-recently-used, and hit
/ miss totals are exposed for the daemon's ``/metricsz`` endpoint and
the benchmark's hit-rate floor.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Callable, Tuple


class LRUCache:
    """Bounded get-or-load cache with LRU eviction and hit accounting."""

    def __init__(self, capacity: int = 32) -> None:
        if capacity < 1:
            raise ValueError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._entries: "OrderedDict[Any, Any]" = OrderedDict()
        self._lock = threading.Lock()

    def get_or_load(self, key: Any, loader: Callable[[], Any]) -> Any:
        """The cached value for ``key``, loading it on a miss.

        The loader runs outside the lock: a slow decode must not stall
        hits on other keys.  Two threads missing the same key may both
        decode; the second result simply wins, which is harmless because
        decodes are deterministic.
        """
        with self._lock:
            if key in self._entries:
                self.hits += 1
                self._entries.move_to_end(key)
                return self._entries[key]
            self.misses += 1
        value = loader()
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
        return value

    def invalidate(self, key: Any) -> None:
        with self._lock:
            self._entries.pop(key, None)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def hit_rate(self) -> float:
        """Hits over lookups, 0.0 before any lookup.

        Taken under the lock: ``hits`` and ``misses`` advance
        independently, so an unlocked read could pair a fresh ``hits``
        with a stale ``misses`` and report a rate above 1.0.
        """
        with self._lock:
            total = self.hits + self.misses
            return self.hits / total if total else 0.0

    def stats(self) -> Tuple[int, int, int]:
        """(hits, misses, evictions) -- one consistent snapshot."""
        with self._lock:
            return self.hits, self.misses, self.evictions
