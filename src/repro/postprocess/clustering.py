"""Cache-conscious object clustering from object-relative profiles.

One of the optimizations the paper's profiles exist to feed: "the use
of object-level grammar for object clustering or global variable
re-mapping" (Section 3.2, citing Rubin/Bodik/Chilimbi and Calder's
cache-conscious data placement).  Objects that are accessed together
should live together; the object dimension of the profile says exactly
which those are, *independently of where the allocator happened to put
them*.

The pipeline:

1. build a temporal co-access affinity graph over objects from the
   translated stream;
2. order objects by greedy affinity chaining (hottest first, repeatedly
   appending the unplaced object with the strongest affinity to the
   cluster tail);
3. assign packed addresses in that order -- the layout a
   cache-conscious allocator would have produced;
4. replay the access stream under both layouts through the cache
   simulator (:mod:`repro.runtime.cache`) and compare miss rates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.cdc import translate_trace
from repro.core.events import Trace
from repro.core.omc import ObjectManager
from repro.core.tuples import ObjectRelativeAccess
from repro.runtime.cache import (
    CacheConfig,
    SimulationComparison,
    simulate,
)
from repro.runtime.memory import align_up

ObjectRef = Tuple[int, int]  # (group, serial)


def affinity_graph(
    stream: Iterable[ObjectRelativeAccess], window: int = 8
) -> Dict[Tuple[ObjectRef, ObjectRef], int]:
    """Co-access affinity: how often two objects appear within
    ``window`` accesses of each other."""
    recent: List[ObjectRef] = []
    edges: Dict[Tuple[ObjectRef, ObjectRef], int] = {}
    for access in stream:
        if access.wild:
            continue
        reference = (access.group, access.object_serial)
        for other in recent:
            if other == reference:
                continue
            edge = (min(reference, other), max(reference, other))
            edges[edge] = edges.get(edge, 0) + 1
        recent.append(reference)
        if len(recent) > window:
            recent.pop(0)
    return edges


def cluster_order(
    objects: Sequence[ObjectRef],
    edges: Dict[Tuple[ObjectRef, ObjectRef], int],
    heat: Optional[Dict[ObjectRef, int]] = None,
) -> List[ObjectRef]:
    """Greedy affinity chaining: seed with the hottest object, then keep
    appending the unplaced object most affine to the current tail (or
    the next hottest when the tail has no unplaced neighbours)."""
    heat = heat or {}
    neighbours: Dict[ObjectRef, Dict[ObjectRef, int]] = {}
    for (a, b), weight in edges.items():
        neighbours.setdefault(a, {})[b] = weight
        neighbours.setdefault(b, {})[a] = weight
    unplaced = set(objects)
    by_heat = sorted(objects, key=lambda o: heat.get(o, 0), reverse=True)
    order: List[ObjectRef] = []
    tail: Optional[ObjectRef] = None
    heat_cursor = 0
    while unplaced:
        candidate: Optional[ObjectRef] = None
        if tail is not None:
            options = [
                (weight, other)
                for other, weight in neighbours.get(tail, {}).items()
                if other in unplaced
            ]
            if options:
                candidate = max(options)[1]
        if candidate is None:
            while by_heat[heat_cursor] not in unplaced:
                heat_cursor += 1
            candidate = by_heat[heat_cursor]
        order.append(candidate)
        unplaced.discard(candidate)
        tail = candidate
    return order


@dataclass
class ClusteredLayout:
    """A proposed packed layout: object -> new base address."""

    bases: Dict[ObjectRef, int]
    order: List[ObjectRef]
    total_bytes: int

    def address_of(self, access: ObjectRelativeAccess, fallback: int) -> int:
        if access.wild:
            return fallback
        base = self.bases.get((access.group, access.object_serial))
        if base is None:
            return fallback
        return base + access.offset


def build_layout(
    order: Sequence[ObjectRef],
    sizes: Dict[ObjectRef, int],
    base: int = 1 << 24,
    align: int = 16,
) -> ClusteredLayout:
    """Pack objects at ``align``-aligned addresses in cluster order."""
    bases: Dict[ObjectRef, int] = {}
    cursor = base
    for reference in order:
        bases[reference] = cursor
        cursor += align_up(sizes.get(reference, align), align)
    return ClusteredLayout(bases, list(order), cursor - base)


class ObjectClusterer:
    """End-to-end clustering evaluation over one trace."""

    def __init__(self, window: int = 8, align: int = 16) -> None:
        self.window = window
        self.align = align

    def propose(self, trace: Trace) -> Tuple[ClusteredLayout, ObjectManager]:
        """Derive a clustered layout from the trace's profile."""
        omc = ObjectManager()
        stream = list(translate_trace(trace, omc))
        edges = affinity_graph(stream, window=self.window)
        heat: Dict[ObjectRef, int] = {}
        for access in stream:
            if not access.wild:
                reference = (access.group, access.object_serial)
                heat[reference] = heat.get(reference, 0) + 1
        sizes = {
            (record.group_id, record.serial): record.size
            for record in omc.objects()
        }
        order = cluster_order(list(sizes), edges, heat)
        return build_layout(order, sizes, align=self.align), omc

    def evaluate(
        self, trace: Trace, config: CacheConfig = CacheConfig()
    ) -> SimulationComparison:
        """Miss rates before (allocator layout) and after (clustered)."""
        layout, omc = self.propose(trace)
        omc_replay = ObjectManager()
        baseline_addresses: List[int] = []
        optimized_addresses: List[int] = []
        events = list(trace.accesses())
        for event, access in zip(events, translate_trace(trace, omc_replay)):
            baseline_addresses.append(event.address)
            optimized_addresses.append(layout.address_of(access, event.address))
        return SimulationComparison(
            baseline=simulate(baseline_addresses, config),
            optimized=simulate(optimized_addresses, config),
            label="object clustering",
            extra={"layout_bytes": layout.total_bytes},
        )
