"""Stride profiling for prefetch insertion (Section 4.2.2).

Identifies the strongly-strided instructions of the bzip2 stand-in from
a LEAP profile -- the candidates a compiler would prefetch -- and
compares against the lossless stride profiler's "real" set. Run with::

    python examples/stride_prefetching.py
"""

from repro import LeapProfiler
from repro.baselines.stride_lossless import LosslessStrideProfiler
from repro.postprocess.strides import (
    LeapStrideAnalyzer,
    dominant_strides,
    stride_score,
)
from repro.workloads.registry import create


def main() -> None:
    workload = create("bzip2", scale=0.5)
    process = workload.execute()
    trace = process.trace
    names = {i.instruction_id: n for n, i in process.instructions.items()}

    leap = LeapProfiler().profile(trace)
    identified = LeapStrideAnalyzer().strongly_strided(leap)
    strides = dominant_strides(leap)
    real = LosslessStrideProfiler().profile(trace).strongly_strided()

    print("strongly-strided instructions identified by LEAP:\n")
    print(f"{'instruction':<28} {'stride':>8}  prefetch hint")
    for instruction_id in sorted(identified):
        stride = strides.get(instruction_id, 0)
        hint = f"prefetch [addr + {4 * stride}]" if stride else "-"
        print(f"{names.get(instruction_id, instruction_id):<28} {stride:>8}  {hint}")

    score = stride_score(identified, real)
    missed = real - identified
    print(f"\nstride score vs lossless profiler: {score:.0%}")
    if missed:
        print("missed (cross-object strides, invisible within objects):")
        for instruction_id in sorted(missed):
            print(f"  {names.get(instruction_id, instruction_id)}")


if __name__ == "__main__":
    main()
