"""Tests for the resilience layer: fault injection, quarantine,
checkpointing, executor retry/timeout/fallback, and degraded profiling.

The contract under test is determinism-under-failure: the same fault
seed provokes the same faults (across processes and invocations), and
every failure mode the layer claims to survive is provoked here and
shown to be survived.
"""

import io
import json
import os
import pickle

import pytest

from repro.compression.lmad import LMADCompressor
from repro.core.events import AccessEvent, AccessKind, AllocEvent, Trace
from repro.core.fsutil import atomic_write_text
from repro.core.tuples import WILD_GROUP, WILD_OBJECT, ObjectRelativeAccess
from repro.parallel import (
    ParallelExecutor,
    TaskOutcome,
    WorkerCrashError,
    fork_available,
)
from repro.profilers.leap import LeapProfiler
from repro.profilers.whomp import WhompProfiler
from repro.resilience import (
    CheckpointStore,
    FaultInjector,
    FaultPlan,
    Quarantine,
    parse_fault_spec,
    quarantine_stream,
)
from repro.telemetry import Telemetry
from repro.workloads.registry import create

pytestmark = pytest.mark.faults

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="platform lacks the fork start method"
)


class TestFaultSpec:
    def test_full_grammar_round_trip(self):
        plan = parse_fault_spec(
            "seed=7; drop-events=0.25; corrupt-events=0.5; kill-task=2,5;"
            "stall-task=1:0.75; flip-profile=16; timeout=12.5; retries=3;"
            "backoff=0.2; abort-after=4"
        )
        assert plan.seed == 7
        assert plan.drop_events == 0.25
        assert plan.corrupt_events == 0.5
        assert plan.kill_tasks == (2, 5)
        assert plan.stall_tasks == {1: 0.75}
        assert plan.flip_profile == 16
        assert plan.timeout == 12.5
        assert plan.retries == 3
        assert plan.backoff == 0.2
        assert plan.abort_after == 4
        assert plan.any_event_faults()
        assert plan.any_process_faults()

    def test_empty_spec_is_inert(self):
        plan = parse_fault_spec("")
        assert plan == FaultPlan()
        assert not plan.any_event_faults()
        assert not plan.any_process_faults()

    @pytest.mark.parametrize(
        "spec",
        [
            "bare-clause",
            "unknown-key=1",
            "drop-events=1.5",
            "corrupt-events=-0.1",
            "stall-task=3",
            "kill-task=x",
            "timeout=never",
        ],
    )
    def test_bad_clauses_rejected(self, spec):
        with pytest.raises(ValueError, match="fault"):
            parse_fault_spec(spec)


class TestDeterminism:
    def test_event_decisions_stable_across_injectors(self):
        spec = "seed=11;drop-events=0.2;corrupt-events=0.2"
        first = FaultInjector(parse_fault_spec(spec))
        second = FaultInjector(parse_fault_spec(spec))
        decisions = [
            (first.drops_event(i), first.corrupts_event(i)) for i in range(500)
        ]
        assert decisions == [
            (second.drops_event(i), second.corrupts_event(i))
            for i in range(500)
        ]
        # the probabilities actually bite
        assert any(drop for drop, __ in decisions)
        assert any(corrupt for __, corrupt in decisions)

    def test_different_seeds_differ(self):
        a = FaultInjector(parse_fault_spec("seed=1;drop-events=0.5"))
        b = FaultInjector(parse_fault_spec("seed=2;drop-events=0.5"))
        assert [a.drops_event(i) for i in range(200)] != [
            b.drops_event(i) for i in range(200)
        ]

    def test_position_determinism(self):
        # Whether event #k is dropped depends only on (seed, k), never on
        # which other events were examined first or in what order.
        injector = FaultInjector(parse_fault_spec("seed=3;drop-events=0.3"))
        forward = [injector.drops_event(i) for i in range(100)]
        backward = [injector.drops_event(i) for i in reversed(range(100))]
        assert forward == list(reversed(backward))

    def test_corrupt_bytes_deterministic(self):
        data = bytes(range(256)) * 8
        plan = parse_fault_spec("seed=9;flip-profile=12")
        damaged = FaultInjector(plan).corrupt_bytes(data)
        assert damaged == FaultInjector(plan).corrupt_bytes(data)
        assert damaged != data
        assert len(damaged) == len(data)


def _micro_access(index=0):
    return AccessEvent(
        instruction_id=1,
        address=0x1000 + 8 * index,
        size=8,
        kind=AccessKind.LOAD,
        time=index,
    )


class TestCorruptTrace:
    def _trace(self, accesses=40):
        events = [
            AllocEvent(
                address=0x1000, size=4096, site="site0", type_name=None, time=0
            )
        ]
        events.extend(_micro_access(i) for i in range(accesses))
        return Trace.from_events(events)

    def test_drop_all(self):
        trace = self._trace()
        injector = FaultInjector(parse_fault_spec("drop-events=1.0"))
        damaged = injector.corrupt_trace(trace)
        assert damaged.access_count == 0
        assert injector.dropped == 40
        # object events survive; original trace untouched
        assert any(isinstance(e, AllocEvent) for e in damaged)
        assert trace.access_count == 40

    def test_corrupt_all_preserves_count(self):
        trace = self._trace()
        injector = FaultInjector(parse_fault_spec("corrupt-events=1.0"))
        damaged = injector.corrupt_trace(trace)
        assert damaged.access_count == 40
        assert injector.corrupted == 40
        originals = [e for e in trace if isinstance(e, AccessEvent)]
        corrupted = [e for e in damaged if isinstance(e, AccessEvent)]
        assert all(a != b for a, b in zip(originals, corrupted))

    def test_no_event_faults_returns_same_trace(self):
        trace = self._trace()
        injector = FaultInjector(parse_fault_spec("kill-task=1"))
        assert injector.corrupt_trace(trace) is trace


class TestFireOnce:
    def test_at_most_once_across_injectors(self, tmp_path):
        ledger = str(tmp_path / "ledger")
        plan = parse_fault_spec("kill-task=3")
        first = FaultInjector(plan, ledger)
        assert first.should_kill(3)
        # same injector, a fresh injector, and a "resumed invocation"
        # injector all stand down
        assert not first.should_kill(3)
        assert not FaultInjector(plan, ledger).should_kill(3)
        assert not FaultInjector(parse_fault_spec("kill-task=3"), ledger).should_kill(3)

    def test_unlisted_tasks_never_kill(self, tmp_path):
        injector = FaultInjector(parse_fault_spec("kill-task=3"), str(tmp_path))
        assert not injector.should_kill(2)
        assert injector.stall_seconds(2) == 0.0

    def test_stall_schedule(self):
        injector = FaultInjector(parse_fault_spec("stall-task=4:1.5"))
        assert injector.stall_seconds(4) == 1.5
        assert injector.stall_seconds(5) == 0.0


def _good_access(index=0):
    return ObjectRelativeAccess(
        instruction_id=1,
        group=0,
        object_serial=0,
        offset=8 * index,
        time=index,
        size=8,
        kind=AccessKind.LOAD,
    )


class TestQuarantine:
    def test_bounded_records_unbounded_counts(self):
        quarantine = Quarantine(limit=3)
        for index in range(10):
            quarantine.add("bad-size", index)
        assert quarantine.total == 10
        assert len(quarantine.records) == 3
        assert quarantine.dropped == 7
        assert quarantine.reasons == {"bad-size": 10}

    def test_stream_diverts_malformed_and_wild(self):
        import dataclasses

        wild = dataclasses.replace(
            _good_access(1), group=WILD_GROUP, object_serial=WILD_OBJECT
        )
        bad = dataclasses.replace(_good_access(2), size=-1)
        quarantine = Quarantine()
        kept = list(
            quarantine_stream([_good_access(0), wild, bad], quarantine)
        )
        assert kept == [_good_access(0)]
        assert quarantine.total == 2
        assert set(quarantine.reasons) == {"wild", "bad-size"}

    def test_include_wild_false_keeps_wild(self):
        import dataclasses

        wild = dataclasses.replace(
            _good_access(1), group=WILD_GROUP, object_serial=WILD_OBJECT
        )
        quarantine = Quarantine()
        kept = list(
            quarantine_stream([wild], quarantine, include_wild=False)
        )
        assert kept == [wild]
        assert quarantine.total == 0


class TestCheckpointStore:
    def test_round_trip(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        store.save("fig3", {"status": "ok", "results": {"x": 1}})
        loaded = store.load("fig3")
        assert loaded["status"] == "ok"
        assert loaded["results"] == {"x": 1}
        assert store.completed() == ["fig3"]

    def test_version_mismatch_treated_as_absent(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        (tmp_path / "fig5.json").write_text(
            json.dumps({"status": "ok", "checkpoint_version": 999})
        )
        assert store.load("fig5") is None
        assert store.completed() == []

    def test_garbage_file_treated_as_absent(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        (tmp_path / "fig9.json").write_text("{truncated")
        assert store.load("fig9") is None

    def test_discard(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        store.save("table1", {"status": "ok"})
        store.discard("table1")
        store.discard("table1")  # idempotent
        assert store.completed() == []


class TestAtomicWrite:
    def test_write_and_overwrite(self, tmp_path):
        path = str(tmp_path / "nested" / "out.json")
        atomic_write_text(path, "first")
        atomic_write_text(path, "second")
        with open(path) as handle:
            assert handle.read() == "second"
        # no stray temp files left behind
        assert os.listdir(os.path.dirname(path)) == ["out.json"]


def _square(value):
    return value * value


def _explode_on_three(value):
    if value == 3:
        raise ValueError("boom on 3")
    return value * value


class TestWorkerCrashError:
    def test_context_survives_pickle(self):
        error = WorkerCrashError(
            "label: task 3 raised ValueError: boom",
            worker_traceback="Traceback ...",
            chunk_index=1,
            items_processed=2,
        )
        clone = pickle.loads(pickle.dumps(error))
        assert str(clone) == str(error)
        assert clone.worker_traceback == "Traceback ..."
        assert clone.chunk_index == 1
        assert clone.items_processed == 2


@needs_fork
class TestExecutorResilience:
    def test_killed_worker_chunk_is_retried(self, tmp_path):
        injector = FaultInjector(
            parse_fault_spec("kill-task=3;timeout=10;retries=2;backoff=0.01"),
            str(tmp_path / "ledger"),
        )
        telemetry = Telemetry()
        executor = ParallelExecutor(
            jobs=2, telemetry=telemetry, fault_injector=injector
        )
        tasks = list(range(8))
        outcomes = executor.map_outcomes(_square, tasks)
        assert [o.value for o in outcomes] == [t * t for t in tasks]
        assert all(o.ok for o in outcomes)
        assert any(o.attempts > 1 for o in outcomes)
        assert telemetry.registry.value("resilience.timeouts") >= 1
        assert telemetry.registry.value("resilience.retries") >= 1

    def test_exhausted_retries_fall_back_inline(self, tmp_path):
        # retries=0: the single injected kill exhausts the budget, so
        # the chunk must be rescued by the inline serial fallback.
        injector = FaultInjector(
            parse_fault_spec("kill-task=1;timeout=5;retries=0"),
            str(tmp_path / "ledger"),
        )
        telemetry = Telemetry()
        executor = ParallelExecutor(
            jobs=2, telemetry=telemetry, fault_injector=injector
        )
        tasks = list(range(6))
        outcomes = executor.map_outcomes(_square, tasks)
        assert [o.value for o in outcomes] == [t * t for t in tasks]
        assert any(o.fallback for o in outcomes)
        assert telemetry.registry.value("resilience.fallbacks") == 1

    def test_task_exception_contained_with_context(self):
        executor = ParallelExecutor(jobs=2)
        outcomes = executor.map_outcomes(
            _explode_on_three, list(range(8)), label="drill"
        )
        failed = [o for o in outcomes if not o.ok]
        assert len(failed) == 1
        error = failed[0].error
        assert "task 3 raised ValueError: boom on 3" in str(error)
        assert "boom on 3" in error.worker_traceback
        assert error.chunk_index is not None
        assert error.items_processed is not None
        # neighbours keep their results
        assert [o.value for o in outcomes if o.ok] == [
            v * v for v in range(8) if v != 3
        ]

    def test_task_exceptions_are_never_retried(self):
        telemetry = Telemetry()
        executor = ParallelExecutor(
            jobs=2, telemetry=telemetry, retries=3, timeout=10
        )
        executor.map_outcomes(_explode_on_three, list(range(8)))
        # the counter is never even registered: deterministic task
        # exceptions must not reach the retry machinery
        assert not telemetry.registry.value("resilience.retries")

    def test_plan_overrides_executor_policy(self):
        injector = FaultInjector(
            parse_fault_spec("timeout=2.5;retries=7;backoff=0.125")
        )
        executor = ParallelExecutor(jobs=2, fault_injector=injector)
        assert executor.timeout == 2.5
        assert executor.retries == 7
        assert executor.backoff == 0.125

    def test_process_faults_imply_default_timeout(self, tmp_path):
        injector = FaultInjector(
            parse_fault_spec("kill-task=0"), str(tmp_path)
        )
        executor = ParallelExecutor(jobs=2, fault_injector=injector)
        assert executor.timeout is not None


class TestSerialOutcomes:
    def test_serial_path_contains_exceptions(self):
        executor = ParallelExecutor(jobs=1)
        seen = []
        outcomes = executor.map_outcomes(
            _explode_on_three,
            list(range(5)),
            progress=lambda index, outcome: seen.append(index),
        )
        assert seen == [0, 1, 2, 3, 4]
        assert [o.ok for o in outcomes] == [True, True, True, False, True]
        assert isinstance(outcomes[3], TaskOutcome)
        assert isinstance(outcomes[3].error, WorkerCrashError)


class TestDegradedProfiling:
    @pytest.fixture(scope="class")
    def damaged_trace(self):
        trace = create("micro.list", scale=0.3).trace()
        injector = FaultInjector(
            parse_fault_spec("seed=5;corrupt-events=0.05;drop-events=0.02")
        )
        return injector.corrupt_trace(trace)

    def test_whomp_quarantines_and_reports_completeness(self, damaged_trace):
        quarantine = Quarantine()
        profile = WhompProfiler(quarantine=quarantine).profile(damaged_trace)
        assert quarantine.total > 0
        assert profile.quarantined == quarantine.total
        assert 0.0 < profile.capture_completeness < 1.0
        # the streams stay internally consistent: every grammar expands
        # to exactly the kept-access count
        for grammar in profile.grammars.values():
            assert len(grammar.expand()) == profile.access_count

    def test_leap_quarantines_and_reports_completeness(self, damaged_trace):
        quarantine = Quarantine()
        profile = LeapProfiler(quarantine=quarantine).profile(damaged_trace)
        assert quarantine.total > 0
        assert 0.0 < profile.capture_completeness < 1.0
        for entry in profile.entries.values():
            assert (
                sum(lmad.count for lmad in entry.lmads) + entry.overflow.count
                == entry.total_symbols
            )

    def test_clean_trace_full_completeness(self):
        trace = create("micro.list", scale=0.2).trace()
        quarantine = Quarantine()
        profile = WhompProfiler(quarantine=quarantine).profile(trace)
        assert quarantine.total == 0
        assert profile.capture_completeness == 1.0
        baseline = WhompProfiler().profile(trace)
        for name, grammar in profile.grammars.items():
            assert grammar.expand() == baseline.grammars[name].expand()


class TestSummaryFallback:
    def test_overflow_cap_folds_into_summary(self):
        import random

        rng = random.Random(17)
        compressor = LMADCompressor(dims=1, budget=2, overflow_cap=5)
        vectors = [(rng.randrange(0, 10_000),) for __ in range(200)]
        for vector in vectors:
            compressor.feed(vector)
        entry = compressor.finish()
        assert entry.summarized
        # everything landed in the summary, nothing was lost
        assert entry.overflow.count + sum(l.count for l in entry.lmads) == 200
        values = [v[0] for v in vectors]
        assert entry.overflow.minimum[0] == min(values)
        assert entry.overflow.maximum[0] == max(values)

    def test_no_cap_means_no_summary(self):
        compressor = LMADCompressor(dims=1, budget=2)
        for value in range(100):
            compressor.feed((value * 7919,))
        assert not compressor.finish().summarized

    def test_bad_cap_rejected(self):
        with pytest.raises(ValueError):
            LMADCompressor(dims=1, budget=2, overflow_cap=0)


class TestProfileFlipFuzz:
    def test_degraded_save_carries_completeness(self, tmp_path):
        from repro.core.profile_io import save_whomp, load_whomp_streams

        trace = create("micro.list", scale=0.2).trace()
        injector = FaultInjector(parse_fault_spec("seed=2;corrupt-events=0.1"))
        quarantine = Quarantine()
        profile = WhompProfiler(quarantine=quarantine).profile(
            injector.corrupt_trace(trace)
        )
        buffer = io.StringIO()
        save_whomp(profile, buffer)
        buffer.seek(0)
        loaded = load_whomp_streams(buffer)
        assert loaded["capture_completeness"] == profile.capture_completeness
        assert loaded["quarantined"] == profile.quarantined
