"""Figure 6 bench: LEAP memory-dependence error distribution.

Regenerates the figure and asserts its shape: the distribution is
sharply peaked at zero error, with most pairs correct or within 10%
(the paper reports 75%).
"""

from conftest import once

from repro.experiments import fig6


def test_fig6_leap_error_distribution(benchmark, context):
    results = once(benchmark, fig6.run, context)
    print()
    print(fig6.render(results))

    average = results["average"]
    # shape: dominant mass at/near zero error
    assert results["average_within_10"] > 0.55
    assert average.exactly_correct() > 0.40
    fractions = average.fractions()
    center = fractions[10]
    assert center == max(fractions)  # the peak is the zero bucket


def test_fig6_mdf_postprocess_throughput(benchmark, context):
    """Kernel benchmark: omega-test MDF post-processing of one profile."""
    from repro.postprocess.dependence import analyze_dependences

    leap = context.leap("crafty")
    table = once(benchmark, analyze_dependences, leap)
    assert table.dependent_pairs()
