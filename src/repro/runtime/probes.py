"""Instrumentation probes.

Section 2.3 of the paper: "The program is instrumented by inserting
instruction and object probes into the target program.  The instruction
probes are inserted next to every load and store instruction...  Object
probes are introduced at object creation and destruction points."

Here instrumentation is a bus between the simulated process and any
number of probe sinks.  A sink is anything implementing the three
``on_*`` callbacks: a :class:`TraceRecorder` for offline profiling, or a
profiler's CDC directly for online profiling (the paper's
thread-to-thread communication, minus the threads).
"""

from __future__ import annotations

from typing import List, Optional, Protocol

from repro.core.events import AccessKind, Trace


class ProbeSink(Protocol):
    """The consumer side of the probe bus."""

    def on_access(
        self, instruction_id: int, address: int, size: int, kind: AccessKind
    ) -> None:
        """Called by an instruction probe for every executed load/store."""

    def on_alloc(
        self, address: int, size: int, site: str, type_name: Optional[str]
    ) -> None:
        """Called by an object probe at object creation."""

    def on_free(self, address: int) -> None:
        """Called by an object probe at object destruction."""


class ProbeBus:
    """Fans probe firings out to every attached sink.

    With no sinks attached the bus models the *uninstrumented* program:
    :meth:`fire_access` degenerates to a cheap no-op, which is what the
    dilation-factor measurements of Table 1 compare against.
    """

    def __init__(self) -> None:
        self._sinks: List[ProbeSink] = []

    def attach(self, sink: ProbeSink) -> None:
        self._sinks.append(sink)

    def detach(self, sink: ProbeSink) -> None:
        self._sinks.remove(sink)

    @property
    def instrumented(self) -> bool:
        return bool(self._sinks)

    def fire_access(
        self, instruction_id: int, address: int, size: int, kind: AccessKind
    ) -> None:
        for sink in self._sinks:
            sink.on_access(instruction_id, address, size, kind)

    def fire_alloc(
        self, address: int, size: int, site: str, type_name: Optional[str]
    ) -> None:
        for sink in self._sinks:
            sink.on_alloc(address, size, site, type_name)

    def fire_free(self, address: int) -> None:
        for sink in self._sinks:
            sink.on_free(address)


class TraceRecorder:
    """Probe sink that appends every firing to a :class:`Trace`.

    This is the offline-profiling path: record once, then feed the same
    trace to WHOMP, LEAP, and every baseline.
    """

    def __init__(self, trace: Optional[Trace] = None) -> None:
        self.trace = trace if trace is not None else Trace()

    def on_access(
        self, instruction_id: int, address: int, size: int, kind: AccessKind
    ) -> None:
        self.trace.record_access(instruction_id, address, size, kind)

    def on_alloc(
        self, address: int, size: int, site: str, type_name: Optional[str]
    ) -> None:
        self.trace.record_alloc(address, size, site, type_name)

    def on_free(self, address: int) -> None:
        self.trace.record_free(address)
