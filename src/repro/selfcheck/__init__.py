"""REPROLINT: project-specific static analysis over the repro tree.

The serving daemon, the store, the parallel pipeline, and the
observability layer each carry invariants no general-purpose linter
knows about: which objects are reachable from several threads and
which lock guards them, what may cross a fork boundary, which paths
must be written atomically, and which code must stay a pure function
of the workload seed.  This package encodes those invariants as AST
checkers with stable codes (``RL101``...) and ships its own
seeded-defect fixtures proving every checker fires.

The analyzer parses -- never imports -- the code it checks.

Public API::

    from repro.selfcheck import analyze_paths, fixture_selftest
    findings = analyze_paths(["src/repro"])
"""

from repro.selfcheck.engine import (
    FIXTURES_DIR,
    analyze_modules,
    analyze_paths,
    baseline_payload,
    fixture_selftest,
    load_baseline,
    split_by_baseline,
    write_baseline,
)
from repro.selfcheck.findings import (
    CODES,
    ERROR,
    WARNING,
    Finding,
    FindingSink,
    sort_findings,
)
from repro.selfcheck.loader import SelfCheckError, SourceModule, load_tree

__all__ = [
    "CODES",
    "ERROR",
    "FIXTURES_DIR",
    "Finding",
    "FindingSink",
    "SelfCheckError",
    "SourceModule",
    "WARNING",
    "analyze_modules",
    "analyze_paths",
    "baseline_payload",
    "fixture_selftest",
    "load_baseline",
    "load_tree",
    "sort_findings",
    "split_by_baseline",
    "write_baseline",
]
