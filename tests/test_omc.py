"""Tests for the Object Management Component."""

import pytest

from repro.core.omc import ObjectManager, TranslationError


class TestGrouping:
    def test_same_site_same_group(self):
        omc = ObjectManager()
        a = omc.on_alloc(0x1000, 64, "site", None, 0)
        b = omc.on_alloc(0x2000, 64, "site", None, 1)
        assert a.group_id == b.group_id

    def test_different_sites_different_groups(self):
        omc = ObjectManager()
        a = omc.on_alloc(0x1000, 64, "site.a", None, 0)
        b = omc.on_alloc(0x2000, 64, "site.b", None, 1)
        assert a.group_id != b.group_id

    def test_serials_count_within_group(self):
        omc = ObjectManager()
        a = omc.on_alloc(0x1000, 64, "s", None, 0)
        other = omc.on_alloc(0x3000, 64, "other", None, 1)
        b = omc.on_alloc(0x2000, 64, "s", None, 2)
        assert (a.serial, b.serial) == (0, 1)
        assert other.serial == 0

    def test_type_refinement_off_by_default(self):
        omc = ObjectManager()
        a = omc.on_alloc(0x1000, 64, "s", "node", 0)
        b = omc.on_alloc(0x2000, 64, "s", "leaf", 1)
        assert a.group_id == b.group_id

    def test_type_refinement_on(self):
        omc = ObjectManager(refine_by_type=True)
        a = omc.on_alloc(0x1000, 64, "s", "node", 0)
        b = omc.on_alloc(0x2000, 64, "s", "leaf", 1)
        assert a.group_id != b.group_id

    def test_group_labels(self):
        omc = ObjectManager(refine_by_type=True)
        omc.on_alloc(0x1000, 64, "s", "node", 0)
        assert omc.groups[0].label == "s<node>"

    def test_group_id_of_site(self):
        omc = ObjectManager()
        record = omc.on_alloc(0x1000, 64, "s", None, 0)
        assert omc.group_id_of_site("s") == record.group_id
        assert omc.group_id_of_site("missing") is None


class TestTranslation:
    def test_translate_inside_object(self):
        omc = ObjectManager()
        record = omc.on_alloc(0x1000, 64, "s", None, 0)
        assert omc.translate(0x1000) == (record.group_id, 0, 0)
        assert omc.translate(0x1030) == (record.group_id, 0, 0x30)

    def test_translate_outside(self):
        omc = ObjectManager()
        omc.on_alloc(0x1000, 64, "s", None, 0)
        assert omc.translate(0x1040) is None
        assert omc.translate(0xFFF) is None

    def test_translation_respects_liveness(self):
        omc = ObjectManager()
        omc.on_alloc(0x1000, 64, "s", None, 0)
        omc.on_free(0x1000, 5)
        assert omc.translate(0x1000) is None

    def test_address_reuse_gets_new_identity(self):
        """The same raw address names different objects over time --
        the false aliasing object-relativity removes."""
        omc = ObjectManager()
        omc.on_alloc(0x1000, 64, "s", None, 0)
        first = omc.translate(0x1010)
        omc.on_free(0x1000, 1)
        omc.on_alloc(0x1000, 64, "s", None, 2)
        second = omc.translate(0x1010)
        assert first == (0, 0, 0x10)
        assert second == (0, 1, 0x10)

    def test_free_of_untracked_rejected(self):
        omc = ObjectManager()
        with pytest.raises(TranslationError):
            omc.on_free(0x4000, 0)


class TestAuxiliaryOutputs:
    def test_lifetimes(self):
        omc = ObjectManager()
        omc.on_alloc(0x1000, 64, "s", None, 3)
        omc.on_free(0x1000, 9)
        rows = omc.lifetime_table()
        assert rows == [(0, 0, 3, 9, 64)]

    def test_live_object_has_no_free_time(self):
        omc = ObjectManager()
        record = omc.on_alloc(0x1000, 64, "s", None, 3)
        assert record.live
        assert record.lifetime() is None
        assert omc.lifetime_table()[0][3] is None

    def test_lifetime_duration(self):
        omc = ObjectManager()
        record = omc.on_alloc(0x1000, 64, "s", None, 3)
        omc.on_free(0x1000, 10)
        assert record.lifetime() == 7
        assert not record.live

    def test_base_address_table(self):
        omc = ObjectManager()
        omc.on_alloc(0x1000, 64, "s", None, 0)
        omc.on_free(0x1000, 1)
        omc.on_alloc(0x2000, 64, "s", None, 2)
        table = omc.base_address_table()
        assert table == {(0, 0): 0x1000, (0, 1): 0x2000}

    def test_objects_and_object_accessors(self):
        omc = ObjectManager()
        omc.on_alloc(0x1000, 64, "a", None, 0)
        omc.on_alloc(0x2000, 32, "b", None, 1)
        assert len(omc.objects()) == 2
        assert omc.object(1, 0).size == 32
        assert omc.live_count() == 2
