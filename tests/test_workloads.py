"""Tests for the workload suite."""

import pytest

from repro.core.cdc import translate_trace_list
from repro.core.events import AccessKind
from repro.workloads.base import REGISTRY, Workload
from repro.workloads.registry import (
    PAPER_NAMES,
    SPEC_BENCHMARKS,
    all_names,
    create,
    spec_suite,
)

#: small scale so the whole suite runs fast in tests
SCALE = 0.05


class TestRegistry:
    def test_all_spec_benchmarks_registered(self):
        names = all_names()
        for benchmark in SPEC_BENCHMARKS:
            assert benchmark in names

    def test_micro_workloads_registered(self):
        assert "micro.list" in all_names()
        assert "micro.array" in all_names()

    def test_paper_names_cover_suite(self):
        assert set(PAPER_NAMES) == set(SPEC_BENCHMARKS)

    def test_unknown_workload(self):
        with pytest.raises(KeyError):
            create("nonexistent")

    def test_duplicate_registration_rejected(self):
        class Dupe(Workload):
            name = "gzip"

        with pytest.raises(ValueError):
            REGISTRY.register(Dupe)

    def test_spec_suite_order(self):
        suite = spec_suite(scale=SCALE)
        assert [w.name for w in suite] == list(SPEC_BENCHMARKS)

    def test_scale_validation(self):
        with pytest.raises(ValueError):
            create("gzip", scale=0)


@pytest.mark.parametrize("name", SPEC_BENCHMARKS)
class TestEverySpecWorkload:
    def test_produces_nonempty_trace(self, name):
        trace = create(name, scale=SCALE).trace()
        assert trace.access_count > 100

    def test_deterministic_across_runs(self, name):
        workload = create(name, scale=SCALE)
        first = workload.trace()
        second = create(name, scale=SCALE).trace()
        assert list(first) == list(second)

    def test_seed_changes_trace(self, name):
        first = create(name, scale=SCALE, seed=0).trace()
        second = create(name, scale=SCALE, seed=1).trace()
        assert list(first) != list(second)

    def test_has_loads_and_stores(self, name):
        trace = create(name, scale=SCALE).trace()
        kinds = {e.kind for e in trace.accesses()}
        assert kinds == {AccessKind.LOAD, AccessKind.STORE}

    def test_object_relative_stream_layout_invariant(self, name):
        """The paper's core claim: logical behaviour is independent of
        allocator and layout, so the object-relative stream is too."""
        workload = create(name, scale=SCALE)
        base = translate_trace_list(workload.trace())
        moved = translate_trace_list(
            workload.trace(allocator="best-fit", probe_padding=4096)
        )
        assert base == moved

    def test_no_wild_accesses(self, name):
        """Workloads only touch live objects (wild accesses would mean a
        use-after-free bug in the workload)."""
        translated = translate_trace_list(create(name, scale=SCALE).trace())
        assert not any(a.wild for a in translated)

    def test_balanced_alloc_free(self, name):
        from repro.core.events import AllocEvent, FreeEvent

        trace = create(name, scale=SCALE).trace()
        allocs = sum(1 for e in trace if isinstance(e, AllocEvent))
        frees = sum(1 for e in trace if isinstance(e, FreeEvent))
        assert allocs == frees  # everything freed by finish()


class TestScaling:
    def test_scale_grows_trace(self):
        small = create("gzip", scale=0.05).trace()
        large = create("gzip", scale=0.2).trace()
        assert large.access_count > small.access_count

    def test_scaled_floor(self):
        workload = create("gzip", scale=0.0001)
        assert workload.scaled(10) >= 1


class TestColdCode:
    def test_startup_and_report_instructions_present(self):
        process = create("gzip", scale=SCALE).execute()
        names = set(process.instructions)
        assert any(name.startswith("startup.load_config") for name in names)
        assert any(name.startswith("shutdown.store_stat") for name in names)
        assert any(name.startswith("report.load_stat") for name in names)
