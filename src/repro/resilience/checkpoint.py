"""Checkpoint--resume for the experiments runner.

A multi-hour sweep interrupted at experiment five should not redo
experiments one through four.  Each completed experiment is persisted
as one JSON file, written atomically (temp file + ``os.replace`` via
:func:`~repro.core.fsutil.atomic_write_text`), so an interrupt -- real
or injected -- can land at any instant without ever leaving a
truncated checkpoint.  On resume, completed experiments are loaded,
their saved span trees grafted back under the live telemetry root, and
only the remainder runs.

A checkpoint that fails to parse (a stray file, a different format
version) is treated as absent: the experiment simply reruns, which is
always safe because experiment results are deterministic functions of
(name, scale, seed).
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional

from repro.core.fsutil import atomic_write_text

#: bumped when the checkpoint payload shape changes; mismatched files
#: are rerun rather than trusted
CHECKPOINT_VERSION = 1


class CheckpointStore:
    """Atomic per-experiment result files under one directory."""

    def __init__(self, directory: str) -> None:
        self.directory = directory
        os.makedirs(directory, exist_ok=True)

    def path(self, name: str) -> str:
        return os.path.join(self.directory, f"{name}.json")

    def save(self, name: str, payload: Dict[str, object]) -> None:
        """Persist one experiment's outcome (atomic)."""
        document = dict(payload)
        document["checkpoint_version"] = CHECKPOINT_VERSION
        atomic_write_text(self.path(name), json.dumps(document, indent=2))

    def load(self, name: str) -> Optional[Dict[str, object]]:
        """The saved outcome, or ``None`` when absent or unusable."""
        path = self.path(name)
        try:
            with open(path) as handle:
                document = json.load(handle)
        except (OSError, ValueError):
            return None
        if not isinstance(document, dict):
            return None
        if document.get("checkpoint_version") != CHECKPOINT_VERSION:
            return None
        return document

    def completed(self) -> List[str]:
        """Names with a loadable checkpoint, sorted."""
        try:
            entries = os.listdir(self.directory)
        except OSError:
            return []
        names = [
            entry[: -len(".json")]
            for entry in entries
            if entry.endswith(".json") and not entry.endswith(".tmp")
        ]
        return sorted(name for name in names if self.load(name) is not None)

    def discard(self, name: str) -> None:
        """Drop one checkpoint (used to force a rerun)."""
        try:
            os.unlink(self.path(name))
        except FileNotFoundError:
            pass
