"""Tests for the process-pool subsystem and the parallel profilers.

The contract under test is the tentpole's: parallel output must be
*bit-identical* to serial output — same grammar productions, same LMAD
entries, same side tables — because the decomposed substreams are
independent by construction and the merge is a pure reassembly.
"""

import pickle

import pytest

from repro.compression.lmad import LMADCompressor
from repro.compression.rle import DeltaRleCodec
from repro.compression.sequitur import SequiturGrammar
from repro.core.scc import HorizontalSequiturSCC, VerticalLMADSCC
from repro.parallel import (
    ParallelExecutor,
    WorkerCrashError,
    fork_available,
    resolve_jobs,
)
from repro.parallel.workers import shard_round_robin
from repro.profilers.leap import LeapProfiler
from repro.profilers.whomp import WhompProfiler
from repro.telemetry import Telemetry
from repro.workloads.registry import create

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="platform lacks the fork start method"
)


def _square(value):
    return value * value


def _explode(value):
    raise ValueError(f"boom on {value}")


class TestExecutor:
    def test_serial_fallback_preserves_order(self):
        executor = ParallelExecutor(jobs=1)
        assert executor.map(_square, [3, 1, 2]) == [9, 1, 4]

    def test_single_task_runs_inline(self):
        # One task never justifies a pool, whatever jobs says.
        executor = ParallelExecutor(jobs=8)
        assert executor.effective_jobs(1) == 1
        assert executor.map(_square, [5]) == [25]

    def test_empty_task_list(self):
        assert ParallelExecutor(jobs=4).map(_square, []) == []

    @needs_fork
    def test_pool_results_in_task_order(self):
        executor = ParallelExecutor(jobs=2)
        tasks = list(range(23))
        assert executor.map(_square, tasks) == [t * t for t in tasks]

    @needs_fork
    def test_worker_exception_surfaces_as_crash_error(self):
        executor = ParallelExecutor(jobs=2)
        with pytest.raises(WorkerCrashError) as excinfo:
            executor.map(_explode, [1, 2])
        assert "ValueError" in str(excinfo.value)
        assert "boom" in excinfo.value.worker_traceback

    @needs_fork
    def test_pool_telemetry(self):
        telemetry = Telemetry()
        executor = ParallelExecutor(jobs=2, telemetry=telemetry)
        executor.map(_square, [1, 2, 3], label="squares")
        assert telemetry.registry.value("parallel.pools_total") == 1
        assert telemetry.registry.value("parallel.tasks_total") == 3
        assert telemetry.find_span("squares") is not None

    def test_resolve_jobs(self):
        if fork_available():
            assert resolve_jobs(3) == 3
            assert resolve_jobs(None) >= 1
            assert resolve_jobs(0) >= 1
        else:
            assert resolve_jobs(3) == 1

    def test_chunksize_heuristic(self):
        assert ParallelExecutor._chunksize(100, 4) == 6
        assert ParallelExecutor._chunksize(3, 4) == 1

    def test_shard_round_robin_balances_and_drops_empties(self):
        shards = shard_round_robin(list(range(7)), 3)
        assert shards == [[0, 3, 6], [1, 4], [2, 5]]
        assert shard_round_robin([1], 4) == [[1]]
        assert shard_round_robin([], 4) == []


class TestPickling:
    def test_sequitur_grammar_round_trip(self):
        grammar = SequiturGrammar()
        grammar.feed_all([1, 2, 3, 2, 3, 1, 2, 3, 2, 3] * 20)
        clone = pickle.loads(pickle.dumps(grammar))
        assert clone.to_productions() == grammar.to_productions()
        assert clone.expand() == grammar.expand()
        assert clone.size() == grammar.size()
        assert clone.size_bytes_varint() == grammar.size_bytes_varint()
        assert clone.tokens_fed == grammar.tokens_fed

    def test_sequitur_grammar_feedable_after_round_trip(self):
        tokens = [1, 2, 1, 2, 3, 1, 2, 1, 2, 3] * 10
        grammar = SequiturGrammar()
        grammar.feed_all(tokens)
        clone = pickle.loads(pickle.dumps(grammar))
        extra = [5, 1, 2, 5, 1, 2]
        grammar.feed_all(extra)
        clone.feed_all(extra)
        assert clone.expand() == tokens + extra
        clone.check_invariants()

    def test_from_productions_rejects_dangling_reference(self):
        from repro.compression.sequitur import Ref

        with pytest.raises(ValueError):
            SequiturGrammar.from_productions({0: [Ref(99)]})

    def test_lmad_entry_round_trip(self):
        compressor = LMADCompressor(dims=3, budget=2)
        compressor.feed_all(
            [(0, i, i) for i in range(5)]
            + [(1, 7 * i, i) for i in range(5)]
            + [(9, 100, 1), (3, 50, 2)]  # overflow after budget
        )
        entry = compressor.finish()
        clone = pickle.loads(pickle.dumps(entry))
        assert clone == entry
        assert clone.overflow.count == entry.overflow.count

    def test_whole_profiles_round_trip(self):
        trace = create("micro.list", scale=0.3).trace()
        whomp = WhompProfiler().profile(trace)
        leap = LeapProfiler().profile(trace)
        whomp_clone = pickle.loads(pickle.dumps(whomp))
        leap_clone = pickle.loads(pickle.dumps(leap))
        assert whomp_clone.reconstruct_accesses() == whomp.reconstruct_accesses()
        assert whomp_clone.size_bytes_varint() == whomp.size_bytes_varint()
        assert leap_clone.entries == leap.entries
        assert leap_clone.kinds == leap.kinds
        assert leap_clone.exec_counts == leap.exec_counts


@needs_fork
class TestParallelProfilers:
    @pytest.fixture(scope="class")
    def trace(self):
        return create("micro.array", scale=0.2).trace()

    def test_whomp_parallel_identical(self, trace):
        serial = WhompProfiler().profile(trace)
        parallel = WhompProfiler(jobs=2).profile(trace)
        assert {
            name: grammar.to_productions()
            for name, grammar in parallel.grammars.items()
        } == {
            name: grammar.to_productions()
            for name, grammar in serial.grammars.items()
        }
        assert list(parallel.grammars) == list(serial.grammars)
        assert parallel.base_addresses == serial.base_addresses
        assert parallel.lifetimes == serial.lifetimes
        assert parallel.group_labels == serial.group_labels
        assert parallel.access_count == serial.access_count
        assert parallel.size_bytes_varint() == serial.size_bytes_varint()
        assert parallel.reconstruct_accesses() == serial.reconstruct_accesses()

    def test_whomp_parallel_with_alternate_compressor(self, trace):
        serial = WhompProfiler(compressor=DeltaRleCodec).profile(trace)
        parallel = WhompProfiler(compressor=DeltaRleCodec, jobs=2).profile(trace)
        assert {
            name: codec.expand() for name, codec in parallel.grammars.items()
        } == {name: codec.expand() for name, codec in serial.grammars.items()}

    def test_whomp_parallel_telemetry_spans(self, trace):
        telemetry = Telemetry()
        WhompProfiler(jobs=2, telemetry=telemetry).profile(trace)
        for stage in ("translation", "decomposition", "compression"):
            span = telemetry.find_span(f"whomp/{stage}")
            assert span is not None and span.seconds >= 0.0
        assert telemetry.registry.value("whomp.profile_symbols") > 0

    def test_leap_parallel_identical(self, trace):
        serial = LeapProfiler().profile(trace)
        parallel = LeapProfiler(jobs=3).profile(trace)
        assert parallel.entries == serial.entries
        assert list(parallel.entries) == list(serial.entries)
        assert parallel.kinds == serial.kinds
        assert parallel.exec_counts == serial.exec_counts
        assert parallel.group_labels == serial.group_labels
        assert parallel.access_count == serial.access_count
        assert parallel.size_bytes() == serial.size_bytes()

    def test_leap_parallel_respects_budget(self, trace):
        serial = LeapProfiler(budget=2).profile(trace)
        parallel = LeapProfiler(budget=2, jobs=2).profile(trace)
        assert parallel.entries == serial.entries
        assert parallel.accesses_captured() == serial.accesses_captured()


class TestAdoption:
    def test_horizontal_adopt_requires_all_dimensions(self):
        scc = HorizontalSequiturSCC()
        with pytest.raises(ValueError):
            scc.adopt_grammars({"instruction": SequiturGrammar()})

    def test_vertical_adopted_entries_returned_by_finish(self):
        scc = VerticalLMADSCC()
        compressor = LMADCompressor(dims=3)
        compressor.feed_all([(0, i, i) for i in range(4)])
        entries = {(1, 0): compressor.finish()}
        scc.adopt_entries(entries)
        assert scc.finish() == entries
