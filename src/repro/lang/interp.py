"""Interpreter for the mini-IR language.

Programs execute against a :class:`~repro.runtime.process.Process`:

* globals are linked into the static segment (object probes fire for
  them, as the paper's WHOMP does for statics);
* ``new`` / ``delete`` go through the simulated allocator and fire
  object probes, with the allocation site ``function:line`` as the
  group -- the paper's "group dynamic objects by static instruction";
* every syntactic load/store in the source is a distinct static
  instruction, and each execution fires an instruction probe;
* local variables are registers and are *not* profiled, matching the
  paper's choice ("since static analysis handles stack variables very
  efficiently, we chose not to profile them").

Values are 64-bit-ish Python ints; pointers are simulated addresses.
The interpreter keeps a word-granular memory image so pointer-chasing
programs really chase the addresses the allocator handed out.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.core.events import AccessKind
from repro.lang import ast
from repro.lang.lexer import LangError
from repro.lang.parser import _ForWrapper, parse
from repro.lang.typesys import (
    INT,
    WORD,
    ArrayType,
    PointerType,
    StructType,
    Type,
    TypeTable,
)
from repro.runtime.process import Instruction, Process


class RuntimeError_(LangError):
    """Raised on mini-IR runtime errors (null deref, bad call...)."""


class _Return(Exception):
    def __init__(self, value: "TypedValue") -> None:
        self.value = value


class _Break(Exception):
    pass


class _Continue(Exception):
    pass


TypedValue = Tuple[int, Type]

NULL: TypedValue = (0, PointerType(INT))


class Frame:
    """One function activation: register variables only."""

    def __init__(self, function: ast.FunctionDecl) -> None:
        self.function = function
        self.locals: Dict[str, TypedValue] = {}


class Interpreter:
    """Execute a mini-IR program on a simulated process.

    >>> program = parse("fn main(): int { return 41 + 1; }")
    >>> Interpreter(program).run()
    42
    """

    #: guard against runaway programs (tests want determinism, not hangs)
    MAX_STEPS = 50_000_000

    def __init__(
        self, program: ast.Program, process: Optional[Process] = None
    ) -> None:
        self.program = program
        self.types = TypeTable(program)
        self.process = process if process is not None else Process()
        self.memory: Dict[int, int] = {}
        self._globals: Dict[str, Tuple[int, Type]] = {}
        self._sites: Dict[int, int] = {}
        self._steps = 0
        for declaration in program.globals:
            resolved = self.types.resolve(declaration.type_expr)
            self.process.declare_static(
                declaration.name, resolved.size(), type_name=str(resolved)
            )
            self._globals[declaration.name] = (0, resolved)  # address after link

    # -- public ---------------------------------------------------------

    def run(self, entry: str = "main", args: Tuple[int, ...] = ()) -> Optional[int]:
        """Link, execute ``entry``, finish the process; return its value."""
        table = self.process.link()
        for name in self._globals:
            __, resolved = self._globals[name]
            self._globals[name] = (table[name].address, resolved)
        try:
            function = self.program.function(entry)
        except KeyError:
            raise RuntimeError_(f"no function {entry!r}") from None
        typed_args = tuple((value, INT) for value in args)
        result = self._call(function, typed_args)
        self.process.finish()
        return result[0] if result is not None else None

    # -- calls ----------------------------------------------------------

    def _call(
        self, function: ast.FunctionDecl, args: Tuple[TypedValue, ...]
    ) -> Optional[TypedValue]:
        if len(args) != len(function.params):
            raise RuntimeError_(
                f"{function.name} expects {len(function.params)} args, "
                f"got {len(args)}",
                function.line,
            )
        frame = Frame(function)
        for param, value in zip(function.params, args):
            declared = self.types.resolve(param.type_expr)
            frame.locals[param.name] = (value[0], declared)
        try:
            self._execute_block(function.body, frame)
        except _Return as ret:
            return ret.value
        return None

    # -- statements ------------------------------------------------------

    def _execute_block(self, body: Tuple[ast.Stmt, ...], frame: Frame) -> None:
        for statement in body:
            self._execute(statement, frame)

    def _execute(self, statement: ast.Stmt, frame: Frame) -> None:
        self._steps += 1
        if self._steps > self.MAX_STEPS:
            raise RuntimeError_("step budget exhausted", statement.line)
        if isinstance(statement, ast.VarDecl):
            declared = self.types.resolve(statement.type_expr)
            if statement.initializer is not None:
                value = self._eval(statement.initializer, frame)[0]
            else:
                value = 0
            frame.locals[statement.name] = (value, declared)
        elif isinstance(statement, ast.Assign):
            self._assign(statement.target, statement.value, frame)
        elif isinstance(statement, ast.ExprStmt):
            self._eval(statement.expr, frame)
        elif isinstance(statement, ast.Delete):
            address = self._eval(statement.pointer, frame)[0]
            if address == 0:
                raise RuntimeError_("delete of null", statement.line)
            size = self.process.heap.size_of(address)
            self.process.free(address)
            if size:
                for word in range(0, size, WORD):
                    self.memory.pop(address + word, None)
        elif isinstance(statement, ast.If):
            if self._truthy(statement.condition, frame):
                self._execute_block(statement.then_body, frame)
            else:
                self._execute_block(statement.else_body, frame)
        elif isinstance(statement, ast.While):
            while self._truthy(statement.condition, frame):
                # Count iterations too, so empty bodies cannot spin past
                # the step budget.
                self._steps += 1
                if self._steps > self.MAX_STEPS:
                    raise RuntimeError_("step budget exhausted", statement.line)
                try:
                    self._execute_block(statement.body, frame)
                except _Break:
                    break
                except _Continue:
                    pass
                # A for-loop's step runs even after `continue`.
                if statement.step is not None:
                    self._execute(statement.step, frame)
        elif isinstance(statement, _ForWrapper):
            self._execute(statement.init, frame)
            self._execute(statement.loop, frame)
        elif isinstance(statement, ast.Return):
            if statement.value is None:
                raise _Return((0, INT))
            raise _Return(self._eval(statement.value, frame))
        elif isinstance(statement, ast.Break):
            raise _Break()
        elif isinstance(statement, ast.Continue):
            raise _Continue()
        else:
            raise RuntimeError_(
                f"unknown statement {type(statement).__name__}", statement.line
            )

    def _assign(self, target: ast.Expr, value_expr: ast.Expr, frame: Frame) -> None:
        value = self._eval(value_expr, frame)
        if isinstance(target, ast.VarRef) and target.name in frame.locals:
            declared = frame.locals[target.name][1]
            frame.locals[target.name] = (value[0], declared)
            return
        address, value_type = self._lvalue(target, frame)
        instruction = self._site(target, AccessKind.STORE, frame)
        self.process.store(instruction, address, min(value_type.size(), WORD))
        self.memory[address] = value[0]

    # -- expressions ----------------------------------------------------

    def _truthy(self, expr: ast.Expr, frame: Frame) -> bool:
        return self._eval(expr, frame)[0] != 0

    def _eval(self, expr: ast.Expr, frame: Frame) -> TypedValue:
        if isinstance(expr, ast.IntLiteral):
            return (expr.value, INT)
        if isinstance(expr, ast.NullLiteral):
            return NULL
        if isinstance(expr, ast.VarRef):
            if expr.name in frame.locals:
                return frame.locals[expr.name]
            if expr.name in self._globals:
                address, declared = self._globals[expr.name]
                if isinstance(declared, (StructType, ArrayType)):
                    # Aggregates decay to their address (like C arrays).
                    return (address, PointerType(self._element_type(declared)))
                instruction = self._site(expr, AccessKind.LOAD, frame)
                self.process.load(instruction, address, min(declared.size(), WORD))
                return (self.memory.get(address, 0), declared)
            raise RuntimeError_(f"unknown name {expr.name!r}", expr.line)
        if isinstance(expr, ast.Unary):
            value = self._eval(expr.operand, frame)[0]
            if expr.op == "-":
                return (-value, INT)
            if expr.op == "!":
                return (0 if value else 1, INT)
            raise RuntimeError_(f"unknown unary {expr.op!r}", expr.line)
        if isinstance(expr, ast.Binary):
            return self._binary(expr, frame)
        if isinstance(expr, ast.Call):
            try:
                function = self.program.function(expr.name)
            except KeyError:
                raise RuntimeError_(
                    f"call to unknown function {expr.name!r}", expr.line
                ) from None
            args = tuple(self._eval(argument, frame) for argument in expr.args)
            result = self._call(function, args)
            return result if result is not None else (0, INT)
        if isinstance(expr, ast.New):
            return self._new(expr, frame)
        if isinstance(expr, (ast.FieldAccess, ast.Index)):
            address, value_type = self._lvalue(expr, frame)
            instruction = self._site(expr, AccessKind.LOAD, frame)
            self.process.load(instruction, address, min(value_type.size(), WORD))
            if isinstance(value_type, (StructType, ArrayType)):
                return (address, PointerType(self._element_type(value_type)))
            return (self.memory.get(address, 0), value_type)
        if isinstance(expr, ast.AddressOf):
            address, value_type = self._lvalue(expr.target, frame)
            return (address, PointerType(value_type))
        raise RuntimeError_(f"unknown expression {type(expr).__name__}", expr.line)

    def _binary(self, expr: ast.Binary, frame: Frame) -> TypedValue:
        op = expr.op
        if op == "&&":
            if not self._truthy(expr.left, frame):
                return (0, INT)
            return (1 if self._truthy(expr.right, frame) else 0, INT)
        if op == "||":
            if self._truthy(expr.left, frame):
                return (1, INT)
            return (1 if self._truthy(expr.right, frame) else 0, INT)
        left = self._eval(expr.left, frame)[0]
        right = self._eval(expr.right, frame)[0]
        if op == "+":
            return (left + right, INT)
        if op == "-":
            return (left - right, INT)
        if op == "*":
            return (left * right, INT)
        if op == "/":
            if right == 0:
                raise RuntimeError_("division by zero", expr.line)
            return (int(left / right), INT)
        if op == "%":
            if right == 0:
                raise RuntimeError_("modulo by zero", expr.line)
            return (left - int(left / right) * right, INT)
        if op == "==":
            return (1 if left == right else 0, INT)
        if op == "!=":
            return (1 if left != right else 0, INT)
        if op == "<":
            return (1 if left < right else 0, INT)
        if op == "<=":
            return (1 if left <= right else 0, INT)
        if op == ">":
            return (1 if left > right else 0, INT)
        if op == ">=":
            return (1 if left >= right else 0, INT)
        raise RuntimeError_(f"unknown operator {op!r}", expr.line)

    def _new(self, expr: ast.New, frame: Frame) -> TypedValue:
        element = self.types.resolve(expr.type_expr)
        if expr.count is not None:
            count = self._eval(expr.count, frame)[0]
            if count <= 0:
                raise RuntimeError_(f"new with count {count}", expr.line)
            size = element.size() * count
        else:
            size = element.size()
        site = f"{frame.function.name}:{expr.line}:new {expr.type_expr}"
        address = self.process.malloc(site, size, type_name=str(element))
        return (address, PointerType(self._concrete(element)))

    # -- lvalues ------------------------------------------------------------

    def _lvalue(self, expr: ast.Expr, frame: Frame) -> Tuple[int, Type]:
        """Resolve an expression naming a memory location to
        ``(address, type-at-that-location)``."""
        if isinstance(expr, ast.VarRef):
            if expr.name in frame.locals:
                raise RuntimeError_(
                    f"{expr.name!r} is a register variable, not memory",
                    expr.line,
                )
            if expr.name in self._globals:
                return self._globals[expr.name]
            raise RuntimeError_(f"unknown name {expr.name!r}", expr.line)
        if isinstance(expr, ast.FieldAccess):
            return self._field_lvalue(expr, frame)
        if isinstance(expr, ast.Index):
            base, element = self._pointer_operand(expr.base, frame, expr.line)
            index = self._eval(expr.index, frame)[0]
            return (base + index * element.size(), element)
        raise RuntimeError_(
            f"{type(expr).__name__} is not assignable memory", expr.line
        )

    def _field_lvalue(self, expr: ast.FieldAccess, frame: Frame) -> Tuple[int, Type]:
        if expr.through_pointer:
            pointer, pointee = self._pointer_operand(expr.base, frame, expr.line)
            if pointer == 0:
                raise RuntimeError_("null pointer dereference", expr.line)
            struct = self._concrete(pointee)
            if not isinstance(struct, StructType):
                raise RuntimeError_(
                    f"-> on non-struct pointer ({struct})", expr.line
                )
            field = struct.field(expr.field_name)
            return (pointer + field.offset, self._concrete(field.type))
        address, base_type = self._lvalue(expr.base, frame)
        struct = self._concrete(base_type)
        if not isinstance(struct, StructType):
            raise RuntimeError_(f". on non-struct ({struct})", expr.line)
        field = struct.field(expr.field_name)
        return (address + field.offset, self._concrete(field.type))

    def _pointer_operand(
        self, expr: ast.Expr, frame: Frame, line: int
    ) -> Tuple[int, Type]:
        """Evaluate an expression used as a pointer; returns the address
        and the pointee/element type."""
        value, value_type = self._eval(expr, frame)
        concrete = self._concrete(value_type)
        if isinstance(concrete, PointerType):
            return (value, self._concrete(concrete.pointee))
        if isinstance(concrete, ArrayType):
            return (value, self._concrete(concrete.element))
        raise RuntimeError_(f"expected pointer, got {concrete}", line)

    def _element_type(self, aggregate: Type) -> Type:
        if isinstance(aggregate, ArrayType):
            return self._concrete(aggregate.element)
        return aggregate

    def _concrete(self, value_type: Type) -> Type:
        """Resolve placeholder struct types (self-referential pointers)
        through the type table."""
        if isinstance(value_type, StructType) and not value_type.fields:
            try:
                return self.types.struct(value_type.name)
            except Exception:
                return value_type
        return value_type

    # -- instruction sites -------------------------------------------------

    def _site(
        self, expr: ast.Expr, kind: AccessKind, frame: Frame
    ) -> Instruction:
        """Intern the static instruction for one syntactic access site."""
        node_id = id(expr)
        sequence = self._sites.setdefault(node_id, len(self._sites))
        description = self._describe(expr)
        verb = "load" if kind is AccessKind.LOAD else "store"
        name = f"{frame.function.name}:{expr.line}:{verb}:{description}#{sequence}"
        return self.process.instruction(name, kind)

    @staticmethod
    def _describe(expr: ast.Expr) -> str:
        if isinstance(expr, ast.FieldAccess):
            return ("->" if expr.through_pointer else ".") + expr.field_name
        if isinstance(expr, ast.Index):
            return "[]"
        if isinstance(expr, ast.VarRef):
            return expr.name
        return type(expr).__name__.lower()


def run_source(
    source: str,
    entry: str = "main",
    process: Optional[Process] = None,
    args: Tuple[int, ...] = (),
) -> Tuple[Optional[int], Interpreter]:
    """Parse and run mini-IR source; return (exit value, interpreter).

    The interpreter is returned so callers can pull the recorded trace
    from ``interpreter.process``.
    """
    interpreter = Interpreter(parse(source), process)
    result = interpreter.run(entry, args)
    return result, interpreter
