"""Synthetic benchmark workloads: micro-patterns plus the seven SPEC2000
stand-ins of the paper's evaluation (see repro.workloads.registry)."""

from repro.workloads.base import REGISTRY, Workload, WorkloadRegistry

__all__ = ["REGISTRY", "Workload", "WorkloadRegistry"]
