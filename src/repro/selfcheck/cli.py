"""``repro-lint``: the REPROLINT command-line front end.

Exit codes follow the MIRCHECK convention:

* ``0`` -- clean tree (or no findings outside the baseline)
* ``1`` -- new findings, or the fixture self-test caught a false
  negative
* ``2`` -- usage errors, unreadable files, syntax errors

``--baseline FILE`` compares against recorded fingerprints and fails
only on *new* findings; ``--write-baseline`` records the current state
(the shipped ``.reprolint-baseline.json`` is empty: the tree is
expected to stay clean, not grandfathered).  ``--fixtures`` runs the
seeded-defect self-test instead of analyzing a tree.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.selfcheck import engine
from repro.selfcheck.findings import CODES, Finding
from repro.selfcheck.loader import SelfCheckError
from repro.selfcheck.reporting import render_json, render_sarif, render_text

TOOL_NAME = "reprolint"
TOOL_VERSION = "1.0.0"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "Project-specific static analysis: lockset races, fork "
            "safety, durability, and determinism invariants."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to analyze (e.g. src/)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help="fail only on findings whose fingerprint is not in FILE",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="record current findings into --baseline FILE and exit 0",
    )
    parser.add_argument(
        "--fixtures",
        action="store_true",
        help=(
            "run the seeded-defect self-test: every # repro: "
            "expect(CODE) must fire and every code must be exercised"
        ),
    )
    parser.add_argument(
        "--include-fixtures",
        action="store_true",
        help="do not skip '# repro: fixture' modules when analyzing",
    )
    return parser


def _records(findings: List[Finding]) -> List[dict]:
    return [finding.to_dict() for finding in findings]


def _emit(findings: List[Finding], fmt: str, extra: dict) -> None:
    if fmt == "json":
        print(render_json(_records(findings), TOOL_NAME, extra))
    elif fmt == "sarif":
        print(render_sarif(_records(findings), TOOL_NAME, CODES, TOOL_VERSION))
    else:
        text = render_text(_records(findings))
        if text:
            print(text)


def _run_fixtures(fmt: str) -> int:
    result = engine.fixture_selftest()
    if fmt in ("json", "sarif"):
        _emit(result.findings, fmt, {"selftest_ok": result.ok})
        if not result.ok:
            print(result.render(), file=sys.stderr)
    else:
        print(result.render())
    return 0 if result.ok else 1


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.fixtures:
            return _run_fixtures(args.format)
        if not args.paths:
            parser.error("no paths given (try: repro-lint src/)")
        findings = engine.analyze_paths(
            args.paths, include_fixtures=args.include_fixtures
        )
        if args.write_baseline:
            if not args.baseline:
                parser.error("--write-baseline requires --baseline FILE")
            engine.write_baseline(args.baseline, findings)
            print(
                f"wrote {len(findings)} fingerprint(s) to {args.baseline}",
                file=sys.stderr,
            )
            return 0
        baseline = (
            engine.load_baseline(args.baseline) if args.baseline else set()
        )
        new, known = engine.split_by_baseline(findings, baseline)
        _emit(
            findings,
            args.format,
            {"new": len(new), "baselined": len(known)},
        )
        if args.format == "text":
            summary = (
                f"{len(findings)} finding(s), {len(new)} new, "
                f"{len(known)} baselined"
            )
            print(summary, file=sys.stderr)
        return 1 if new else 0
    except SelfCheckError as exc:
        print(f"repro-lint: error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
