"""Declarative SLOs: parsing, evaluation verdicts, and rendering."""

import json

import pytest

from repro.obs.slo import (
    SloError,
    evaluate_slos,
    load_slo_file,
    parse_slo_document,
    render_slo_results,
)


def latency_rule(**overrides):
    rule = {
        "name": "ingest-p99",
        "kind": "latency",
        "event": "request",
        "match": {"endpoint": "ingest"},
        "quantile": 0.99,
        "max_seconds": 0.5,
    }
    rule.update(overrides)
    return rule


def document(*rules):
    return {"version": 1, "slos": list(rules)}


def request_events(seconds_list, endpoint="ingest"):
    return [
        {"v": 1, "ts": 0.0, "kind": "request", "endpoint": endpoint,
         "seconds": seconds}
        for seconds in seconds_list
    ]


class TestParsing:
    def test_parses_latency_and_dilation(self):
        rules = parse_slo_document(
            document(
                latency_rule(),
                {"name": "overhead", "kind": "dilation",
                 "numerator": "whomp/compression", "denominator": "whomp",
                 "max_ratio": 0.9},
            )
        )
        assert [r.kind for r in rules] == ["latency", "dilation"]
        assert rules[0].match == {"endpoint": "ingest"}
        assert rules[1].max_ratio == 0.9

    def test_rejects_wrong_version(self):
        with pytest.raises(SloError, match="version"):
            parse_slo_document({"version": 99, "slos": [latency_rule()]})

    def test_rejects_empty_rules(self):
        with pytest.raises(SloError, match="non-empty"):
            parse_slo_document({"version": 1, "slos": []})

    def test_rejects_unknown_kind(self):
        with pytest.raises(SloError, match="unknown kind"):
            parse_slo_document(
                document({"name": "x", "kind": "throughput"})
            )

    def test_rejects_missing_threshold(self):
        bad = latency_rule()
        del bad["max_seconds"]
        with pytest.raises(SloError):
            parse_slo_document(document(bad))

    def test_rejects_quantile_outside_unit_interval(self):
        with pytest.raises(SloError, match="quantile"):
            parse_slo_document(document(latency_rule(quantile=1.5)))

    def test_rejects_nameless_rule(self):
        with pytest.raises(SloError, match="name"):
            parse_slo_document(document({"kind": "latency"}))

    def test_load_slo_file(self, tmp_path):
        path = tmp_path / "slo.json"
        path.write_text(json.dumps(document(latency_rule())))
        assert len(load_slo_file(str(path))) == 1

    def test_load_rejects_bad_json(self, tmp_path):
        path = tmp_path / "slo.json"
        path.write_text("{nope")
        with pytest.raises(SloError, match="not valid JSON"):
            load_slo_file(str(path))

    def test_load_rejects_missing_file(self, tmp_path):
        with pytest.raises(SloError, match="cannot read"):
            load_slo_file(str(tmp_path / "absent.json"))


class TestLatencyEvaluation:
    def test_ok_when_quantile_under_threshold(self):
        rules = parse_slo_document(document(latency_rule(max_seconds=1.0)))
        results = evaluate_slos(rules, request_events([0.1] * 100))
        assert results[0].ok
        assert results[0].measured == pytest.approx(0.1, rel=0.05)

    def test_breach_when_quantile_over_threshold(self):
        rules = parse_slo_document(document(latency_rule(max_seconds=0.05)))
        results = evaluate_slos(rules, request_events([0.1] * 100))
        assert not results[0].ok

    def test_match_filters_events(self):
        rules = parse_slo_document(document(latency_rule(max_seconds=0.5)))
        events = request_events([10.0] * 50, endpoint="diff") + request_events(
            [0.01] * 50
        )
        results = evaluate_slos(rules, events)
        assert results[0].ok  # the slow events are another endpoint's

    def test_no_data_breaches_by_default(self):
        rules = parse_slo_document(document(latency_rule()))
        results = evaluate_slos(rules, [])
        assert not results[0].ok
        assert results[0].detail == "no data"
        assert results[0].measured is None

    def test_no_data_allowed_when_opted_in(self):
        rules = parse_slo_document(document(latency_rule(allow_missing=True)))
        assert evaluate_slos(rules, [])[0].ok


class TestDilationEvaluation:
    @staticmethod
    def stage(path, seconds):
        return {"v": 1, "ts": 0.0, "kind": "stage", "path": path,
                "seconds": seconds}

    def rules(self, max_ratio):
        return parse_slo_document(
            document(
                {"name": "overhead", "kind": "dilation",
                 "numerator": "whomp/compression", "denominator": "whomp",
                 "max_ratio": max_ratio}
            )
        )

    def test_ok_and_breach(self):
        events = [
            self.stage("whomp", 2.0),
            self.stage("whomp/compression", 1.0),
        ]
        assert evaluate_slos(self.rules(0.6), events)[0].ok
        result = evaluate_slos(self.rules(0.4), events)[0]
        assert not result.ok
        assert result.measured == pytest.approx(0.5)

    def test_missing_denominator_breaches(self):
        result = evaluate_slos(
            self.rules(0.5), [self.stage("whomp/compression", 1.0)]
        )[0]
        assert not result.ok
        assert "no data" in result.detail


class TestRendering:
    def test_render_marks_breaches_and_counts(self):
        rules = parse_slo_document(
            document(
                latency_rule(name="fast", max_seconds=10.0),
                latency_rule(name="slow", max_seconds=1e-6),
            )
        )
        text = render_slo_results(
            evaluate_slos(rules, request_events([0.01] * 10))
        )
        assert "OK" in text and "BREACH" in text
        assert "2 SLO(s) evaluated, 1 breach(es)" in text

    def test_results_serialize(self):
        rules = parse_slo_document(document(latency_rule()))
        payload = evaluate_slos(rules, request_events([0.01]))[0].to_json()
        assert set(payload) == {
            "name", "kind", "ok", "measured", "threshold", "detail"
        }
