"""Ablation bench: does the decomposition itself pay?

WHOMP's design compresses each tuple dimension with its own grammar
(horizontal decomposition).  The ablation compares against compressing
the *interleaved* object-relative tuple stream with a single Sequitur
grammar: the per-dimension streams are individually more regular, so
the decomposed form should be smaller -- the paper's Section 2.2 claim
that decomposed streams "tend to be simple and more regular".
"""

from conftest import once

from repro.compression.sequitur import SequiturGrammar
from repro.core.cdc import translate_trace
from repro.profilers.whomp import WhompProfiler


def tuple_stream_grammar(trace):
    """Single grammar over the interleaved 4-tuples."""
    grammar = SequiturGrammar()
    for access in translate_trace(trace):
        grammar.feed(
            (access.instruction_id, access.group, access.object_serial, access.offset)
        )
    return grammar


def test_decomposed_vs_interleaved(benchmark, context):
    def measure():
        rows = {}
        for name in ("gzip", "twolf", "parser"):
            trace = context.trace(name)
            decomposed = WhompProfiler().profile(trace).size()
            combined = tuple_stream_grammar(trace).size()
            # a combined symbol carries 4 dimensions: compare in
            # dimension-values so neither side gets a free factor of 4
            rows[name] = (decomposed, combined * 4)
        return rows

    rows = once(benchmark, measure)
    print()
    for name, (decomposed, combined) in rows.items():
        print(f"{name:8s} decomposed {decomposed:7d} values, "
              f"interleaved {combined:7d} values")
    # the decomposed form wins on at least 2 of the 3 benchmarks and
    # in aggregate (some single benchmarks can tie)
    wins = sum(1 for d, c in rows.values() if d < c)
    assert wins >= 2
    assert sum(d for d, __ in rows.values()) < sum(c for __, c in rows.values())
