"""Horizontal and vertical decomposition (Section 2.2).

*Horizontal* decomposition splits the tuple stream into one stream per
dimension: "a single stream of four tuples is split into four streams of
individual tuple elements".

*Vertical* decomposition partitions the stream by the value of one
dimension: "collects objects which share the same value in one dimension
(the same instruction-id, for example)".  Sub-streams can be decomposed
again ("further decomposition by group gives a number of simpler
(object, offset) streams"), which is exactly how LEAP arrives at its
per-``(instruction, group)`` streams.

Both operations preserve order and, because every tuple carries its
time-stamp, vertical decomposition remains invertible: :func:`recombine`
merges sub-streams back into the original order.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from repro.core.tuples import DIMENSIONS, ObjectRelativeAccess


def horizontal(
    stream: Iterable[ObjectRelativeAccess],
    dimensions: Sequence[str] = DIMENSIONS,
) -> Dict[str, List[int]]:
    """Split the stream into per-dimension value streams.

    Returns a dict mapping each requested dimension name to its stream.
    The default dimensions are the paper's four (WHOMP compresses each
    with its own Sequitur instance).
    """
    streams: Dict[str, List[int]] = {name: [] for name in dimensions}
    for access in stream:
        for name in dimensions:
            streams[name].append(access.dimension(name))
    return streams


def vertical(
    stream: Iterable[ObjectRelativeAccess], dimension: str
) -> Dict[int, List[ObjectRelativeAccess]]:
    """Partition the stream by the value of ``dimension``.

    Each sub-stream keeps its tuples in original (time) order.
    """
    partitions: Dict[int, List[ObjectRelativeAccess]] = {}
    for access in stream:
        partitions.setdefault(access.dimension(dimension), []).append(access)
    return partitions


def vertical_by_instruction_group(
    stream: Iterable[ObjectRelativeAccess],
) -> Dict[Tuple[int, int], List[ObjectRelativeAccess]]:
    """LEAP's decomposition: vertically by instruction, then by group.

    Returns sub-streams keyed by ``(instruction_id, group)``; each is the
    (object, offset, time) stream the LMAD compressor consumes.
    """
    partitions: Dict[Tuple[int, int], List[ObjectRelativeAccess]] = {}
    for access in stream:
        key = (access.instruction_id, access.group)
        partitions.setdefault(key, []).append(access)
    return partitions


def recombine(
    partitions: Iterable[Sequence[ObjectRelativeAccess]],
) -> List[ObjectRelativeAccess]:
    """Invert a vertical decomposition using the time-stamp dimension.

    This realizes the paper's point that adding the time-stamp restores
    the ability to "directly index into the stream based on time": the
    merge is a sort on the tag.
    """
    merged = [access for partition in partitions for access in partition]
    merged.sort(key=lambda access: access.time)
    return merged


def project(
    stream: Iterable[ObjectRelativeAccess], dimensions: Sequence[str]
) -> List[Tuple[int, ...]]:
    """Project the stream onto a subset of dimensions, keeping order.

    Used for mixed sub-streams, e.g. the (object, offset, time) triples
    LEAP records.
    """
    return [
        tuple(access.dimension(name) for name in dimensions) for access in stream
    ]
