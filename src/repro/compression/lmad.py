"""Linear Memory Access Descriptor (LMAD) compression.

LEAP "uses a simple linear compressor, which is based on the linear
memory access descriptor (LMAD) model in [Paek & Hoeflinger]"
(Section 4.1).  An LMAD is the triple ``[start, stride, count]`` where
``start`` and ``stride`` are n-vectors (n = dimensionality of the
compressed stream): it describes the arithmetic sequence

    start, start + stride, start + 2*stride, ..., start + (count-1)*stride

The compressor reads symbols and extends the open descriptor while they
fit its linear pattern, starting a new descriptor otherwise.  The
paper's example:  offsets ``0 4 8 12 44 40 36`` compress to
``[0, 4, 4]`` and ``[44, -4, 3]``.

The descriptor *budget* makes the scheme lossy: once the maximum number
of LMADs for a stream is reached (the paper fixes 30 per
(instruction-id, group) pair), further non-fitting symbols are
discarded and only summary statistics -- max, min, and granularity --
are kept (Section 4.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import gcd
from typing import Iterable, List, Optional, Sequence, Tuple

Vector = Tuple[int, ...]

#: LEAP's default descriptor budget per compressed stream (Section 4.1:
#: "we chose a maximum of 30 LMADs for a given (instruction-id, group)
#: pair").
DEFAULT_BUDGET = 30


@dataclass(frozen=True)
class LMAD:
    """One closed linear descriptor over an n-dimensional symbol stream."""

    start: Vector
    stride: Vector
    count: int

    def __post_init__(self) -> None:
        if len(self.start) != len(self.stride):
            raise ValueError("start/stride dimensionality mismatch")
        if self.count < 1:
            raise ValueError(f"LMAD count must be >= 1, got {self.count}")

    @property
    def dims(self) -> int:
        return len(self.start)

    @property
    def last(self) -> Vector:
        """The final element described."""
        return tuple(
            s + (self.count - 1) * d for s, d in zip(self.start, self.stride)
        )

    def element(self, index: int) -> Vector:
        """The ``index``-th element (0-based)."""
        if not 0 <= index < self.count:
            raise IndexError(index)
        return tuple(s + index * d for s, d in zip(self.start, self.stride))

    def expand(self) -> Iterable[Vector]:
        """All described elements in order."""
        for index in range(self.count):
            yield self.element(index)

    def component(self, dim: int) -> "LMAD":
        """Project onto one dimension (a 1-D LMAD)."""
        return LMAD((self.start[dim],), (self.stride[dim],), self.count)

    def __repr__(self) -> str:
        if self.dims == 1:
            return f"[{self.start[0]}, {self.stride[0]}, {self.count}]"
        return f"[{list(self.start)}, {list(self.stride)}, {self.count}]"


@dataclass
class OverflowSummary:
    """What the compressor keeps about symbols it had to discard.

    "The compressor will then discard the new symbols in the stream, and
    only record some overall information such as max, min, and
    granularity." (Section 4.1)  Granularity is tracked per dimension as
    the gcd of deltas from the first discarded symbol.
    """

    dims: int
    count: int = 0
    minimum: Optional[Vector] = None
    maximum: Optional[Vector] = None
    granularity: Optional[Vector] = None
    _anchor: Optional[Vector] = field(default=None, repr=False)

    def add(self, symbol: Vector) -> None:
        self.count += 1
        if self.minimum is None:
            self.minimum = symbol
            self.maximum = symbol
            self.granularity = tuple(0 for __ in symbol)
            self._anchor = symbol
            return
        self.minimum = tuple(min(a, b) for a, b in zip(self.minimum, symbol))
        self.maximum = tuple(max(a, b) for a, b in zip(self.maximum, symbol))
        assert self._anchor is not None and self.granularity is not None
        self.granularity = tuple(
            gcd(g, abs(s - a))
            for g, s, a in zip(self.granularity, symbol, self._anchor)
        )


class LMADCompressor:
    """Online bounded-budget LMAD compressor for one symbol stream.

    Feed n-dimensional integer vectors with :meth:`feed`; read the
    closed descriptors from :attr:`lmads` after :meth:`finish`.

    The matching rule is the natural greedy one: an open descriptor with
    one element accepts any second element (fixing the stride); an open
    descriptor with a stride accepts exactly the next arithmetic term.
    A non-fitting symbol closes the descriptor and opens a new one if
    the budget allows, otherwise the symbol goes to the overflow
    summary.

    ``overflow_cap`` is the degraded-mode backstop: when more than that
    many symbols have spilled past the budget, the stream is evidently
    too irregular for descriptors to matter, so the compressor *folds
    its own descriptors into the overflow summary* and degrades to a
    pure summary descriptor (min/max/granularity over everything).
    That keeps the entry O(1) no matter how hostile the stream, at the
    price of marking it :attr:`LMADProfileEntry.summarized`.  ``None``
    (the default) disables the fallback and reproduces the paper's
    behaviour exactly.
    """

    def __init__(
        self,
        dims: int,
        budget: int = DEFAULT_BUDGET,
        overflow_cap: Optional[int] = None,
    ) -> None:
        if dims < 1:
            raise ValueError("dims must be >= 1")
        if budget < 1:
            raise ValueError("budget must be >= 1")
        if overflow_cap is not None and overflow_cap < 1:
            raise ValueError("overflow_cap must be >= 1 or None")
        self.dims = dims
        self.budget = budget
        self.overflow_cap = overflow_cap
        self.lmads: List[LMAD] = []
        self.overflow = OverflowSummary(dims)
        self._open_start: Optional[Vector] = None
        self._open_stride: Optional[Vector] = None
        self._open_count = 0
        self._fed = 0
        self._finished = False
        self._summarized = False

    # -- feeding ---------------------------------------------------------

    def feed(self, symbol: Sequence[int]) -> None:
        if self._finished:
            raise RuntimeError("compressor already finished")
        vector = tuple(symbol)
        if len(vector) != self.dims:
            raise ValueError(
                f"expected {self.dims}-dimensional symbol, got {len(vector)}"
            )
        self._fed += 1
        if self._summarized:
            self.overflow.add(vector)
            return
        if self._open_start is None:
            self._open(vector)
            return
        if self._open_count == 1:
            # Second element fixes the stride.
            self._open_stride = tuple(
                b - a for a, b in zip(self._open_start, vector)
            )
            self._open_count = 2
            return
        assert self._open_stride is not None
        expected = tuple(
            s + self._open_count * d
            for s, d in zip(self._open_start, self._open_stride)
        )
        if vector == expected:
            self._open_count += 1
            return
        self._close_open()
        self._open(vector)

    def feed_all(self, symbols: Iterable[Sequence[int]]) -> None:
        for symbol in symbols:
            self.feed(symbol)

    def _open(self, vector: Vector) -> None:
        if len(self.lmads) >= self.budget:
            # Budget exhausted: lossy path.
            self.overflow.add(vector)
            self._open_start = None
            self._open_stride = None
            self._open_count = 0
            if (
                self.overflow_cap is not None
                and self.overflow.count > self.overflow_cap
            ):
                self._summarize()
            return
        self._open_start = vector
        self._open_stride = None
        self._open_count = 1

    def _summarize(self) -> None:
        """Degrade to a pure summary: fold every closed descriptor into
        the overflow summary and drop the descriptor list.

        Each LMAD's elements form an arithmetic sequence, so feeding the
        summary its endpoints and folding ``|stride|`` into the per-
        dimension gcd yields the same min/max and a granularity no finer
        than the elementwise one -- without expanding the sequence.
        """
        for lmad in self.lmads:
            self.overflow.add(lmad.start)
            extra = lmad.count - 1
            if extra > 0:
                self.overflow.add(lmad.last)
                self.overflow.count += extra - 1
                assert self.overflow.granularity is not None
                self.overflow.granularity = tuple(
                    gcd(g, abs(d))
                    for g, d in zip(self.overflow.granularity, lmad.stride)
                )
        self.lmads = []
        self._summarized = True

    def _close_open(self) -> None:
        if self._open_start is None:
            return
        stride = (
            self._open_stride
            if self._open_stride is not None
            else tuple(0 for __ in range(self.dims))
        )
        self.lmads.append(LMAD(self._open_start, stride, self._open_count))
        self._open_start = None
        self._open_stride = None
        self._open_count = 0

    def finish(self) -> "LMADProfileEntry":
        """Close the open descriptor and return the packaged result."""
        if not self._finished:
            self._close_open()
            self._finished = True
        return LMADProfileEntry(
            lmads=tuple(self.lmads),
            overflow=self.overflow,
            total_symbols=self._fed,
            summarized=self._summarized,
        )

    # -- metrics -------------------------------------------------------------

    @property
    def symbols_fed(self) -> int:
        return self._fed

    @property
    def symbols_captured(self) -> int:
        return self._fed - self.overflow.count


@dataclass(frozen=True)
class LMADProfileEntry:
    """The compressed form of one sub-stream: descriptors + summary."""

    lmads: Tuple[LMAD, ...]
    overflow: OverflowSummary
    total_symbols: int
    #: True when the compressor gave up on descriptors entirely and the
    #: whole stream lives in the overflow summary (overflow-cap fallback)
    summarized: bool = False

    @property
    def captured_symbols(self) -> int:
        return self.total_symbols - self.overflow.count

    @property
    def sample_quality(self) -> float:
        """Fraction of the stream captured in descriptors (Section 4.1's
        *sample quality*); 1.0 for an empty stream."""
        if not self.total_symbols:
            return 1.0
        return self.captured_symbols / self.total_symbols

    @property
    def complete(self) -> bool:
        """True when nothing was discarded."""
        return self.overflow.count == 0

    def expand(self) -> List[Vector]:
        """All captured elements, in stream order."""
        out: List[Vector] = []
        for lmad in self.lmads:
            out.extend(lmad.expand())
        return out

    def size_records(self) -> int:
        """Profile size in fixed-width records: one per descriptor plus
        one for the overflow summary when present."""
        return len(self.lmads) + (1 if self.overflow.count else 0)


def compress(
    symbols: Iterable[Sequence[int]], dims: int, budget: int = DEFAULT_BUDGET
) -> LMADProfileEntry:
    """One-shot convenience wrapper around :class:`LMADCompressor`."""
    compressor = LMADCompressor(dims, budget)
    compressor.feed_all(symbols)
    return compressor.finish()
