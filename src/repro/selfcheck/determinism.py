"""Determinism and event-schema checking (RL141-RL144).

The capture pipeline is seed-deterministic by contract: the same
workload seed must produce byte-identical traces and profiles (that is
what makes profile diffs and the content-addressed store meaningful).
Wall-clock reads and unseeded randomness on the capture path break the
contract silently.  ``time.perf_counter``/``monotonic`` stay legal --
timing measurements do not feed captured bytes -- and
``random.Random(seed)`` is the *sanctioned* way to randomize.

Capture-path modules are identified by package prefix plus the
``# repro: capture-path`` marker for modules that live elsewhere.

Event emitters are checked against the declared schema
(``EVENT_SCHEMAS`` in :mod:`repro.obs.events`, parsed statically from
the analyzed tree, never imported): an unknown literal kind is RL143;
fields outside the declaration, or missing required fields in a call
with no ``**kwargs`` expansion, are RL144.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set

from repro.selfcheck.findings import FindingSink
from repro.selfcheck.loader import SourceModule, dotted_name

#: packages whose capture output must be a pure function of the seed
_CAPTURE_PREFIXES = (
    "repro.core",
    "repro.compression",
    "repro.profilers",
    "repro.runtime",
    "repro.workloads",
    "repro.lang",
)

_WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "datetime.now",
        "datetime.utcnow",
        "datetime.today",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: module-level ``random.*`` draws from the shared global generator
_GLOBAL_RANDOM_CALLS = frozenset(
    {
        "random.random",
        "random.randint",
        "random.randrange",
        "random.uniform",
        "random.choice",
        "random.choices",
        "random.sample",
        "random.shuffle",
        "random.gauss",
        "random.seed",
    }
)

_ENTROPY_CALLS = frozenset({"os.urandom", "uuid.uuid4", "secrets.token_hex"})

#: envelope fields every event may carry regardless of schema
_ENVELOPE_FIELDS = frozenset({"trace", "span"})


def is_capture_module(module: SourceModule) -> bool:
    if "capture-path" in module.markers:
        return True
    name = module.name
    return any(
        name == prefix or name.startswith(prefix + ".")
        for prefix in _CAPTURE_PREFIXES
    )


def extract_event_schemas(
    modules: List[SourceModule],
) -> Optional[Dict[str, dict]]:
    """The ``EVENT_SCHEMAS`` literal from the events module, when the
    analyzed tree contains one.

    Prefers the canonical ``repro.obs.events``; falls back to any
    analyzed module declaring ``EVENT_SCHEMAS`` (the determinism
    fixture carries its own table so the self-test is self-contained).
    """
    canonical = [m for m in modules if m.name.endswith("obs.events")]
    for module in canonical + [m for m in modules if m not in canonical]:
        schemas = _schemas_of(module)
        if schemas is not None:
            return schemas
    return None


def _schemas_of(module: SourceModule) -> Optional[Dict[str, dict]]:
    for node in module.tree.body:
            targets: List[ast.AST] = []
            if isinstance(node, ast.Assign):
                targets = node.targets
                value = node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets = [node.target]
                value = node.value
            else:
                continue
            for target in targets:
                if (
                    isinstance(target, ast.Name)
                    and target.id == "EVENT_SCHEMAS"
                ):
                    try:
                        raw = ast.literal_eval(value)
                    except ValueError:
                        return None
                    if isinstance(raw, dict):
                        return raw
    return None


def check_module_determinism(
    module: SourceModule,
    schemas: Optional[Dict[str, dict]],
    sink: FindingSink,
) -> None:
    if is_capture_module(module):
        _check_capture_purity(module, sink)
    if schemas is not None:
        _check_event_calls(module, schemas, sink)


def _check_capture_purity(module: SourceModule, sink: FindingSink) -> None:
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        name = dotted_name(node.func)
        if name is None:
            continue
        if name in _WALL_CLOCK_CALLS:
            sink.report(
                "RL141",
                node.lineno,
                node.col_offset,
                f"wall-clock read {name}() in a seed-deterministic "
                f"capture path: captured bytes must be a pure function "
                f"of the seed (perf_counter/monotonic are fine for "
                f"timing)",
                detail=name,
            )
        elif name in _GLOBAL_RANDOM_CALLS or name in _ENTROPY_CALLS:
            sink.report(
                "RL142",
                node.lineno,
                node.col_offset,
                f"unseeded randomness {name}() in a seed-deterministic "
                f"capture path: draw from an explicit "
                f"random.Random(seed) instead",
                detail=name,
            )
        elif name in ("random.Random", "Random") and not (
            node.args or node.keywords
        ):
            sink.report(
                "RL142",
                node.lineno,
                node.col_offset,
                "random.Random() with no seed falls back to OS entropy; "
                "pass the workload seed explicitly",
                detail="random.Random",
            )


def _check_event_calls(
    module: SourceModule, schemas: Dict[str, dict], sink: FindingSink
) -> None:
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        if not isinstance(node.func, ast.Attribute):
            continue
        if node.func.attr not in ("emit", "_emit_event"):
            continue
        if not node.args:
            continue
        kind_node = node.args[0]
        if not (
            isinstance(kind_node, ast.Constant)
            and isinstance(kind_node.value, str)
        ):
            continue  # dynamic kinds are checked at the literal call sites
        kind = kind_node.value
        schema = schemas.get(kind)
        if schema is None:
            sink.report(
                "RL143",
                node.lineno,
                node.col_offset,
                f"event kind {kind!r} is not declared in "
                f"repro.obs.events.EVENT_SCHEMAS; declare its fields "
                f"before emitting it",
                detail=kind,
            )
            continue
        required = set(schema.get("required", ()))
        optional = set(schema.get("optional", ()))
        is_open = bool(schema.get("open", False))
        provided: Set[str] = set()
        has_star_kwargs = False
        for keyword in node.keywords:
            if keyword.arg is None:
                has_star_kwargs = True
            else:
                provided.add(keyword.arg)
        extra = provided - required - optional - _ENVELOPE_FIELDS
        if extra and not is_open:
            sink.report(
                "RL144",
                node.lineno,
                node.col_offset,
                f"event {kind!r} carries undeclared field(s) "
                f"{_fields_text(extra)}; add them to EVENT_SCHEMAS or "
                f"drop them",
                detail=f"{kind}:+{','.join(sorted(extra))}",
            )
        missing = required - provided
        if missing and not has_star_kwargs:
            sink.report(
                "RL144",
                node.lineno,
                node.col_offset,
                f"event {kind!r} is missing required field(s) "
                f"{_fields_text(missing)} declared in EVENT_SCHEMAS",
                detail=f"{kind}:-{','.join(sorted(missing))}",
            )


def _fields_text(names) -> str:
    return ", ".join(f"'{name}'" for name in sorted(names))
