"""``repro-obs``: the TRACELINK command-line front-end.

Subcommands::

    repro-obs tail --events PATH [--kind K] [--trace ID] [--count N]
        Print the most recent structured event records (JSONL in,
        one-line summaries or --json out).

    repro-obs trace list (--events PATH | --url URL)
        List the trace ids present in an event log or a daemon's ring.

    repro-obs trace show ID (--events PATH | --url URL)
        Render one trace's span tree as ASCII.  ID may be a unique
        prefix.

    repro-obs top --events PATH [--limit N]
        The hottest span paths by accumulated wall time.

    repro-obs flame --events PATH [--trace ID] [-o PATH]
        Folded-stack lines (``parent;child <microseconds>``) for
        flamegraph tools.

    repro-obs slo check --slo FILE --events PATH [--json]
        Evaluate declarative latency/dilation SLOs against an event
        log; exit 1 on any breach.

Event logs are what ``--trace-out`` writes (``repro-profile``,
``repro-serve``, ``repro-experiments``) and what the daemon's
``/tracez`` serves; ``--url`` points at a live ``repro-serve serve``
daemon instead of a file.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional

from repro.obs.events import filter_events, read_events
from repro.obs.slo import (
    SloError,
    evaluate_slos,
    load_slo_file,
    render_slo_results,
)
from repro.obs.trace import (
    folded_stacks,
    render_top,
    render_trace_tree,
    top_from_spans,
    top_spans,
)


def _fetch_json(url: str, path: str):
    """GET one JSON endpoint from a daemon; ``ValueError`` on failure."""
    import urllib.error
    import urllib.request

    try:
        with urllib.request.urlopen(
            f"{url.rstrip('/')}{path}", timeout=30.0
        ) as response:
            return json.loads(response.read().decode("utf-8"))
    except urllib.error.HTTPError as exc:
        detail = exc.read().decode("utf-8", errors="replace").strip()
        raise ValueError(f"daemon answered {exc.code}: {detail}") from None
    except urllib.error.URLError as exc:
        raise ValueError(f"daemon unreachable: {exc.reason}") from None


def _load_events(args) -> List[Dict[str, object]]:
    if getattr(args, "events", None):
        return read_events(args.events)
    return []


def _resolve_trace_id(
    wanted: str, candidates: List[str]
) -> Optional[str]:
    """Exact id, else a unique prefix; None when ambiguous/absent."""
    if wanted in candidates:
        return wanted
    prefixed = [tid for tid in candidates if tid.startswith(wanted)]
    return prefixed[0] if len(prefixed) == 1 else None


def _trace_ids_from_events(records: List[Dict[str, object]]) -> List[str]:
    seen: Dict[str, None] = {}
    for record in records:
        trace = record.get("trace")
        if isinstance(trace, str) and trace not in seen:
            seen[trace] = None
    return list(seen)


def _summarize_event(record: Dict[str, object]) -> str:
    ts = record.get("ts")
    stamp = f"{float(ts):.3f}" if isinstance(ts, (int, float)) else "-"
    trace = record.get("trace")
    tag = f" [{str(trace)[:12]}]" if isinstance(trace, str) else ""
    skip = {"v", "ts", "kind", "trace", "span", "spans"}
    detail = " ".join(
        f"{key}={record[key]}"
        for key in record
        if key not in skip and not isinstance(record[key], (dict, list))
    )
    return f"{stamp} {str(record.get('kind')):<12}{tag} {detail}".rstrip()


def _run_tail(args) -> int:
    records = _load_events(args)
    records = filter_events(records, kind=args.kind, trace=args.trace)
    if args.count:
        records = records[-args.count:]
    if args.as_json:
        for record in records:
            print(json.dumps(record, sort_keys=True))
    else:
        for record in records:
            print(_summarize_event(record))
        print(f"{len(records)} event record(s)")
    return 0


def _document_for_trace(
    args, trace_id: str
) -> Optional[Dict[str, object]]:
    """The trace document for one id, from a file or a daemon.

    A JSONL log carries the span trees in its final ``trace`` record;
    the daemon carries whole stored documents under ``/tracez``.
    Either way the caller gets the canonical document shape.
    """
    if args.url:
        payload = _fetch_json(args.url, f"/tracez?trace={trace_id}")
        documents = payload.get("documents") or []
        if documents:
            return documents[0].get("document")
        records = payload.get("records") or []
        return {"trace_id": trace_id, "spans": [], "events": records}
    records = _load_events(args)
    spans: List[Dict[str, object]] = []
    for record in records:
        if record.get("kind") == "trace" and record.get("trace") == trace_id:
            spans = [s for s in record.get("spans", ()) if isinstance(s, dict)]
    trace_records = filter_events(records, trace=trace_id)
    if not spans and not trace_records:
        return None
    return {"trace_id": trace_id, "spans": spans, "events": trace_records}


def _run_trace(args) -> int:
    if args.url:
        try:
            if args.action == "list":
                payload = _fetch_json(args.url, "/tracez")
                for row in payload.get("traces", ()):
                    print(
                        f"{row.get('trace_id')}  {row.get('records')} "
                        f"record(s)  kinds={','.join(row.get('kinds', ()))}"
                    )
                return 0
            candidates = [
                str(row.get("trace_id"))
                for row in _fetch_json(args.url, "/tracez").get("traces", ())
            ]
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 2
    else:
        if not args.events:
            print("trace: need --events PATH or --url URL", file=sys.stderr)
            return 2
        records = _load_events(args)
        candidates = _trace_ids_from_events(records)
        if args.action == "list":
            for tid in candidates:
                count = len(filter_events(records, trace=tid))
                print(f"{tid}  {count} record(s)")
            return 0
    trace_id = _resolve_trace_id(args.trace_id, candidates)
    if trace_id is None:
        print(
            f"no unique trace matching {args.trace_id!r} "
            f"({len(candidates)} trace(s) known)",
            file=sys.stderr,
        )
        return 2
    try:
        document = _document_for_trace(args, trace_id)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if document is None:
        print(f"no data for trace {trace_id}", file=sys.stderr)
        return 2
    print(render_trace_tree(document))
    return 0


def _run_top(args) -> int:
    records = _load_events(args)
    # Two sources, merged: live ``stage`` emissions (the parent's own
    # spans) and the span trees carried by ``trace`` records (pool
    # workers' spans, which never emit events in the parent).  Stage
    # rows win on a path collision -- they are the same spans, counted
    # at exit time.
    spans: List[Dict[str, object]] = []
    for record in records:
        if record.get("kind") == "trace":
            spans.extend(
                s for s in record.get("spans", ()) if isinstance(s, dict)
            )
    merged = {row["path"]: row for row in top_from_spans(spans, limit=0)}
    merged.update(
        (row["path"], row) for row in top_spans(records, limit=0)
    )
    rows = sorted(
        merged.values(), key=lambda row: float(row["seconds"]), reverse=True
    )[: max(0, args.limit)]
    print(render_top(rows))
    return 0


def _run_flame(args) -> int:
    records = _load_events(args)
    lines: List[str] = []
    for record in records:
        if record.get("kind") != "trace":
            continue
        if args.trace and record.get("trace") != args.trace:
            continue
        lines.extend(
            folded_stacks(
                [s for s in record.get("spans", ()) if isinstance(s, dict)]
            )
        )
    text = "\n".join(lines) + ("\n" if lines else "")
    if args.out:
        from repro.resilience import atomic_write_text

        atomic_write_text(args.out, text)
        print(f"{len(lines)} folded stack(s) -> {args.out}")
    else:
        sys.stdout.write(text)
        if not lines:
            print("(no trace records with spans)", file=sys.stderr)
    return 0


def _run_slo_check(args) -> int:
    try:
        rules = load_slo_file(args.slo)
    except SloError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    records = _load_events(args)
    results = evaluate_slos(rules, records)
    if args.as_json:
        print(
            json.dumps(
                {"results": [result.to_json() for result in results]},
                indent=2,
                sort_keys=True,
            )
        )
    else:
        print(render_slo_results(results))
    return 1 if any(not result.ok for result in results) else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-obs",
        description="TRACELINK: inspect traces, structured events, and "
        "latency SLOs.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_events(p, required=True):
        p.add_argument(
            "--events", metavar="PATH", required=required,
            help="a JSONL event log (what --trace-out writes)",
        )

    tail = sub.add_parser("tail", help="print recent event records")
    add_events(tail)
    tail.add_argument("--kind", help="only records of this kind")
    tail.add_argument("--trace", help="only records of this trace id")
    tail.add_argument(
        "--count", type=int, default=0, metavar="N",
        help="only the last N matching records (0 = all)",
    )
    tail.add_argument("--json", action="store_true", dest="as_json")

    trace = sub.add_parser("trace", help="list or render traces")
    trace.add_argument("action", choices=("list", "show"))
    trace.add_argument(
        "trace_id", nargs="?", default="",
        help="trace id (or unique prefix) for 'show'",
    )
    add_events(trace, required=False)
    trace.add_argument(
        "--url", metavar="URL",
        help="read from a running daemon's /tracez instead of a file",
    )

    top = sub.add_parser("top", help="hottest span paths")
    add_events(top)
    top.add_argument("--limit", type=int, default=10, metavar="N")

    flame = sub.add_parser("flame", help="folded stacks for flamegraphs")
    add_events(flame)
    flame.add_argument("--trace", help="only this trace id's spans")
    flame.add_argument("-o", "--out", metavar="PATH")

    slo = sub.add_parser("slo", help="evaluate declarative SLOs")
    slo.add_argument("action", choices=("check",))
    slo.add_argument(
        "--slo", required=True, metavar="FILE",
        help="the SLO threshold file (JSON, version 1)",
    )
    add_events(slo)
    slo.add_argument("--json", action="store_true", dest="as_json")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "tail":
            return _run_tail(args)
        if args.command == "trace":
            if args.action == "show" and not args.trace_id:
                parser.error("trace show requires a trace id")
            return _run_trace(args)
        if args.command == "top":
            return _run_top(args)
        if args.command == "flame":
            return _run_flame(args)
        if args.command == "slo":
            return _run_slo_check(args)
    except BrokenPipeError:
        # Downstream pager/grep closed the pipe; that is not an error.
        # Point stdout at devnull so the interpreter's exit-time flush
        # does not raise again.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":
    sys.exit(main())
