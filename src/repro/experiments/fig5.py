"""Figure 5: compression of the OMSG over the conventional RASG.

For each benchmark, both lossless profiles are collected from the same
trace; the metric is the percent size reduction of the OMSG relative to
the RASG (RASG as base), on serialized (varint-coded) bytes.  The paper
reports an average improvement of 22%.
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.metrics import compression_improvement
from repro.analysis.report import format_table, percent
from repro.experiments.context import SuiteContext
from repro.workloads.registry import PAPER_NAMES

#: The paper's headline number for this figure.
PAPER_AVERAGE_IMPROVEMENT = 0.22


def run(context: SuiteContext) -> Dict[str, object]:
    rows: List[Dict[str, object]] = []
    for name in context.benchmarks:
        omsg = context.whomp(name)
        rasg = context.rasg(name)
        rows.append(
            {
                "benchmark": name,
                "accesses": context.trace(name).access_count,
                "omsg_bytes": omsg.size_bytes_varint(),
                "rasg_bytes": rasg.size_bytes_varint(),
                "omsg_symbols": omsg.size(),
                "rasg_symbols": rasg.size(),
                "improvement": compression_improvement(
                    omsg.size_bytes_varint(), rasg.size_bytes_varint()
                ),
            }
        )
    average = sum(row["improvement"] for row in rows) / len(rows)
    return {
        "figure": "5",
        "rows": rows,
        "average_improvement": average,
        "paper_average_improvement": PAPER_AVERAGE_IMPROVEMENT,
    }


def render(results: Dict[str, object]) -> str:
    table = format_table(
        ["benchmark", "accesses", "OMSG bytes", "RASG bytes", "improvement"],
        [
            [
                PAPER_NAMES.get(row["benchmark"], row["benchmark"]),
                row["accesses"],
                row["omsg_bytes"],
                row["rasg_bytes"],
                percent(row["improvement"]),
            ]
            for row in results["rows"]
        ],
        title="Figure 5: OMSG compression over RASG (positive = OMSG smaller)",
    )
    summary = (
        f"\naverage improvement: {percent(results['average_improvement'])} "
        f"(paper: {percent(results['paper_average_improvement'])})"
    )
    return table + summary


def main() -> None:
    print(render(run(SuiteContext())))


if __name__ == "__main__":
    main()
