"""Stride-pattern post-processor for LEAP profiles (Section 4.2.2).

"With the collected LMADs, identifying strongly strided instructions
requires a trivial post-process which examines all offset strides
captured for a given instruction.  We choose to consider only those
strongly strided instructions within objects (i.e. with identical group
and object IDs)."

An LMAD over (object, offset, time) with object-stride zero describes
``count`` consecutive accesses to one object, contributing ``count - 1``
samples of its offset stride.  Per instruction these samples form a
stride histogram, and the paper's >= 70%-dominance rule classifies the
instruction.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from repro.baselines.stride_lossless import (
    MIN_SAMPLES,
    STRONG_THRESHOLD,
    StrideProfile,
)
from repro.profilers.leap import LeapProfile

#: dimension indices inside LEAP's (object, offset, time) triples
OBJECT_DIM = 0
OFFSET_DIM = 1


class LeapStrideAnalyzer:
    """Derive per-instruction stride histograms from LEAP LMADs.

    The output reuses :class:`StrideProfile` so LEAP's identified set
    and the lossless profiler's "real" set are computed by identical
    classification code.
    """

    def analyze(self, profile: LeapProfile) -> StrideProfile:
        result = StrideProfile(exec_counts=dict(profile.exec_counts))
        for (instruction, __), entry in profile.entries.items():
            histogram = result.histograms.setdefault(instruction, {})
            for lmad in entry.lmads:
                if lmad.count < 2:
                    continue
                if lmad.stride[OBJECT_DIM] != 0:
                    # Crosses objects; the paper restricts to
                    # within-object strides.
                    continue
                stride = lmad.stride[OFFSET_DIM]
                histogram[stride] = histogram.get(stride, 0) + (lmad.count - 1)
            if not histogram:
                del result.histograms[instruction]
        return result

    def strongly_strided(
        self,
        profile: LeapProfile,
        threshold: float = STRONG_THRESHOLD,
        min_samples: int = MIN_SAMPLES,
    ) -> Set[int]:
        """Instructions LEAP identifies as strongly strided."""
        return self.analyze(profile).strongly_strided(threshold, min_samples)


def stride_score(
    identified: Set[int], real: Set[int]
) -> Optional[float]:
    """Figure 9's metric: the percent of correctly identified
    strongly-strided instructions over the "real" ones.

    Returns None when the real set is empty (nothing to score).
    """
    if not real:
        return None
    return len(identified & real) / len(real)


def dominant_strides(
    profile: LeapProfile, min_samples: int = MIN_SAMPLES
) -> Dict[int, int]:
    """instruction id -> dominant within-object offset stride; a handy
    view for prefetch-style consumers of the profile."""
    analyzed = LeapStrideAnalyzer().analyze(profile)
    result: Dict[int, int] = {}
    for instruction, histogram in analyzed.histograms.items():
        if analyzed.exec_counts.get(instruction, 0) < min_samples:
            continue
        if histogram:
            result[instruction] = max(histogram, key=lambda s: histogram[s])
    return result
