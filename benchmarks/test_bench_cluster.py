"""SCALE-OUT bench: one PROFSTORE daemon vs the 3-shard cluster.

Three measurements, all against real subprocess daemons (the load
generator runs in this process; every server runs in its own, so the
comparison is process-against-process, not thread-against-thread):

* **ingest throughput** -- the same ingest-only plan against a single
  ``repro-serve`` daemon and a 3-shard ``repro-cluster`` (2 replicas).
  The acceptance floor on parallel hardware (>= 3 cores): the
  cluster's aggregate ingest throughput is *strictly higher* -- 2x
  replica amplification spread over three shard processes beats one
  GIL doing every decode.  On a single-core host that win is
  physically unreachable for ANY distributed design: throughput is
  1/CPU-per-op, and replication is pure added CPU with no second core
  to absorb it, so there the bench asserts the replication tax stays
  bounded instead (and prints which regime ran).
* **mixed-load latency** -- the default mixed plan against the
  cluster; p50/p99 land in ``benchmark.extra_info``.
* **fault drill** -- SIGKILL one shard mid-load: zero transport
  failures, zero 5xx, the supervisor restart shows in ``/clusterz``,
  and a corrupted replica is healed by read-repair (digest re-check).
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request

from conftest import SCALE, once

import repro
from repro.cluster.loadgen import run_load, synthetic_documents
from repro.store.blobs import sha256_hex

#: ingest-only op mix (every non-ingest kind zeroed out; JSON-only so
#: ``unique_ingest`` padding can make every op a genuinely new blob)
INGEST_ONLY = {
    "ingest-json": 1.0,
    "ingest-binary": 0.0,
    "ingest-stream": 0.0,
    "query-runs": 0.0,
    "query-entries": 0.0,
    "get": 0.0,
    "diff": 0.0,
}

REQUESTS = max(60, int(240 * SCALE))
INGEST_REQUESTS = max(40, int(120 * SCALE))
CONCURRENCY = 8

#: can sharding express a throughput win here?  With fewer than ~3
#: cores the shard processes timeshare one core and the 2x-replicated
#: decode is pure overhead; the strict throughput assertion needs the
#: parallel silicon the subsystem is built for.
PARALLEL_HOST = (os.cpu_count() or 1) >= 3


class Daemon:
    """One serving subprocess, address parsed from its announce line."""

    def __init__(self, command, boot_timeout=45.0):
        env = dict(os.environ)
        src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = src if not existing else (
            src + os.pathsep + existing
        )
        self.proc = subprocess.Popen(
            command,
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            env=env,
            bufsize=0,
        )
        self.url = self._await_announce(boot_timeout)
        threading.Thread(
            target=self._drain, args=(self.proc.stdout,), daemon=True
        ).start()

    def _await_announce(self, boot_timeout):
        deadline = time.monotonic() + boot_timeout
        pending = b""
        while time.monotonic() < deadline:
            piece = self.proc.stdout.read(4096)
            if not piece:
                raise RuntimeError(
                    "daemon exited before announcing its address"
                )
            pending += piece
            while b"\n" in pending:
                line, __, pending = pending.partition(b"\n")
                text = line.decode("utf-8", "replace").strip()
                if text.startswith("listening "):
                    return "http://" + text.split(" ", 1)[1]
        raise RuntimeError("daemon never announced its address")

    @staticmethod
    def _drain(pipe):
        try:
            while pipe.read(4096):
                pass
        except (OSError, ValueError):
            pass

    def get_json(self, path, timeout=15):
        with urllib.request.urlopen(self.url + path, timeout=timeout) as r:
            return json.loads(r.read().decode("utf-8"))

    def stop(self):
        if self.proc.poll() is None:
            self.proc.send_signal(signal.SIGTERM)
            try:
                self.proc.wait(timeout=20.0)
            except subprocess.TimeoutExpired:
                self.proc.kill()
                self.proc.wait(timeout=10.0)


def single_server(root):
    return Daemon(
        [
            sys.executable, "-m", "repro.store.serve_cli", "serve",
            "--root", str(root), "--port", "0",
        ]
    )


def cluster(root, shards=3):
    return Daemon(
        [
            sys.executable, "-m", "repro.cluster.cli", "serve",
            "--root", str(root), "--shards", str(shards),
            "--replicas", "2", "--port", "0", "--probe-interval", "0.3",
        ]
    )


def test_cluster_vs_single_ingest_throughput(benchmark, tmp_path):
    """Every op ingests a *new* heavyweight blob (validate + compress +
    write -- no content-addressed dedup short-circuit), which is where
    sharding pays: one daemon serializes every decode on one GIL, the
    cluster spreads 2x-replicated work over three shard processes."""
    documents = synthetic_documents(
        count=6, seed=1, accesses=48, instructions=64, blocks=10
    )
    single = single_server(tmp_path / "single")
    try:
        baseline = run_load(
            single.url, requests=INGEST_REQUESTS, concurrency=CONCURRENCY,
            seed=5, mix=INGEST_ONLY, documents=documents, unique_ingest=True,
        )
    finally:
        single.stop()
    assert baseline.failures == 0 and baseline.server_errors == 0

    sharded = cluster(tmp_path / "cluster")
    try:
        report = once(
            benchmark,
            run_load,
            sharded.url,
            requests=INGEST_REQUESTS,
            concurrency=CONCURRENCY,
            seed=5,
            mix=INGEST_ONLY,
            documents=documents,
            unique_ingest=True,
        )
    finally:
        sharded.stop()
    assert report.failures == 0 and report.server_errors == 0
    assert report.client_errors == 0

    benchmark.extra_info["requests"] = INGEST_REQUESTS
    benchmark.extra_info["single_rps"] = round(baseline.throughput_rps, 1)
    benchmark.extra_info["cluster_rps"] = round(report.throughput_rps, 1)
    benchmark.extra_info["cpu_count"] = os.cpu_count()
    regime = "parallel" if PARALLEL_HOST else "single-core"
    benchmark.extra_info["regime"] = regime
    print()
    print(
        f"ingest throughput ({regime} host, {os.cpu_count()} cpu): "
        f"single {baseline.throughput_rps:.1f} req/s, "
        f"3-shard cluster {report.throughput_rps:.1f} req/s "
        f"({report.throughput_rps / baseline.throughput_rps:.2f}x)"
    )
    if PARALLEL_HOST:
        # the acceptance floor: sharding must buy aggregate ingest
        # throughput even while writing every blob twice
        assert report.throughput_rps > baseline.throughput_rps
    else:
        # one core serializes every process; 2 replicated full ingests
        # + router plumbing bound the tax near 1/2.2 of the single
        # daemon -- assert it never degrades past that envelope
        assert report.throughput_rps > 0.30 * baseline.throughput_rps


def test_cluster_mixed_load_latency(benchmark, tmp_path):
    sharded = cluster(tmp_path / "mixed")
    try:
        report = once(
            benchmark,
            run_load,
            sharded.url,
            requests=REQUESTS,
            concurrency=CONCURRENCY,
            seed=9,
        )
        health = sharded.get_json("/healthz")
    finally:
        sharded.stop()
    assert report.failures == 0 and report.server_errors == 0
    assert health["status"] == "ok"
    summary = report.digests["*"].summary()
    benchmark.extra_info["throughput_rps"] = round(report.throughput_rps, 1)
    benchmark.extra_info["p50_ms"] = round(summary["p50_seconds"] * 1000, 2)
    benchmark.extra_info["p99_ms"] = round(summary["p99_seconds"] * 1000, 2)
    print()
    print(
        f"mixed load: {report.throughput_rps:.1f} req/s, "
        f"p50 {summary['p50_seconds'] * 1000:.1f}ms, "
        f"p99 {summary['p99_seconds'] * 1000:.1f}ms "
        f"({report.requests} requests, {report.completed} ok)"
    )


def test_cluster_fault_drill_keeps_serving(benchmark, tmp_path):
    root = tmp_path / "drill"
    sharded = cluster(root)
    outcome = {}

    def killer():
        time.sleep(0.8)
        shards = sharded.get_json("/clusterz")["shards"]
        for name in sorted(shards):
            row = shards[name]
            if row["alive"] and isinstance(row["pid"], int):
                os.kill(row["pid"], signal.SIGKILL)
                outcome["victim"] = name
                return

    def drill():
        thread = threading.Thread(target=killer)
        thread.start()
        report = run_load(
            sharded.url, requests=max(100, REQUESTS // 2),
            concurrency=6, seed=13,
        )
        thread.join()
        return report

    try:
        report = once(benchmark, drill)
        assert "victim" in outcome, "drill never found a shard to kill"
        # zero client-visible faults while a shard died and came back
        assert report.failures == 0
        assert report.server_errors == 0

        victim = outcome["victim"]
        deadline = time.time() + 30.0
        restarted = False
        while time.time() < deadline and not restarted:
            row = sharded.get_json("/clusterz")["shards"][victim]
            restarted = bool(row["alive"]) and row["restarts"] >= 1
            if not restarted:
                time.sleep(0.3)
        assert restarted, f"{victim} never restarted"

        # read-repair, verified by digest re-check: corrupt one replica
        # on disk, read through the router, confirm the heal
        workload, __, data = synthetic_documents(count=1, seed=99)[0]
        ingest = _post(sharded.url + f"/ingest?workload={workload}", data)
        digest = ingest["digest"]
        assert digest == sha256_hex(data)
        target = ingest["replicas"][0]
        blob_path = os.path.join(
            str(root), target, "objects", digest[:2], digest[2:]
        )
        with open(blob_path, "wb") as handle:
            handle.write(b"bit rot")
        with urllib.request.urlopen(
            sharded.url + f"/blob?digest={digest}", timeout=15
        ) as response:
            served = response.read()
        assert served == data
        shard_url = sharded.get_json("/clusterz")["shards"][target]["url"]
        healed = None
        deadline = time.time() + 15.0
        while time.time() < deadline and healed != data:
            try:
                with urllib.request.urlopen(
                    shard_url + f"/blob?digest={digest}", timeout=10
                ) as response:
                    healed = response.read()
            except (urllib.error.URLError, OSError):
                pass
            if healed != data:
                time.sleep(0.3)
        assert healed == data, "corrupt replica was not read-repaired"
        repairs = sharded.get_json("/clusterz")["replication"]["read_repairs"]
        assert repairs >= 1
        benchmark.extra_info["victim"] = victim
        benchmark.extra_info["read_repairs"] = repairs
        print()
        print(
            f"fault drill: killed {victim} mid-load, "
            f"{report.requests} requests, 0 failures, 0 5xx; "
            f"{repairs} read-repair(s)"
        )
    finally:
        sharded.stop()


def _post(url, data, timeout=30):
    request = urllib.request.Request(url, data=data, method="POST")
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return json.loads(response.read().decode("utf-8"))
