"""Bench: the profile-consuming optimizations, end to end.

Not a paper figure -- the paper stops at profile quality -- but its
introduction's motivation: profiles exist to make memory faster.  Each
consumer is timed and its miss-rate effect on the cache simulator
asserted, closing the feedback-directed loop the paper opens.
"""

from conftest import once

from repro.core.cdc import translate_trace_list
from repro.postprocess.clustering import ObjectClusterer
from repro.postprocess.field_reorder import FieldReorderer
from repro.postprocess.hot_streams import extract_hot_streams
from repro.postprocess.prefetch import evaluate_prefetching
from repro.runtime.cache import CacheConfig
from repro.workloads.micro import LinkedListTraversal, MatrixTraversal

CACHE = CacheConfig(size_bytes=4096, line_bytes=64, associativity=2)


def test_object_clustering_miss_reduction(benchmark):
    trace = LinkedListTraversal(nodes=200, sweeps=10).trace()
    comparison = once(benchmark, ObjectClusterer().evaluate, trace, CACHE)
    print(f"\nclustering: {comparison.baseline.miss_rate:.1%} -> "
          f"{comparison.optimized.miss_rate:.1%} "
          f"({comparison.miss_reduction:.0%} reduction)")
    assert comparison.miss_reduction > 0.15


def test_stride_prefetching_miss_reduction(benchmark):
    trace = MatrixTraversal(rows=64, cols=64).trace()
    comparison = once(benchmark, evaluate_prefetching, trace, config=CACHE)
    print(f"\nprefetching: {comparison.baseline.miss_rate:.1%} -> "
          f"{comparison.optimized.miss_rate:.1%} "
          f"({comparison.miss_reduction:.0%} reduction)")
    assert comparison.miss_reduction > 0.5


def test_field_reordering_miss_reduction(benchmark):
    from repro.core.events import AccessKind
    from repro.runtime.process import Process

    process = Process()
    hot_a = process.instruction("hot_a", AccessKind.LOAD)
    hot_b = process.instruction("hot_b", AccessKind.LOAD)
    cold = process.instruction("cold", AccessKind.LOAD)
    objects = [process.malloc("rec", 256) for __ in range(300)]
    for sweep in range(6):
        for obj in objects:
            process.load(hot_a, obj)
            process.load(hot_b, obj + 248)
        if sweep == 0:
            for obj in objects:
                process.load(cold, obj + 128)
    process.finish()

    comparison = once(
        benchmark, FieldReorderer().evaluate, process.trace, CACHE
    )
    print(f"\nfield reorder: {comparison.baseline.miss_rate:.1%} -> "
          f"{comparison.optimized.miss_rate:.1%} "
          f"({comparison.miss_reduction:.0%} reduction)")
    assert comparison.miss_reduction > 0.2


def test_hot_stream_extraction(benchmark):
    trace = LinkedListTraversal(nodes=120, sweeps=10).trace()
    stream = translate_trace_list(trace)
    hot = once(benchmark, extract_hot_streams, stream, 2, 256, 2, 5)
    assert hot
    assert hot[0].length == 120  # the full traversal is the hot stream
    assert hot[0].occurrences >= 10
