"""The cluster router: one HTTP daemon fronting N PROFSTORE shards.

The router owns no profile data.  It places blobs on a consistent-hash
ring (:class:`~repro.cluster.health.RingState`), writes each ingest to
``replicas`` shards, and reads quorum-less: any intact replica answers,
the router re-verifies the sha256 itself, and a replica that is
missing, corrupt, or freshly restarted is healed in-band by
**read-repair** (the good bytes are force-written back through the
shard's ``/repair`` endpoint).  Degraded answers reuse the capture
vocabulary: ``capture_completeness`` = written/wanted replicas, never a
silent partial success.

Endpoints (all JSON unless noted)::

    GET  /healthz            router liveness + alive/total shards
    GET  /clusterz           ring layout, shard health, replication
    GET  /metricsz           router latencies + cluster-merged shard
                             digests (QuantileDigest.merge) + per-shard
    GET  /tracez             merged trace view (router + shards)
    POST /ingest?workload=   place + write to `replicas` shards
    POST /ingest/stream      BINCAP stream; each document placed as its
                             CRC verifies
    GET  /get?run=SELECTOR   decoded document (digest selectors verify
                             + read-repair; others broadcast)
    GET  /blob?digest=D      verified raw bytes (read-repair path)
    GET  /query/runs         broadcast + dedupe by (digest, workload,
                             kind)
    GET  /query/entries      broadcast + dedupe by (digest,
                             instruction, group)
    GET  /diff?a=&b=         resolve both selectors cluster-wide, diff
                             in the router
    POST /gc                 broadcast, summed
    POST /rebalance          re-place every digest, copy missing
                             replicas
    POST /drain?shard=NAME   remove from ring, rebalance its data away

Trace propagation: an inbound ``X-Repro-Trace`` runs the request under
a child context, and every shard call carries the child's header, so
one trace id links the client, the router, and every shard touched.
"""

from __future__ import annotations

import http.client
import json
import socket
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional, Tuple
from urllib.parse import parse_qs, urlencode, urlparse, urlsplit

from repro.cluster.health import DigestMerger, RingState, ShardHealthTable
from repro.cluster.ring import DEFAULT_VNODES
from repro.core.binformat import StreamReader
from repro.core.profile_io import ProfileFormatError, document_from_bytes
from repro.obs.context import TRACE_HEADER, TraceContext, activate, current_header
from repro.obs.events import EventLog
from repro.store.blobs import sha256_hex
from repro.store.diff import detect_regressions, diff_blobs
from repro.store.httpbody import RequestError, iter_body, read_body
from repro.store.server import RawBody
from repro.telemetry import Telemetry, coalesce

#: cap on one routed request body (matches the shard daemon's default)
DEFAULT_MAX_BODY_BYTES = 64 << 20

#: seconds between background health probes of every shard
DEFAULT_PROBE_INTERVAL = 1.0

#: is this a full sha256 hex digest (vs a run id / prefix / pattern)?
_HEX = frozenset("0123456789abcdef")


def is_digest(selector: str) -> bool:
    return len(selector) == 64 and set(selector) <= _HEX


class ClusterRouter:
    """The routing daemon; shards are attached by name + URL."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        replicas: int = 2,
        vnodes: int = DEFAULT_VNODES,
        telemetry: Optional[Telemetry] = None,
        trace_out: Optional[str] = None,
        events: Optional[EventLog] = None,
        probe_interval: float = DEFAULT_PROBE_INTERVAL,
        max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
        shard_timeout: float = 30.0,
    ) -> None:
        self.ring = RingState(replicas=replicas, vnodes=vnodes)
        self.health = ShardHealthTable()
        self.latency = DigestMerger()
        self.telemetry = coalesce(telemetry)
        self.events = events if events is not None else EventLog(path=trace_out)
        self.max_body_bytes = max_body_bytes
        self.shard_timeout = shard_timeout
        self.probe_interval = probe_interval
        self.started = time.time()
        #: optional ShardSupervisor, wired by the CLI so /drain and
        #: /clusterz can reach the shard processes
        self.supervisor = None
        self._metrics_lock = threading.Lock()
        self._repairs = 0
        self._requests = 0
        self._errors = 0
        self._local = threading.local()
        # replica writes fan out concurrently; a persistent pool keeps
        # each worker's per-thread keep-alive connections warm
        self._write_pool = ThreadPoolExecutor(
            max_workers=16, thread_name_prefix="replica-write"
        )

        router = self

        class Handler(BaseHTTPRequestHandler):
            protocol_version = "HTTP/1.1"
            disable_nagle_algorithm = True

            def log_message(self, format, *args):  # noqa: A002
                pass

            def do_GET(self):  # noqa: N802
                router.handle(self, "GET")

            def do_POST(self):  # noqa: N802
                router.handle(self, "POST")

        self.httpd = ThreadingHTTPServer((host, port), Handler)
        self.httpd.daemon_threads = True
        self._lifecycle_lock = threading.Lock()
        self._thread: Optional[threading.Thread] = None
        self._probe_stop = threading.Event()
        self._probe_thread: Optional[threading.Thread] = None

    # -- lifecycle -----------------------------------------------------

    @property
    def address(self) -> Tuple[str, int]:
        return self.httpd.server_address[0], self.httpd.server_address[1]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def attach_shard(
        self,
        name: str,
        url: str,
        pid: Optional[int] = None,
        restarts: int = 0,
    ) -> None:
        """(Re)announce one shard.  Safe to call from the supervisor's
        restart path: the name keeps its ring position, only the
        address changes."""
        self.health.set_address(name, url, pid=pid, restarts=restarts)
        if not self.health.snapshot()[name]["draining"]:
            self.ring.add(name)

    def start(self) -> "ClusterRouter":
        with self._lifecycle_lock:
            if self._thread is not None:
                raise RuntimeError("router is already started")
            thread = threading.Thread(
                target=self.httpd.serve_forever, daemon=True
            )
            self._thread = thread
        thread.start()
        self._start_probe()
        return self

    def serve_forever(self) -> None:
        self._start_probe()
        self.httpd.serve_forever()

    def _start_probe(self) -> None:
        with self._lifecycle_lock:
            if self._probe_thread is not None or self.probe_interval <= 0:
                return
            self._probe_thread = threading.Thread(
                target=self._probe_loop, daemon=True
            )
        self._probe_thread.start()

    def stop(self) -> None:
        self._probe_stop.set()
        self.httpd.shutdown()
        with self._lifecycle_lock:
            thread, self._thread = self._thread, None
            probe, self._probe_thread = self._probe_thread, None
        if thread is not None:
            thread.join()
        if probe is not None:
            probe.join(timeout=5.0)
        self.httpd.server_close()
        self._write_pool.shutdown(wait=False)
        self.events.flush()

    def _probe_loop(self) -> None:
        """Poll every shard's /healthz, keeping the health table live.

        Recovery detection rides on the same loop: a shard the table
        believes dead answers again after the supervisor restarts it,
        and the probe flips it back to alive (with its run count, which
        feeds the replication-lag gauge).
        """
        while not self._probe_stop.wait(self.probe_interval):
            for name in self.health.names():
                try:
                    status, __, body = self._shard_request(
                        name, "GET", "/healthz", timeout=2.0
                    )
                except OSError as exc:
                    self.health.mark_failed(name, str(exc))
                    continue
                if status != 200:
                    self.health.mark_failed(name, f"healthz answered {status}")
                    continue
                runs = None
                try:
                    runs = json.loads(body.decode("utf-8")).get("runs")
                except ValueError:
                    pass
                self.health.mark_ok(
                    name, runs=runs if isinstance(runs, int) else None
                )

    # -- shard client --------------------------------------------------

    def _shard_request(
        self,
        shard: str,
        method: str,
        path: str,
        body: Optional[bytes] = None,
        headers: Optional[Dict[str, str]] = None,
        timeout: Optional[float] = None,
    ) -> Tuple[int, Dict[str, str], bytes]:
        """One HTTP exchange with a shard, over a per-thread keep-alive
        connection.

        A stale connection (the shard restarted, or its HTTP/1.0-era
        close raced us) is retried once on a fresh socket -- safe even
        for POSTs because every shard write is content-addressed and
        idempotent.  Raises OSError when the shard is unreachable.
        """
        url = self.health.url(shard)
        if not url:
            raise OSError(f"shard {shard!r} has no known address")
        netloc = urlsplit(url).netloc
        conns = getattr(self._local, "conns", None)
        if conns is None:
            conns = self._local.conns = {}
        cached = conns.get(shard)
        if cached is not None and cached[0] != netloc:
            cached[1].close()
            conns.pop(shard, None)
            cached = None
        send_headers = dict(headers or {})
        trace = current_header()
        if trace is not None:
            send_headers[TRACE_HEADER] = trace
        last_error: Optional[Exception] = None
        for attempt in range(2):
            if cached is None:
                connection = http.client.HTTPConnection(
                    netloc, timeout=timeout or self.shard_timeout
                )
                try:
                    # Nagle off: POST bodies go out in a second send(),
                    # which would otherwise stall ~40ms on delayed ACK
                    connection.connect()
                    connection.sock.setsockopt(
                        socket.IPPROTO_TCP, socket.TCP_NODELAY, 1
                    )
                except OSError as exc:
                    connection.close()
                    last_error = exc
                    continue
                cached = (netloc, connection)
                conns[shard] = cached
            try:
                cached[1].request(method, path, body=body, headers=send_headers)
                response = cached[1].getresponse()
                data = response.read()
                response_headers = dict(response.getheaders())
                if response.will_close:
                    cached[1].close()
                    conns.pop(shard, None)
                return response.status, response_headers, data
            except (http.client.HTTPException, OSError) as exc:
                cached[1].close()
                conns.pop(shard, None)
                cached = None
                last_error = exc
        raise OSError(f"shard {shard!r} unreachable: {last_error}")

    def _try_shard(
        self,
        shard: str,
        method: str,
        path: str,
        body: Optional[bytes] = None,
        headers: Optional[Dict[str, str]] = None,
        timeout: Optional[float] = None,
    ) -> Optional[Tuple[int, Dict[str, str], bytes]]:
        """Like :meth:`_shard_request`, but an unreachable shard marks
        the health table and yields None instead of raising."""
        try:
            return self._shard_request(
                shard, method, path, body=body, headers=headers,
                timeout=timeout,
            )
        except OSError as exc:
            self.health.mark_failed(shard, str(exc))
            return None

    @staticmethod
    def _json(body: bytes) -> Dict[str, object]:
        try:
            decoded = json.loads(body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            return {}
        return decoded if isinstance(decoded, dict) else {}

    # -- dispatch (mirrors StoreServer's) ------------------------------

    def handle(self, request: BaseHTTPRequestHandler, method: str) -> None:
        parsed = urlparse(request.path)
        endpoint = parsed.path.strip("/").replace("/", "_") or "root"
        params = {
            key: values[-1] for key, values in parse_qs(parsed.query).items()
        }
        inbound = TraceContext.from_header(request.headers.get(TRACE_HEADER))
        context = inbound.child() if inbound is not None else None
        start = time.perf_counter()
        try:
            if context is not None:
                with activate(context):
                    status, payload = self.route(
                        request, method, parsed.path, params
                    )
            else:
                status, payload = self.route(
                    request, method, parsed.path, params
                )
        except RequestError as exc:
            status, payload = exc.status, {"error": str(exc)}
        except (KeyError, ProfileFormatError, ValueError) as exc:
            kind = 404 if isinstance(exc, KeyError) else 400
            status, payload = kind, {"error": str(exc).strip("'\"")}
        except Exception as exc:  # noqa: BLE001 - the router survives
            status, payload = 500, {"error": f"{type(exc).__name__}: {exc}"}
        elapsed = time.perf_counter() - start
        self.latency.observe(endpoint, elapsed)
        self.latency.observe("*", elapsed)
        with self._metrics_lock:
            self._requests += 1
            if status >= 400:
                self._errors += 1
            if self.telemetry.enabled:
                self.telemetry.counter(
                    "router.http.requests_total", "requests routed"
                ).inc()
                if status >= 400:
                    self.telemetry.counter(
                        "router.http.errors_total", "requests answered >= 400"
                    ).inc()
        self.events.emit(
            "request",
            trace=context.trace_id if context is not None else None,
            span=context.span_id if context is not None else None,
            endpoint=endpoint,
            method=method,
            status=status,
            seconds=elapsed,
        )
        extra_headers: Dict[str, str] = {}
        if isinstance(payload, RawBody):
            content_type = "application/octet-stream"
            body = payload.data
            extra_headers = payload.headers
        elif isinstance(payload, str):
            content_type = "text/plain; charset=utf-8"
            body = payload.encode("utf-8")
        else:
            content_type = "application/json"
            body = json.dumps(payload, sort_keys=True).encode("utf-8") + b"\n"
        try:
            request.send_response(status)
            request.send_header("Content-Type", content_type)
            request.send_header("Content-Length", str(len(body)))
            for name, value in extra_headers.items():
                request.send_header(name, value)
            if context is not None:
                request.send_header(TRACE_HEADER, context.to_header())
            if method == "POST" and status >= 400:
                request.send_header("Connection", "close")
            request.end_headers()
            request.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError):
            pass

    def route(
        self,
        request: BaseHTTPRequestHandler,
        method: str,
        path: str,
        params: Dict[str, str],
    ) -> Tuple[int, object]:
        if path == "/healthz" and method == "GET":
            return 200, self._healthz()
        if path == "/clusterz" and method == "GET":
            return 200, self._clusterz()
        if path == "/metricsz" and method == "GET":
            return 200, self._metricsz()
        if path == "/tracez" and method == "GET":
            return 200, self._tracez(params.get("trace"))
        if path == "/ingest/stream" and method == "POST":
            return self._ingest_stream(request, params)
        if path == "/ingest" and method == "POST":
            return self._ingest(request, params)
        if path == "/get" and method == "GET":
            return 200, self._get(params)
        if path == "/blob" and method == "GET":
            return 200, self._blob(params)
        if path in ("/query/runs", "/query/entries") and method == "GET":
            return 200, self._query(path, params)
        if path == "/diff" and method == "GET":
            return 200, self._diff(params)
        if path == "/gc" and method == "POST":
            return 200, self._gc()
        if path == "/rebalance" and method == "POST":
            return 200, self._rebalance()
        if path == "/drain" and method == "POST":
            return 200, self._drain(self._required(params, "shard"))
        return 404, {"error": f"no such endpoint: {method} {path}"}

    # -- observability endpoints ---------------------------------------

    def _healthz(self) -> Dict[str, object]:
        alive = self.health.alive_shards()
        total = self.health.names()
        host, port = self.address
        completeness = (len(alive) / len(total)) if total else 0.0
        return {
            "status": "ok" if alive and len(alive) == len(total) else (
                "degraded" if alive else "down"
            ),
            "role": "cluster-router",
            "host": host,
            "port": port,
            "shards_alive": len(alive),
            "shards_total": len(total),
            "capture_completeness": completeness,
            "replicas": self.ring.replicas,
            "uptime_seconds": time.time() - self.started,
        }

    def _clusterz(self) -> Dict[str, object]:
        with self._metrics_lock:
            repairs = self._repairs
            requests = self._requests
            errors = self._errors
        return {
            "ring": self.ring.layout(),
            "shards": self.health.snapshot(),
            "replication": {
                "replicas": self.ring.replicas,
                "read_repairs": repairs,
                "lag_runs": self.health.lag_runs(),
            },
            "router": {
                "requests": requests,
                "errors": errors,
                "uptime_seconds": time.time() - self.started,
            },
        }

    def _metricsz(self) -> Dict[str, object]:
        """Router latencies, plus the cluster-level merge.

        Each shard exports its per-endpoint QuantileDigests in wire
        form (``/metricsz?digests=1``); the router folds them together
        with :meth:`QuantileDigest.merge`, so cluster p50/p99 reflect
        every shard's samples, not an average of averages.
        """
        cluster = DigestMerger()
        shards: Dict[str, object] = {}
        for name in self.health.alive_shards():
            answer = self._try_shard(
                name, "GET", "/metricsz?digests=1", timeout=5.0
            )
            if answer is None or answer[0] != 200:
                continue
            payload = self._json(answer[2])
            digests = payload.get("latency_digests")
            if isinstance(digests, dict):
                cluster.absorb(digests)
            shards[name] = {
                "endpoints": payload.get("endpoints"),
                "cache": payload.get("cache"),
            }
        with self._metrics_lock:
            requests = self._requests
            errors = self._errors
            repairs = self._repairs
        return {
            "router": {
                "requests": requests,
                "errors": errors,
                "read_repairs": repairs,
                "endpoints": self.latency.summaries(),
            },
            "cluster": {"endpoints": cluster.summaries()},
            "shards": shards,
        }

    def _tracez(self, trace_id: Optional[str]) -> Dict[str, object]:
        if trace_id is None:
            merged: Dict[str, Dict[str, object]] = {}

            def fold(row: Dict[str, object]) -> None:
                tid = str(row.get("trace_id"))
                into = merged.setdefault(
                    tid, {"trace_id": tid, "records": 0, "kinds": []}
                )
                into["records"] += int(row.get("records") or 0)
                kinds = set(into["kinds"])  # type: ignore[arg-type]
                kinds.update(str(k) for k in row.get("kinds") or ())
                into["kinds"] = sorted(kinds)

            for tid in self.events.trace_ids():
                records = self.events.records_for_trace(tid)
                fold(
                    {
                        "trace_id": tid,
                        "records": len(records),
                        "kinds": sorted({str(r.get("kind")) for r in records}),
                    }
                )
            for name in self.health.alive_shards():
                answer = self._try_shard(name, "GET", "/tracez", timeout=5.0)
                if answer is None or answer[0] != 200:
                    continue
                for row in self._json(answer[2]).get("traces") or ():
                    if isinstance(row, dict):
                        fold(row)
            return {"traces": sorted(merged.values(), key=lambda r: r["trace_id"])}
        records = self.events.records_for_trace(trace_id)
        documents: List[object] = []
        shard_records: List[object] = []
        for name in self.health.alive_shards():
            answer = self._try_shard(
                name, "GET", f"/tracez?trace={trace_id}", timeout=5.0
            )
            if answer is None or answer[0] != 200:
                continue
            payload = self._json(answer[2])
            for record in payload.get("records") or ():
                if isinstance(record, dict):
                    record = dict(record)
                    record["shard"] = name
                    shard_records.append(record)
            documents.extend(payload.get("documents") or ())
        if not records and not shard_records and not documents:
            raise KeyError(f"no such trace: {trace_id}")
        return {
            "trace_id": trace_id,
            "records": records + sorted(
                shard_records, key=lambda r: r.get("ts") or 0
            ),
            "documents": documents,
        }

    # -- writes --------------------------------------------------------

    def _ingest(
        self, request: BaseHTTPRequestHandler, params: Dict[str, str]
    ) -> Tuple[int, object]:
        workload = self._required(params, "workload")
        data = read_body(request, self.max_body_bytes)
        if not data:
            raise RequestError(400, "ingest requires a profile document body")
        digest = sha256_hex(data)
        status, payload = self._write_replicas(digest, data, workload)
        return status, payload

    def _write_replicas(
        self, digest: str, data: bytes, workload: str
    ) -> Tuple[int, Dict[str, object]]:
        """Write one blob to its placed replicas, concurrently.

        All replicas written -> 201.  Some (shard down) -> 200 with
        ``capture_completeness`` < 1 -- the cluster stays writable
        through a shard outage and heals by read-repair later.  A shard
        *rejecting* the payload (4xx: corrupt document) is propagated
        as-is: validation verdicts are unanimous, retrying elsewhere
        cannot help.  Nothing written -> 503.

        The replica writes fan out over the write pool so a 2-way
        ingest costs one shard round-trip, not two -- this is where the
        cluster's aggregate ingest throughput comes from.  The trace
        header is captured here (the handler thread owns the active
        context; pool threads have none).
        """
        placed = self.ring.place(digest)
        if not placed:
            raise RequestError(503, "no shards attached to the ring")
        headers: Dict[str, str] = {}
        trace = current_header()
        if trace is not None:
            headers[TRACE_HEADER] = trace
        path = f"/ingest?{urlencode({'workload': workload})}"

        if len(placed) == 1:
            answers = [
                self._try_shard(
                    placed[0], "POST", path, body=data, headers=headers
                )
            ]
        else:
            futures = [
                self._write_pool.submit(
                    self._try_shard, shard, "POST", path,
                    body=data, headers=headers,
                )
                for shard in placed
            ]
            answers = [future.result() for future in futures]
        written: List[str] = []
        missed: List[str] = []
        first: Optional[Dict[str, object]] = None
        for shard, answer in zip(placed, answers):
            if answer is None:
                missed.append(shard)
                continue
            status, __, body = answer
            if status in (200, 201):
                written.append(shard)
                if first is None:
                    first = self._json(body)
            elif 400 <= status < 500:
                payload = self._json(body)
                payload.setdefault("error", f"shard answered {status}")
                payload["shard"] = shard
                return status, payload
            else:
                missed.append(shard)
        if not written:
            raise RequestError(
                503, f"no replica accepted {digest[:12]} "
                f"({len(placed)} placed, all unavailable)"
            )
        payload = dict(first or {})
        payload.update(
            digest=digest,
            workload=workload,
            replicas=written,
            wanted=placed,
            written=len(written),
            capture_completeness=len(written) / len(placed),
            degraded=bool(missed),
        )
        return (201 if not missed else 200), payload

    def _ingest_stream(
        self, request: BaseHTTPRequestHandler, params: Dict[str, str]
    ) -> Tuple[int, object]:
        """Route a BINCAP stream document-by-document.

        Each document is placed and replicated the moment its CRC
        verifies -- a torn tail loses only the torn document, and the
        response carries both the stream-level and the replica-level
        completeness.
        """
        default_workload = params.get("workload")
        reader = StreamReader(max_document_bytes=self.max_body_bytes)
        ingested: List[Dict[str, object]] = []
        rejected: List[Dict[str, object]] = []
        error: Optional[str] = None

        def consume(events) -> None:
            for event in events:
                if event[0] == "doc":
                    __, workload, __meta, blob = event
                    name = workload or default_workload or "unknown"
                    digest = sha256_hex(blob)
                    try:
                        status, payload = self._write_replicas(
                            digest, blob, name
                        )
                    except RequestError as exc:
                        rejected.append({"workload": name, "error": str(exc)})
                        continue
                    if status >= 400:
                        rejected.append(
                            {
                                "workload": name,
                                "error": str(payload.get("error")),
                            }
                        )
                        continue
                    ingested.append(
                        {
                            "run_id": payload.get("run_id"),
                            "digest": digest,
                            "kind": payload.get("kind"),
                            "size_bytes": len(blob),
                            "replicas": payload.get("replicas"),
                            "capture_completeness": payload.get(
                                "capture_completeness"
                            ),
                        }
                    )
                elif event[0] == "torn":
                    rejected.append({"workload": event[1], "error": event[2]})

        try:
            for piece in iter_body(request, self.max_body_bytes):
                consume(reader.feed(piece))
        except RequestError as exc:
            error = str(exc)
        except (ValueError, OSError) as exc:
            error = str(exc) or type(exc).__name__
        summary = reader.summary()
        under_replicated = any(
            (row.get("capture_completeness") or 0) < 1.0 for row in ingested
        )
        degraded = (
            bool(error)
            or not summary["complete"]
            or bool(rejected)
            or under_replicated
        )
        if not ingested and degraded:
            raise RequestError(
                400, error or "stream carried no ingestible documents"
            )
        payload: Dict[str, object] = {
            "ingested": ingested,
            "rejected": rejected,
            "documents": summary["documents"],
            "complete": summary["complete"] and not rejected,
            "capture_completeness": summary["capture_completeness"],
            "degraded": degraded,
        }
        if error:
            payload["error"] = error
        return (201 if not degraded else 200), payload

    # -- reads + read-repair -------------------------------------------

    def _read_digest(self, digest: str) -> Tuple[bytes, Dict[str, str]]:
        """Fetch one blob by digest from any intact replica, verifying
        and repairing.

        Placed replicas are tried first, then every other live shard
        (the ring may have changed since the blob was written).  The
        router re-hashes whatever it receives -- a corrupt replica can
        never answer a client -- and any placed, reachable replica that
        failed to serve the good bytes is repaired in-band.
        """
        placed = self.ring.place(digest)
        candidates = list(placed)
        for name in self.health.alive_shards():
            if name not in candidates:
                candidates.append(name)
        if not candidates:
            raise RequestError(503, "no shards attached to the ring")
        good: Optional[bytes] = None
        headers: Dict[str, str] = {}
        saw_corrupt = False
        needs_repair: List[str] = []
        for shard in candidates:
            answer = self._try_shard(
                shard, "GET", f"/blob?digest={digest}", timeout=10.0
            )
            if answer is None:
                continue
            status, shard_headers, body = answer
            if status == 200 and sha256_hex(body) == digest:
                if good is None:
                    good = body
                    headers = {
                        "X-Repro-Digest": digest,
                        "X-Repro-Workload": shard_headers.get(
                            "X-Repro-Workload", "unknown"
                        ),
                        "X-Repro-Kind": shard_headers.get(
                            "X-Repro-Kind", "?"
                        ),
                        "X-Repro-Served-By": shard,
                    }
                continue
            if status == 200 or status == 400:
                # served bytes that do not hash to the digest, or the
                # shard's own blob layer caught the corruption first
                saw_corrupt = True
            if shard in placed:
                needs_repair.append(shard)
        if good is None:
            if saw_corrupt:
                raise RequestError(
                    502, f"every replica of {digest[:12]} is corrupt"
                )
            raise KeyError(f"no replica holds digest {digest[:12]}")
        for shard in needs_repair:
            self._repair_replica(shard, digest, good, headers)
        return good, headers

    def _repair_replica(
        self,
        shard: str,
        digest: str,
        data: bytes,
        headers: Dict[str, str],
    ) -> None:
        """Push the verified bytes back onto one broken replica."""
        workload = headers.get("X-Repro-Workload", "unknown")
        path = (
            f"/repair?{urlencode({'digest': digest, 'workload': workload})}"
        )
        answer = self._try_shard(shard, "POST", path, body=data)
        repaired = answer is not None and answer[0] == 200
        error = None
        if answer is None:
            error = "shard unreachable"
        elif answer[0] != 200:
            error = f"repair answered {answer[0]}"
        self.events.emit(
            "read_repair",
            digest=digest,
            shard=shard,
            repaired=repaired,
            error=error,
            workload=workload,
        )
        if repaired:
            with self._metrics_lock:
                self._repairs += 1
                if self.telemetry.enabled:
                    self.telemetry.counter(
                        "router.read_repairs_total",
                        "replicas healed by read-repair",
                    ).inc()

    def _blob(self, params: Dict[str, str]) -> RawBody:
        selector = params.get("digest") or params.get("run")
        if not selector:
            raise RequestError(400, "blob requires 'digest' or 'run'")
        data, headers = self._resolve_bytes(selector)
        return RawBody(data, headers)

    def _resolve_bytes(self, selector: str) -> Tuple[bytes, Dict[str, str]]:
        """Any run selector to verified bytes, cluster-wide."""
        if is_digest(selector):
            return self._read_digest(selector)
        # run ids / prefixes / workload@kind patterns are shard-local
        # vocabulary: ask everyone, first shard that resolves it wins,
        # then fetch by the digest it names (verified + repaired).
        for shard in self.health.alive_shards():
            answer = self._try_shard(
                shard,
                "GET",
                f"/blob?{urlencode({'run': selector})}",
                timeout=10.0,
            )
            if answer is None or answer[0] != 200:
                continue
            status, headers, body = answer
            digest = headers.get("X-Repro-Digest")
            if digest and sha256_hex(body) == digest:
                return body, {
                    "X-Repro-Digest": digest,
                    "X-Repro-Workload": headers.get(
                        "X-Repro-Workload", "unknown"
                    ),
                    "X-Repro-Kind": headers.get("X-Repro-Kind", "?"),
                    "X-Repro-Served-By": shard,
                }
        raise KeyError(f"no shard resolves selector {selector!r}")

    def _get(self, params: Dict[str, str]) -> Dict[str, object]:
        selector = self._required(params, "run")
        data, __ = self._resolve_bytes(selector)
        return document_from_bytes(data)

    # -- broadcast reads -----------------------------------------------

    def _broadcast(
        self, path: str, method: str = "GET", timeout: float = 15.0
    ) -> Tuple[Dict[str, Dict[str, object]], int, int]:
        """One request to every live shard; (answers, responded, total)."""
        answers: Dict[str, Dict[str, object]] = {}
        shards = self.health.alive_shards()
        responded = 0
        for name in shards:
            answer = self._try_shard(name, method, path, timeout=timeout)
            if answer is None or answer[0] != 200:
                continue
            responded += 1
            answers[name] = self._json(answer[2])
        return answers, responded, len(shards)

    def _query(self, path: str, params: Dict[str, str]) -> Dict[str, object]:
        """Broadcast a query and dedupe replicated rows.

        Replication stores the same blob on two shards, so the same
        logical run (and its entries) answers twice; the digest in each
        row keys the merge.  ``capture_completeness`` = shards that
        answered / live shards, with ``degraded`` set when anyone was
        missing -- mirroring the capture vocabulary end to end.
        """
        query = f"?{urlencode(params)}" if params else ""
        answers, responded, total = self._broadcast(f"{path}{query}")
        key_name = "runs" if path == "/query/runs" else "entries"
        merged: List[Dict[str, object]] = []
        seen = set()
        for name in sorted(answers):
            for row in answers[name].get(key_name) or ():
                if not isinstance(row, dict):
                    continue
                if key_name == "runs":
                    key = (row.get("digest"), row.get("workload"),
                           row.get("kind"))
                else:
                    key = (row.get("digest"), row.get("instruction"),
                           row.get("group"))
                if key in seen:
                    continue
                seen.add(key)
                merged.append(row)
        return {
            key_name: merged,
            "shards_responded": responded,
            "shards_total": total,
            "capture_completeness": (responded / total) if total else 0.0,
            "degraded": responded < total,
        }

    def _diff(self, params: Dict[str, str]) -> Dict[str, object]:
        selector_a = self._required(params, "a")
        selector_b = self._required(params, "b")
        bytes_a, headers_a = self._resolve_bytes(selector_a)
        bytes_b, headers_b = self._resolve_bytes(selector_b)
        diff = diff_blobs(
            bytes_a,
            bytes_b,
            label_a=headers_a.get("X-Repro-Digest", selector_a)[:12],
            label_b=headers_b.get("X-Repro-Digest", selector_b)[:12],
        )
        regressions = detect_regressions(diff)
        payload = diff.to_json()
        payload["regressions"] = [r.to_json() for r in regressions]
        return payload

    def _gc(self) -> Dict[str, object]:
        answers, responded, total = self._broadcast("/gc", method="POST")
        summed = {"scanned": 0, "removed": 0, "freed_bytes": 0}
        for payload in answers.values():
            for key in summed:
                value = payload.get(key)
                if isinstance(value, int):
                    summed[key] += value
        summed.update(shards_responded=responded, shards_total=total)
        return summed

    # -- rebalance + drain ---------------------------------------------

    def _catalog(self) -> Dict[str, Tuple[str, List[str]]]:
        """digest -> (workload, shards currently holding it)."""
        answers, __, __total = self._broadcast("/query/runs")
        catalog: Dict[str, Tuple[str, List[str]]] = {}
        for name in sorted(answers):
            for row in answers[name].get("runs") or ():
                if not isinstance(row, dict):
                    continue
                digest = row.get("digest")
                if not isinstance(digest, str):
                    continue
                workload, holders = catalog.get(
                    digest, (str(row.get("workload") or "unknown"), [])
                )
                if name not in holders:
                    holders.append(name)
                catalog[digest] = (workload, holders)
        return catalog

    def _rebalance(self) -> Dict[str, object]:
        """Re-place every known digest and copy missing replicas.

        The repair transport is the read-repair one: fetch verified
        bytes from a holder, force-write through ``/repair``.  Used
        after membership changes and by ``/drain``.
        """
        catalog = self._catalog()
        checked = 0
        copied = 0
        failed = 0
        for digest, (workload, holders) in sorted(catalog.items()):
            checked += 1
            placed = self.ring.place(digest)
            missing = [
                shard
                for shard in placed
                if shard not in holders and self.health.is_alive(shard)
            ]
            if not missing:
                continue
            try:
                data, headers = self._read_digest(digest)
            except (KeyError, RequestError):
                failed += 1
                continue
            for shard in missing:
                before = self._repair_count()
                self._repair_replica(shard, digest, data, headers)
                if self._repair_count() > before:
                    copied += 1
                else:
                    failed += 1
        return {
            "checked": checked,
            "copied": copied,
            "failed": failed,
            "ring_version": self.ring.layout()["version"],
        }

    def _repair_count(self) -> int:
        with self._metrics_lock:
            return self._repairs

    def _drain(self, shard: str) -> Dict[str, object]:
        """Take one shard out of the ring and move its data away.

        The shard keeps serving reads while its blobs are copied to
        their new placements (the rebalance fetch path may read from
        it); only then is its process stopped, when a supervisor is
        wired.
        """
        if shard not in self.health.names():
            raise KeyError(f"no such shard: {shard}")
        self.health.set_draining(shard, True)
        self.ring.remove(shard)
        error: Optional[str] = None
        copied = 0
        try:
            outcome = self._rebalance()
            copied = int(outcome.get("copied") or 0)
            if outcome.get("failed"):
                error = f"{outcome['failed']} digest(s) failed to copy"
        except Exception as exc:  # noqa: BLE001 - report, don't die
            error = f"{type(exc).__name__}: {exc}"
        self.events.emit("shard_drain", shard=shard, copied=copied,
                         error=error)
        stopped = False
        if self.supervisor is not None and error is None:
            self.supervisor.stop_shard(shard)
            stopped = True
        out: Dict[str, object] = {
            "shard": shard,
            "copied": copied,
            "stopped": stopped,
            "ring": self.ring.layout(),
        }
        if error is not None:
            out["error"] = error
        return out

    @staticmethod
    def _required(params: Dict[str, str], name: str) -> str:
        value = params.get(name)
        if not value:
            raise ValueError(f"missing required parameter {name!r}")
        return value
