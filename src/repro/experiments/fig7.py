"""Figure 7: error distribution of the Connors window-based profiler.

Same evaluation as Figure 6, with the window-based re-implementation in
place of LEAP.  The paper's observation: "While not overestimating the
frequency for any dependent pairs, this scheme often misses some of the
dependences" -- the distribution should show zero mass on the positive
side and a large miss bucket at -100%.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.analysis.metrics import ErrorDistribution, error_distribution
from repro.analysis.report import format_histogram, format_table, percent
from repro.experiments.context import SuiteContext
from repro.workloads.registry import PAPER_NAMES


def distributions(
    context: SuiteContext, window: Optional[int] = None
) -> Dict[str, ErrorDistribution]:
    """Per-benchmark Connors error distributions (shared with Fig 8)."""
    result: Dict[str, ErrorDistribution] = {}
    for name in context.benchmarks:
        result[name] = error_distribution(
            context.connors(name, window), context.truth_dependence(name)
        )
    return result


def run(context: SuiteContext, window: Optional[int] = None) -> Dict[str, object]:
    per_benchmark = distributions(context, window)
    average = ErrorDistribution.average(list(per_benchmark.values()))
    rows: List[Dict[str, object]] = [
        {
            "benchmark": name,
            "pairs": dist.total_pairs,
            "exact": dist.exactly_correct(),
            "within_10": dist.within(0.10),
            "overestimated": sum(dist.fractions()[11:]),
        }
        for name, dist in per_benchmark.items()
    ]
    return {
        "figure": "7",
        "rows": rows,
        "distributions": per_benchmark,
        "average": average,
        "average_within_10": average.within(0.10),
        "never_overestimates": all(row["overestimated"] == 0.0 for row in rows),
    }


def render(results: Dict[str, object]) -> str:
    table = format_table(
        ["benchmark", "pairs", "exact", "within 10%", "overest."],
        [
            [
                PAPER_NAMES.get(row["benchmark"], row["benchmark"]),
                row["pairs"],
                percent(row["exact"]),
                percent(row["within_10"]),
                percent(row["overestimated"]),
            ]
            for row in results["rows"]
        ],
        title="Figure 7: Connors memory-dependence error distribution",
    )
    histogram = format_histogram(
        results["average"], title="\naverage error distribution (all benchmarks):"
    )
    summary = (
        f"\nwithin 10%: {percent(results['average_within_10'])}; "
        f"never overestimates: {results['never_overestimates']} (paper: True)"
    )
    return table + "\n" + histogram + summary


def main() -> None:
    print(render(run(SuiteContext())))


if __name__ == "__main__":
    main()
