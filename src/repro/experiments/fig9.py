"""Figure 9: stride score for LEAP.

For each benchmark, LEAP's strongly-strided instructions (from the LMAD
offset strides, within objects only) are compared against the "real"
ones found by the lossless stride profiler.  The paper reports an
average of 88% correctly identified.
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.report import format_table, percent
from repro.experiments.context import SuiteContext
from repro.postprocess.strides import LeapStrideAnalyzer, stride_score
from repro.workloads.registry import PAPER_NAMES

#: The paper's headline average stride score.
PAPER_AVERAGE_SCORE = 0.88


def run(context: SuiteContext) -> Dict[str, object]:
    analyzer = LeapStrideAnalyzer()
    rows: List[Dict[str, object]] = []
    for name in context.benchmarks:
        real = context.stride_real(name).strongly_strided()
        identified = analyzer.strongly_strided(context.leap(name))
        score = stride_score(identified, real)
        rows.append(
            {
                "benchmark": name,
                "real": len(real),
                "identified": len(identified),
                "correct": len(identified & real),
                "score": score,
            }
        )
    scored = [row["score"] for row in rows if row["score"] is not None]
    average = sum(scored) / len(scored) if scored else None
    return {
        "figure": "9",
        "rows": rows,
        "average_score": average,
        "paper_average_score": PAPER_AVERAGE_SCORE,
    }


def render(results: Dict[str, object]) -> str:
    table = format_table(
        ["benchmark", "real", "identified", "correct", "score"],
        [
            [
                PAPER_NAMES.get(row["benchmark"], row["benchmark"]),
                row["real"],
                row["identified"],
                row["correct"],
                percent(row["score"]) if row["score"] is not None else "n/a",
            ]
            for row in results["rows"]
        ],
        title="Figure 9: strongly-strided instructions correctly identified",
    )
    summary = (
        f"\naverage score: {percent(results['average_score'])} "
        f"(paper: {percent(results['paper_average_score'])})"
    )
    return table + summary


def main() -> None:
    print(render(run(SuiteContext())))


if __name__ == "__main__":
    main()
