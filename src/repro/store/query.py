"""Indexed queries over the profile store.

The store's manifest answers *which runs exist*; this module answers
the object-centric questions DJXPerf-style workflows ask across runs:
which (instruction, group) sites touched a given group, with what LMAD
shapes, at what stride -- per run, filtered, as plain-data rows ready
for the CLI's ``--json`` and the daemon's ``/query`` endpoint.

Decoded profiles come through the store's LRU cache, so repeated
queries against the same hot runs cost one decode.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.profilers.leap import LeapProfile
from repro.store.store import ProfileStore, RunRecord


def run_to_row(record: RunRecord) -> Dict[str, object]:
    """One manifest record as a JSON-ready row."""
    return {
        "run_id": record.run_id,
        "digest": record.digest,
        "workload": record.workload,
        "kind": record.kind,
        "created": record.created,
        "size_bytes": record.size_bytes,
        "meta": record.meta,
    }


class QueryEngine:
    """Filtered views over the runs and entries of one store."""

    def __init__(self, store: ProfileStore) -> None:
        self.store = store

    # -- run-level -----------------------------------------------------

    def find_runs(
        self,
        workload: Optional[str] = None,
        kind: Optional[str] = None,
    ) -> List[Dict[str, object]]:
        return [run_to_row(r) for r in self.store.runs(workload, kind)]

    # -- entry-level (LEAP) --------------------------------------------

    def find_entries(
        self,
        workload: Optional[str] = None,
        instruction: Optional[int] = None,
        group: Optional[int] = None,
        stride: Optional[Sequence[int]] = None,
        min_count: int = 0,
        run: Optional[str] = None,
    ) -> List[Dict[str, object]]:
        """(instruction, group) rows across LEAP runs, filtered.

        ``stride`` matches entries containing at least one LMAD with
        exactly that stride vector -- the "find every site walking
        16-byte steps through this pool" query.  ``min_count`` drops
        entries below a dynamic-access floor.  ``run`` restricts the
        scan to one selector instead of every LEAP run.
        """
        if run is not None:
            records = [self.store.resolve(run)]
        else:
            records = self.store.runs(workload, kind="leap")
        wanted_stride = tuple(stride) if stride is not None else None
        rows: List[Dict[str, object]] = []
        for record in records:
            if record.kind != "leap":
                continue
            profile = self.store.get(record.run_id)
            assert isinstance(profile, LeapProfile)
            for (instr, grp), entry in sorted(profile.entries.items()):
                if instruction is not None and instr != instruction:
                    continue
                if group is not None and grp != group:
                    continue
                if entry.total_symbols < min_count:
                    continue
                strides = [tuple(l.stride) for l in entry.lmads]
                if wanted_stride is not None and wanted_stride not in strides:
                    continue
                rows.append(
                    {
                        "run_id": record.run_id,
                        # the digest keys cross-replica deduplication:
                        # the cluster router folds rows for the same
                        # blob from different shards into one
                        "digest": record.digest,
                        "workload": record.workload,
                        "instruction": instr,
                        "group": grp,
                        "group_label": profile.group_labels.get(grp, ""),
                        "kind": profile.kinds[instr].value
                        if instr in profile.kinds
                        else "?",
                        "lmads": len(entry.lmads),
                        "strides": [list(s) for s in strides],
                        "total": entry.total_symbols,
                        "captured": entry.captured_symbols,
                        "summarized": entry.summarized,
                    }
                )
        return rows

    def lmad_shapes(self, run: str) -> List[Dict[str, object]]:
        """The distinct LMAD stride shapes of one LEAP run with usage
        counts -- the run's regularity fingerprint."""
        record = self.store.resolve(run)
        profile = self.store.get(record.run_id)
        if not isinstance(profile, LeapProfile):
            raise TypeError(f"run {record.run_id} is {record.kind}, not leap")
        shapes: Dict[Tuple[int, ...], Dict[str, int]] = {}
        for entry in profile.entries.values():
            for lmad in entry.lmads:
                stride = tuple(lmad.stride)
                bucket = shapes.setdefault(
                    stride, {"descriptors": 0, "accesses": 0}
                )
                bucket["descriptors"] += 1
                bucket["accesses"] += lmad.count
        return [
            {
                "stride": list(stride),
                "descriptors": counts["descriptors"],
                "accesses": counts["accesses"],
            }
            for stride, counts in sorted(
                shapes.items(),
                key=lambda item: (-item[1]["accesses"], item[0]),
            )
        ]
