"""Cross-module integration tests: the full pipeline end to end."""

import pytest

from repro import (
    LeapProfiler,
    Process,
    WhompProfiler,
    translate_trace_list,
)
from repro.baselines.connors import ConnorsProfiler
from repro.baselines.dependence_lossless import LosslessDependenceProfiler
from repro.baselines.rasg import RasgProfiler
from repro.baselines.stride_lossless import LosslessStrideProfiler
from repro.core.events import AccessKind
from repro.lang.interp import run_source
from repro.postprocess.dependence import analyze_dependences
from repro.postprocess.strides import LeapStrideAnalyzer, stride_score
from repro.workloads.registry import create

MINI_PROGRAM = """
struct item { int key; int value; }

global int[32] histogram;

fn main(): int {
  // build a batch of items, histogram their keys, re-read them
  var items: item* = new item[64];
  for (var i: int = 0; i < 64; i = i + 1) {
    items[i].key = i % 32;
    items[i].value = i * 3;
  }
  for (var i: int = 0; i < 64; i = i + 1) {
    var k: int = items[i].key;
    histogram[k] = histogram[k] + 1;
  }
  var total: int = 0;
  for (var i: int = 0; i < 32; i = i + 1) {
    total = total + histogram[i];
  }
  delete items;
  return total;
}
"""


class TestLangToProfilers:
    """mini-IR program -> trace -> every profiler -> consistent results."""

    @pytest.fixture(scope="class")
    def program_trace(self):
        result, interpreter = run_source(MINI_PROGRAM)
        assert result == 64
        return interpreter.process.trace

    def test_whomp_lossless(self, program_trace):
        profile = WhompProfiler().profile(program_trace)
        raw = [(e.instruction_id, e.address) for e in program_trace.accesses()]
        assert profile.reconstruct_accesses() == raw

    def test_leap_dependences_match_truth(self, program_trace):
        estimated = analyze_dependences(LeapProfiler().profile(program_trace))
        truth = LosslessDependenceProfiler().profile(program_trace)
        for pair, frequency in truth.dependent_pairs().items():
            assert estimated.frequency(*pair) == pytest.approx(frequency, abs=0.2)

    def test_strides_on_lang_trace(self, program_trace):
        leap = LeapProfiler().profile(program_trace)
        identified = LeapStrideAnalyzer().strongly_strided(leap)
        real = LosslessStrideProfiler().profile(program_trace).strongly_strided()
        score = stride_score(identified, real)
        assert score is not None and score >= 0.5


class TestWorkloadToEverything:
    @pytest.fixture(scope="class")
    def trace(self):
        return create("crafty", scale=0.1).trace()

    def test_all_profilers_agree_on_access_count(self, trace):
        whomp = WhompProfiler().profile(trace)
        rasg = RasgProfiler().profile(trace)
        leap = LeapProfiler().profile(trace)
        assert whomp.access_count == trace.access_count
        assert rasg.access_count == trace.access_count
        assert leap.access_count == trace.access_count
        assert sum(leap.exec_counts.values()) == trace.access_count

    def test_leap_vs_connors_vs_truth_sanity(self, trace):
        truth = LosslessDependenceProfiler().profile(trace)
        leap_est = analyze_dependences(LeapProfiler().profile(trace))
        connors = ConnorsProfiler(window=256).profile(trace)
        true_pairs = truth.dependent_pairs()
        assert true_pairs  # crafty has dependences
        # Connors never claims a pair truth denies
        for pair in connors.dependent_pairs():
            assert pair in true_pairs
        # LEAP never produces frequencies above 1
        for frequency in leap_est.dependent_pairs().values():
            assert 0 < frequency <= 1.0 + 1e-9

    def test_translated_stream_time_is_dense(self, trace):
        translated = translate_trace_list(trace)
        assert [a.time for a in translated] == list(range(len(translated)))


class TestOnlinePipelineEndToEnd:
    def test_online_leap_while_running(self):
        """Attach LEAP online, run a program, detach: same result as the
        offline path on the recorded trace."""
        workload = create("micro.array", scale=0.5)
        process = Process()
        session = LeapProfiler().attach(process.bus)
        workload.run(process)
        process.finish()
        online = session.finish()
        offline = LeapProfiler().profile(process.trace)
        assert online.entries == offline.entries

    def test_two_profilers_one_run(self):
        """WHOMP's recorder and LEAP's online pipeline can share a bus."""
        from repro.profilers.leap import LeapProfiler

        workload = create("micro.matrix", scale=0.5)
        process = Process()  # trace recorder attached
        session = LeapProfiler().attach(process.bus)
        workload.run(process)
        process.finish()
        leap = session.finish()
        whomp = WhompProfiler().profile(process.trace)
        assert whomp.access_count == leap.access_count


class TestDeterministicSeeding:
    def test_trace_stable_for_docs(self):
        """Pin a tiny behavioural fingerprint so accidental workload
        changes that would invalidate EXPERIMENTS.md get caught."""
        trace = create("micro.list", scale=0.2, seed=0).trace()
        translated = translate_trace_list(trace)
        assert translated[0].offset in (0, 16)
        assert trace.access_count > 0


def test_scalar_rmw_dependence_detected_by_all():
    """A read-modify-write scalar: every profiler must see the pair."""
    process = Process()
    process.declare_static("x", 8)
    address = process.static("x").address
    ld = process.instruction("ld", AccessKind.LOAD)
    st = process.instruction("st", AccessKind.STORE)
    for __ in range(100):
        process.load(ld, address)
        process.store(st, address)
    process.finish()
    trace = process.trace

    truth = LosslessDependenceProfiler().profile(trace)
    leap = analyze_dependences(LeapProfiler().profile(trace))
    connors = ConnorsProfiler(window=8).profile(trace)
    pair = (st.instruction_id, ld.instruction_id)
    assert truth.frequency(*pair) == pytest.approx(0.99)
    assert leap.frequency(*pair) == pytest.approx(0.99)
    assert connors.frequency(*pair) == pytest.approx(0.99)


class TestFrameworkFacade:
    def test_profile_workload_by_name(self):
        from repro.core.framework import profile_workload

        results = profile_workload("micro.array", scale=0.3)
        assert results["whomp"].access_count == results["trace"].access_count
        assert results["leap"].access_count == results["trace"].access_count

    def test_profile_trace_unknown_profiler(self):
        from repro.core.framework import profile_trace
        from repro.core.events import Trace

        with pytest.raises(ValueError):
            profile_trace(Trace(), profilers=("ghost",))

    def test_session_runs_both_profilers_online(self):
        from repro.core.framework import ProfilingSession
        from repro.workloads.registry import create

        workload = create("micro.matrix", scale=0.4)
        session = ProfilingSession()
        profiles = session.run(workload).finish()
        assert profiles["whomp"].access_count == profiles["leap"].access_count
        assert profiles["whomp"].access_count > 0
        # everything detached: further firings are not observed
        assert not session.process.bus.instrumented

    def test_session_budget_override(self):
        from repro.core.framework import ProfilingSession
        from repro.workloads.registry import create

        session = ProfilingSession(profilers=("leap",), budget=3)
        profiles = session.run(create("micro.hash", scale=0.2)).finish()
        for entry in profiles["leap"].entries.values():
            assert len(entry.lmads) <= 3
