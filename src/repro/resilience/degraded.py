"""Degraded-mode profiling: quarantine instead of crash.

DJXPerf's lesson for object-centric profilers is that imperfect
attribution is a fact of life -- the profiler must keep producing a
usable (smaller) profile rather than abort.  Here that means any tuple
the compressors cannot be trusted with -- malformed fields from a
corrupted event, or a wild access that resolves to no live object --
is diverted into a bounded sidecar stream, and the resulting profile
carries a *capture-completeness* ratio so consumers know exactly how
much of the run they are looking at.

The sidecar is bounded on purpose: a stream that is 90% garbage must
not re-inflate the memory the compressors were built to avoid.  Past
the record cap only the counts keep growing.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, Iterator, List, Tuple

from repro.core.tuples import ObjectRelativeAccess

#: default cap on retained quarantine records (counters keep counting
#: past it; the records themselves stop accumulating)
DEFAULT_QUARANTINE_LIMIT = 1024


class Quarantine:
    """Bounded sidecar for tuples excluded from a degraded profile.

    >>> quarantine = Quarantine(limit=2)
    >>> for i in range(5):
    ...     quarantine.add("bad-size", ("record", i))
    >>> quarantine.total, len(quarantine.records), quarantine.dropped
    (5, 2, 3)
    """

    #: cap on ``quarantine`` records one instance will emit to a
    #: TRACELINK sink -- the quarantine itself is unbounded in count,
    #: but the event ring must not be
    EVENT_CAP = 32

    def __init__(self, limit: int = DEFAULT_QUARANTINE_LIMIT) -> None:
        if limit < 0:
            raise ValueError("quarantine limit must be >= 0")
        self.limit = limit
        self.records: List[Tuple[str, object]] = []
        self.reasons: Dict[str, int] = {}
        self.total = 0
        #: optional TRACELINK event sink (duck-typed ``emit``)
        self.events = None
        self._events_emitted = 0
        # pipeline stages on several threads feed one quarantine; the
        # lock keeps total/reasons/records advancing together
        self._lock = threading.Lock()

    def add(self, reason: str, record: object) -> None:
        with self._lock:
            self.total += 1
            self.reasons[reason] = self.reasons.get(reason, 0) + 1
            if len(self.records) < self.limit:
                self.records.append((reason, record))
            emit_now = (
                self.events is not None
                and self._events_emitted < self.EVENT_CAP
            )
            if emit_now:
                self._events_emitted += 1
            total = self.total
        if emit_now:
            # emit outside the lock: the sink does its own locking and
            # may flush to disk
            from repro.obs.context import current

            context = current()
            self.events.emit(
                "quarantine",
                trace=context.trace_id if context is not None else None,
                span=context.span_id if context is not None else None,
                reason=reason,
                total=total,
            )

    @property
    def dropped(self) -> int:
        """Quarantined tuples beyond the record cap (counted only)."""
        with self._lock:
            return self.total - len(self.records)

    def __len__(self) -> int:
        with self._lock:
            return self.total

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"Quarantine({self.total} quarantined, "
                f"{len(self.records)} retained, reasons={self.reasons})"
            )


def quarantine_stream(
    accesses: Iterable[ObjectRelativeAccess],
    quarantine: Quarantine,
    include_wild: bool = True,
) -> Iterator[ObjectRelativeAccess]:
    """Yield only the well-formed accesses; divert the rest.

    Malformed tuples (non-integer or negative fields a corrupted event
    produces) always quarantine.  Wild accesses -- well-formed but
    resolving to no live object -- quarantine too by default, because
    in degraded mode their raw addresses are exactly the untrustworthy
    part of the stream; pass ``include_wild=False`` to keep the
    lossless behaviour for them.
    """
    for access in accesses:
        reason = access.malformation()
        if reason is None and include_wild and access.wild:
            reason = "wild"
        if reason is None:
            yield access
        else:
            quarantine.add(reason, access)


def quarantine_consumer(consumer, quarantine: Quarantine):
    """Per-access variant of :func:`quarantine_stream` for the online
    pipeline: wraps an SCC ``consume`` callable."""

    def guarded(access: ObjectRelativeAccess) -> None:
        reason = access.malformation()
        if reason is None and access.wild:
            reason = "wild"
        if reason is None:
            consumer(access)
        else:
            quarantine.add(reason, access)

    return guarded
