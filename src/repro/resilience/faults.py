"""Deterministic, seed-driven fault injection.

The fault harness exists to *drill* the pipeline: every failure mode
the resilience layer claims to survive (corrupted probe events, killed
or stalled pool workers, bit-flipped profile files) can be provoked on
schedule, from tests or from ``repro-experiments --inject-faults SPEC``,
and the same seed always provokes the same faults -- including across
separate CLI invocations, which is what makes the interrupt-and-resume
drill reproducible.

Fault spec grammar (clauses joined with ``;``)::

    seed=INT              RNG seed for the probabilistic clauses (default 0)
    drop-events=PROB      drop each access event with probability PROB
    corrupt-events=PROB   corrupt each access event with probability PROB
    kill-task=I[,J,...]   kill (os._exit) the worker running task index I
                          on its first attempt
    stall-task=I:SECS     sleep SECS inside the worker on every attempt
                          of task index I
    flip-profile=N        flip N bits when corrupt_bytes() is applied
    timeout=SECS          per-chunk pool deadline for the executor
    retries=N             executor retry cap (per chunk)
    backoff=SECS          executor base backoff between retries
    abort-after=N         simulated interrupt: stop the experiments
                          runner after N newly completed experiments

Probabilistic decisions use a splitmix64 hash of (seed, tag, index)
rather than a stateful RNG, so they are position-deterministic: whether
access #1234 is dropped does not depend on how many other streams were
corrupted first, or in which process the decision is taken.

Kill faults must fire at most once per task or the retry machinery
could never win; at-most-once across *processes* (the worker that kills
itself cannot remember having done so) is implemented with a ledger
directory: ``O_CREAT | O_EXCL`` file creation is the cross-process
test-and-set.
"""

from __future__ import annotations

import dataclasses
import os
import tempfile
import zlib
from typing import Dict, List, Optional, Tuple

from repro.core.events import AccessEvent, Trace

_MASK64 = (1 << 64) - 1


def _splitmix64(value: int) -> int:
    """One round of splitmix64: a fast, well-mixed 64-bit hash."""
    value = (value + 0x9E3779B97F4A7C15) & _MASK64
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & _MASK64
    return value ^ (value >> 31)


def _mix(seed: int, tag: str, index: int) -> int:
    """Deterministic 64-bit hash of (seed, clause tag, event index).

    ``zlib.crc32`` keys the tag because the builtin ``hash`` of strings
    is salted per process -- decisions must agree between a run and its
    resumed continuation.
    """
    tag_key = zlib.crc32(tag.encode("utf-8"))
    return _splitmix64((seed & _MASK64) ^ (tag_key << 32) ^ (index & _MASK64))


def _chance(seed: int, tag: str, index: int, probability: float) -> bool:
    if probability <= 0.0:
        return False
    if probability >= 1.0:
        return True
    return _mix(seed, tag, index) / float(1 << 64) < probability


@dataclasses.dataclass
class FaultPlan:
    """A parsed fault spec: what to break, where, and how hard."""

    seed: int = 0
    drop_events: float = 0.0
    corrupt_events: float = 0.0
    kill_tasks: Tuple[int, ...] = ()
    stall_tasks: Dict[int, float] = dataclasses.field(default_factory=dict)
    flip_profile: int = 0
    timeout: Optional[float] = None
    retries: Optional[int] = None
    backoff: Optional[float] = None
    abort_after: Optional[int] = None

    def any_event_faults(self) -> bool:
        """Whether the plan touches the probe event stream."""
        return self.drop_events > 0.0 or self.corrupt_events > 0.0

    def any_process_faults(self) -> bool:
        """Whether the plan kills or stalls pool workers."""
        return bool(self.kill_tasks) or bool(self.stall_tasks)


_GRAMMAR_HINT = (
    "fault spec clauses: seed=INT, drop-events=PROB, corrupt-events=PROB, "
    "kill-task=I[,J,...], stall-task=I:SECS, flip-profile=N, timeout=SECS, "
    "retries=N, backoff=SECS, abort-after=N (joined with ';')"
)


def parse_fault_spec(spec: str) -> FaultPlan:
    """Parse the ``--inject-faults`` clause grammar into a plan.

    >>> plan = parse_fault_spec("seed=7;corrupt-events=0.01;kill-task=2")
    >>> plan.seed, plan.corrupt_events, plan.kill_tasks
    (7, 0.01, (2,))
    """
    plan = FaultPlan()
    kills: List[int] = []
    for raw_clause in spec.split(";"):
        clause = raw_clause.strip()
        if not clause:
            continue
        if "=" not in clause:
            raise ValueError(f"bad fault clause {clause!r}; {_GRAMMAR_HINT}")
        key, __, value = clause.partition("=")
        key = key.strip().lower()
        value = value.strip()
        try:
            if key == "seed":
                plan.seed = int(value)
            elif key == "drop-events":
                plan.drop_events = _probability(value)
            elif key == "corrupt-events":
                plan.corrupt_events = _probability(value)
            elif key == "kill-task":
                kills.extend(int(part) for part in value.split(","))
            elif key == "stall-task":
                index_text, __, seconds_text = value.partition(":")
                if not seconds_text:
                    raise ValueError("stall-task needs INDEX:SECONDS")
                plan.stall_tasks[int(index_text)] = float(seconds_text)
            elif key == "flip-profile":
                plan.flip_profile = int(value)
            elif key == "timeout":
                plan.timeout = float(value)
            elif key == "retries":
                plan.retries = int(value)
            elif key == "backoff":
                plan.backoff = float(value)
            elif key == "abort-after":
                plan.abort_after = int(value)
            else:
                raise ValueError(f"unknown fault clause key {key!r}")
        except ValueError as exc:
            raise ValueError(
                f"bad fault clause {clause!r}: {exc}; {_GRAMMAR_HINT}"
            ) from None
    plan.kill_tasks = tuple(kills)
    return plan


def _probability(text: str) -> float:
    value = float(text)
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"probability {value} outside [0, 1]")
    return value


class FaultInjector:
    """Applies a :class:`FaultPlan` deterministically.

    Picklable (the plan is plain data and the ledger is a path), so the
    executor can ship it to pool workers.  Event-level counters
    (``dropped`` / ``corrupted``) are per-process: a worker counts the
    faults it applied, the parent counts its own.
    """

    #: cap on ``fault`` records one injector will emit -- a high
    #: corrupt-events probability over a long trace must not flood the
    #: event ring with millions of identical records
    EVENT_CAP = 32

    def __init__(
        self, plan: FaultPlan, ledger_dir: Optional[str] = None
    ) -> None:
        self.plan = plan
        if ledger_dir is None and plan.any_process_faults():
            ledger_dir = tempfile.mkdtemp(prefix="repro-fault-ledger-")
        self.ledger_dir = ledger_dir
        self.dropped = 0
        self.corrupted = 0
        #: optional TRACELINK event sink (duck-typed ``emit``); set by
        #: the owning CLI, never pickled to workers
        self.events = None
        self._events_emitted = 0

    def __getstate__(self):
        # The sink holds a lock (and possibly a file); workers get the
        # schedule, not the parent's log.
        state = dict(self.__dict__)
        state["events"] = None
        return state

    def _emit(self, fault: str, **fields) -> None:
        """One capped ``fault`` record, tagged with the ambient trace."""
        events = self.events
        if events is None or self._events_emitted >= self.EVENT_CAP:
            return
        self._events_emitted += 1
        from repro.obs.context import current

        context = current()
        events.emit(
            "fault",
            trace=context.trace_id if context is not None else None,
            span=context.span_id if context is not None else None,
            fault=fault,
            **fields,
        )

    # -- at-most-once coordination ------------------------------------

    def fire_once(self, label: str) -> bool:
        """Cross-process test-and-set: True for exactly one caller.

        The first process to create the ledger file wins; every other
        attempt (same process or not, same run or a resumed one when
        the ledger lives under the checkpoint directory) sees the file
        and stands down.
        """
        if self.ledger_dir is None:
            return True
        os.makedirs(self.ledger_dir, exist_ok=True)
        path = os.path.join(self.ledger_dir, label)
        try:
            os.close(os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY))
        except FileExistsError:
            return False
        return True

    # -- process faults (consulted by the executor's workers) ---------

    def should_kill(self, task_index: int) -> bool:
        """Whether the worker running ``task_index`` should die *now*
        (first attempt only, enforced through the ledger)."""
        if task_index not in self.plan.kill_tasks:
            return False
        return self.fire_once(f"kill-task-{task_index}")

    def stall_seconds(self, task_index: int) -> float:
        """Seconds the worker should sleep before running the task."""
        return self.plan.stall_tasks.get(task_index, 0.0)

    # -- event faults -------------------------------------------------

    def drops_event(self, index: int) -> bool:
        return _chance(self.plan.seed, "drop-events", index, self.plan.drop_events)

    def corrupts_event(self, index: int) -> bool:
        return _chance(
            self.plan.seed, "corrupt-events", index, self.plan.corrupt_events
        )

    def corrupt_access(self, event: AccessEvent, index: int) -> AccessEvent:
        """Deterministically damage one access event.

        Three rotating corruption modes model the real-world failure
        classes the degraded pipeline must absorb: a flipped address
        bit (usually lands outside any live object -> wild access), a
        negative size, and a negative instruction id (both malformed,
        destined for the quarantine).
        """
        mode = _mix(self.plan.seed, "corrupt-mode", index) % 3
        if mode == 0:
            bit = _mix(self.plan.seed, "corrupt-bit", index) % 48
            return dataclasses.replace(event, address=event.address ^ (1 << bit))
        if mode == 1:
            return dataclasses.replace(event, size=-1)
        return dataclasses.replace(
            event, instruction_id=-(event.instruction_id + 1)
        )

    def corrupt_trace(self, trace: Trace) -> Trace:
        """A damaged copy of ``trace``: access events dropped/corrupted
        per the plan, object events untouched.  The original trace is
        never modified."""
        if not self.plan.any_event_faults():
            return trace
        events = []
        index = 0
        for event in trace:
            if isinstance(event, AccessEvent):
                if self.drops_event(index):
                    self.dropped += 1
                    self._emit("drop-event", index=index)
                elif self.corrupts_event(index):
                    self.corrupted += 1
                    self._emit("corrupt-event", index=index)
                    events.append(self.corrupt_access(event, index))
                else:
                    events.append(event)
                index += 1
            else:
                events.append(event)
        return Trace.from_events(events)

    def wrap_sink(self, sink):
        """Interpose on a live probe sink: the online analogue of
        :meth:`corrupt_trace`.  Returns a
        :class:`~repro.runtime.probes.FilteredSink` applying the plan's
        drop/corrupt clauses to each ``on_access`` firing."""
        from repro.runtime.probes import FilteredSink

        state = {"index": 0}

        def access_filter(instruction_id, address, size, kind):
            index = state["index"]
            state["index"] = index + 1
            if self.drops_event(index):
                self.dropped += 1
                self._emit("drop-event", index=index)
                return None
            if self.corrupts_event(index):
                self.corrupted += 1
                self._emit("corrupt-event", index=index)
                fake = AccessEvent(instruction_id, address, size, kind, 0)
                damaged = self.corrupt_access(fake, index)
                return (
                    damaged.instruction_id,
                    damaged.address,
                    damaged.size,
                    damaged.kind,
                )
            return instruction_id, address, size, kind

        return FilteredSink(sink, access_filter)

    # -- serialized-artifact faults -----------------------------------

    def corrupt_bytes(self, data: bytes) -> bytes:
        """Flip ``flip-profile`` bits of ``data`` at hash-chosen
        positions (used to fuzz profile files)."""
        if self.plan.flip_profile <= 0 or not data:
            return data
        damaged = bytearray(data)
        for flip in range(self.plan.flip_profile):
            position = _mix(self.plan.seed, "flip-byte", flip) % len(damaged)
            bit = _mix(self.plan.seed, "flip-bit", flip) % 8
            damaged[position] ^= 1 << bit
        self._emit(
            "flip-profile", flips=self.plan.flip_profile, bytes=len(data)
        )
        return bytes(damaged)

    # -- bookkeeping --------------------------------------------------

    def activity(self) -> Dict[str, int]:
        """Faults this process actually applied so far."""
        return {"dropped": self.dropped, "corrupted": self.corrupted}
