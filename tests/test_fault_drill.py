"""End-to-end fault drills for the experiments runner.

These are the acceptance drills of the resilience layer: a sweep run
under ``--inject-faults`` with seeded worker kills and event
corruption, interrupted mid-flight and resumed from its checkpoints,
must complete with valid JSON whose per-experiment statuses say exactly
what happened to each experiment.
"""

import json

import pytest

from repro.experiments.runner import main as runner_main
from repro.parallel import fork_available

pytestmark = pytest.mark.faults

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="platform lacks the fork start method"
)

SCALE = "0.05"


def _read_json(path):
    data = json.loads(path.read_text())
    assert isinstance(data, dict)
    for record in data.values():
        assert record["status"] in ("ok", "retried", "degraded", "failed")
        assert "elapsed_seconds" in record
    return data


class TestInterruptAndResume:
    def test_injected_interrupt_checkpoints_then_resume_completes(
        self, tmp_path, capsys
    ):
        checkpoint_dir = tmp_path / "ckpt"
        json_path = tmp_path / "results.json"
        faults = "seed=5;corrupt-events=0.02"

        code = runner_main(
            [
                "fig3", "fig5", "--scale", SCALE,
                "--inject-faults", faults + ";abort-after=1",
                "--checkpoint-dir", str(checkpoint_dir),
                "--json", str(json_path),
            ]
        )
        captured = capsys.readouterr()
        assert code == 130  # the interrupt exit code, like a real Ctrl-C
        assert "interrupted" in captured.err
        # the partial sweep still wrote valid JSON with one result
        partial = _read_json(json_path)
        assert len(partial) == 1
        # exactly one atomic checkpoint exists
        assert (checkpoint_dir / "fig3.json").exists()

        code = runner_main(
            [
                "fig3", "fig5", "--scale", SCALE,
                "--inject-faults", faults,
                "--checkpoint-dir", str(checkpoint_dir),
                "--json", str(json_path),
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "restored from checkpoint" in captured.out
        final = _read_json(json_path)
        assert set(final) == {"fig3", "fig5"}
        # fig3 runs the paper's worked example on its own tiny program
        # (no SuiteContext traces), so no fault can land in it; fig5
        # profiles corrupted traces through the quarantine.
        assert final["fig3"]["status"] == "ok"
        assert final["fig5"]["status"] == "degraded"

    def test_resume_skips_completed_work(self, tmp_path, capsys):
        checkpoint_dir = tmp_path / "ckpt"
        assert runner_main(
            ["fig3", "--scale", SCALE, "--checkpoint-dir", str(checkpoint_dir)]
        ) == 0
        capsys.readouterr()
        assert runner_main(
            ["fig3", "--scale", SCALE, "--checkpoint-dir", str(checkpoint_dir)]
        ) == 0
        output = capsys.readouterr().out
        assert "restored from checkpoint" in output
        # nothing reran: no completion line, only the restore line
        assert "completed in" not in output


@needs_fork
class TestParallelKillDrill:
    def test_killed_worker_sweep_completes_with_retried_status(
        self, tmp_path, capsys
    ):
        json_path = tmp_path / "results.json"
        code = runner_main(
            [
                "fig3", "fig5", "fig9", "--scale", SCALE, "--jobs", "4",
                "--inject-faults",
                "seed=1;kill-task=0;timeout=60;retries=2;backoff=0.05",
                "--checkpoint-dir", str(tmp_path / "ckpt"),
                "--json", str(json_path),
            ]
        )
        capsys.readouterr()
        assert code == 0
        data = _read_json(json_path)
        assert set(data) == {"fig3", "fig5", "fig9"}
        statuses = {name: record["status"] for name, record in data.items()}
        assert "failed" not in statuses.values()
        # the killed task's experiment recovered via resubmission
        assert statuses["fig3"] == "retried"

    def test_no_fault_parallel_results_match_serial(self, tmp_path, capsys):
        serial_path = tmp_path / "serial.json"
        parallel_path = tmp_path / "parallel.json"
        assert runner_main(
            ["fig3", "--scale", SCALE, "--json", str(serial_path)]
        ) == 0
        assert runner_main(
            ["fig3", "fig5", "--scale", SCALE, "--jobs", "2",
             "--json", str(parallel_path)]
        ) == 0
        capsys.readouterr()
        serial = json.loads(serial_path.read_text())
        parallel = json.loads(parallel_path.read_text())
        assert parallel["fig3"]["results"] == serial["fig3"]["results"]
        assert parallel["fig3"]["status"] == serial["fig3"]["status"] == "ok"
