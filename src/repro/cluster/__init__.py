"""SCALE-OUT: the sharded PROFSTORE cluster.

One :class:`~repro.cluster.router.ClusterRouter` daemon fronts N
:class:`~repro.store.server.StoreServer` shard processes (spawned and
supervised by :class:`~repro.cluster.supervisor.ShardSupervisor`).
Blobs are placed by consistent hashing on a replicated ring
(:mod:`repro.cluster.ring`), written to ``replicas`` shards, and read
back quorum-less with digest verification and read-repair.  The
``repro-cluster`` CLI (:mod:`repro.cluster.cli`) boots, inspects,
rebalances, drains, and load-tests a cluster.
"""

from repro.cluster.health import DigestMerger, RingState, ShardHealthTable
from repro.cluster.ring import HashRing

__all__ = [
    "DigestMerger",
    "HashRing",
    "RingState",
    "ShardHealthTable",
]
