"""REPROLINT loader: discovery, directives, markers, module naming."""

import textwrap

import pytest

from repro.selfcheck.loader import (
    SelfCheckError,
    class_directives,
    discover,
    dotted_name,
    load_tree,
    module_name_for,
    scan_source,
)


def scan(source, path="inline.py"):
    return scan_source(path, textwrap.dedent(source))


class TestModuleNaming:
    def test_anchors_at_repro_segment(self):
        assert (
            module_name_for("/x/src/repro/store/cache.py")
            == "repro.store.cache"
        )

    def test_package_init_names_the_package(self):
        assert (
            module_name_for("/x/src/repro/obs/__init__.py") == "repro.obs"
        )

    def test_outside_repro_uses_stem(self):
        assert module_name_for("/tmp/scratch/thing.py") == "thing"


class TestDirectives:
    def test_allow_and_expect_are_line_scoped(self):
        module = scan(
            """\
            x = 1  # repro: allow(RL131, RL132)
            y = 2  # repro: expect(RL101)
            """
        )
        assert module.suppressions[1] == frozenset({"RL131", "RL132"})
        assert module.expects[2] == frozenset({"RL101"})
        assert 2 not in module.suppressions

    def test_module_markers(self):
        module = scan("# repro: fixture\n# repro: workers\nx = 1\n")
        assert module.is_fixture
        assert "workers" in module.markers

    def test_backtick_quoted_mentions_are_not_directives(self):
        # docstrings documenting the directives (the loader's own
        # docstring does) must not activate them
        module = scan(
            '"""Explains ``# repro: fixture`` and ``# repro: shared``."""\n'
        )
        assert not module.is_fixture
        assert not module.class_marks

    def test_class_directive_on_decorated_class(self):
        module = scan(
            """\
            import functools

            @functools.total_ordering  # repro: shared
            class Thing:
                def __init__(self):
                    self.x = 0
            """
        )
        node = module.tree.body[1]
        assert class_directives(module, node) == {"shared"}


class TestDiscovery:
    def test_discover_walks_sorted_and_skips_pycache(self, tmp_path):
        (tmp_path / "b.py").write_text("x = 1\n")
        (tmp_path / "a.py").write_text("x = 1\n")
        cache = tmp_path / "__pycache__"
        cache.mkdir()
        (cache / "junk.py").write_text("x = 1\n")
        found = discover([str(tmp_path)])
        assert [f.rsplit("/", 1)[-1] for f in found] == ["a.py", "b.py"]

    def test_discover_rejects_non_python(self, tmp_path):
        target = tmp_path / "data.json"
        target.write_text("{}")
        with pytest.raises(SelfCheckError):
            discover([str(target)])

    def test_load_tree_skips_fixture_modules(self, tmp_path):
        (tmp_path / "real.py").write_text("x = 1\n")
        (tmp_path / "seeded.py").write_text("# repro: fixture\nx = 1\n")
        names = [m.path for m in load_tree([str(tmp_path)])]
        assert any(p.endswith("real.py") for p in names)
        assert not any(p.endswith("seeded.py") for p in names)
        names = [
            m.path
            for m in load_tree([str(tmp_path)], include_fixtures=True)
        ]
        assert any(p.endswith("seeded.py") for p in names)

    def test_syntax_error_is_a_selfcheck_error(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n")
        with pytest.raises(SelfCheckError, match="syntax error"):
            load_tree([str(bad)])


class TestDottedName:
    def test_chains(self):
        import ast

        expr = ast.parse("a.b.c").body[0].value
        assert dotted_name(expr) == "a.b.c"
        call = ast.parse("f(x).y").body[0].value
        assert dotted_name(call) is None
