"""Shared fixtures: small traces reused across test modules."""

import pytest

from repro.core.events import AccessKind
from repro.runtime.process import Process
from repro.workloads.micro import LinkedListTraversal, MatrixTraversal


@pytest.fixture(scope="session")
def list_trace():
    """A small linked-list trace with clutter allocations and frees."""
    return LinkedListTraversal(nodes=40, sweeps=6).trace()


@pytest.fixture(scope="session")
def matrix_trace():
    """A strided matrix trace (row-major writes, column-major reads)."""
    return MatrixTraversal(rows=20, cols=20).trace()


@pytest.fixture()
def tiny_process():
    """A process with one static and one instruction of each kind."""
    process = Process()
    process.declare_static("table", 256, type_name="long[]")
    process.instruction("ld", AccessKind.LOAD)
    process.instruction("st", AccessKind.STORE)
    return process


def make_simple_trace():
    """A hand-built trace: alloc, strided stores, loads, free."""
    process = Process()
    ld = process.instruction("ld", AccessKind.LOAD)
    st = process.instruction("st", AccessKind.STORE)
    block = process.malloc("site", 64, type_name="long[]")
    for index in range(8):
        process.store(st, block + index * 8)
    for index in range(8):
        process.load(ld, block + index * 8)
    process.free(block)
    process.finish()
    return process


@pytest.fixture()
def simple_process():
    return make_simple_trace()


@pytest.fixture()
def simple_trace(simple_process):
    return simple_process.trace
