"""The feedback-directed loop, closed: profile -> optimize -> measure.

The paper's profilers exist to feed memory optimizations.  This example
runs three of them end to end on the cache simulator:

* object clustering from the object-relative co-access profile
  (scattered linked-list nodes get packed in traversal order);
* stride prefetching from LEAP's strongly-strided instructions;
* hot-data-stream extraction from the object-reference grammar.

Run with::

    python examples/fdmo_optimizations.py
"""

from repro.core.cdc import translate_trace_list
from repro.postprocess.clustering import ObjectClusterer
from repro.postprocess.hot_streams import coverage, extract_hot_streams
from repro.postprocess.prefetch import evaluate_prefetching
from repro.runtime.cache import CacheConfig
from repro.workloads.micro import LinkedListTraversal, MatrixTraversal


def show(comparison) -> None:
    print(f"  baseline miss rate:  {comparison.baseline.miss_rate:.1%}")
    print(f"  optimized miss rate: {comparison.optimized.miss_rate:.1%}")
    print(f"  miss reduction:      {comparison.miss_reduction:.0%}")


def main() -> None:
    cache = CacheConfig(size_bytes=4096, line_bytes=64, associativity=2)

    print("1. object clustering (linked list scattered by the allocator)")
    list_trace = LinkedListTraversal(nodes=200, sweeps=10).trace()
    show(ObjectClusterer().evaluate(list_trace, cache))

    print("\n2. stride prefetching (column-major matrix reads)")
    matrix_trace = MatrixTraversal(rows=64, cols=64).trace()
    comparison = evaluate_prefetching(matrix_trace, config=cache)
    show(comparison)
    print(f"  prefetched instructions: "
          f"{comparison.extra['prefetched_instructions']}")

    print("\n3. hot data streams (from the object-reference grammar)")
    stream = translate_trace_list(list_trace)
    hot = extract_hot_streams(stream, top=3)
    for hot_stream in hot:
        head = " -> ".join(
            f"g{g}o{o}" for g, o in hot_stream.references[:4]
        )
        print(f"  stream of {hot_stream.length} objects x "
              f"{hot_stream.occurrences} occurrences  ({head} -> ...)")
    print(f"  coverage of the reference stream: "
          f"{coverage(hot, len(stream)):.0%}")
    print(
        "\nEach optimization consumed only the object-relative profile --"
        "\nno raw addresses -- and still beat the allocator's layout,"
        "\nbecause the profile is the program's true access structure."
    )


if __name__ == "__main__":
    main()
