# repro: fixture
"""Seeded lockset defects: every RL10x race checker must fire here.

``SharedCounter`` mutates outside its lock (RL101), snapshots two
guarded attributes unlocked (RL102), and writes to disk while holding
the state lock (RL103).  ``NoLockRegistry`` is shared but owns no lock
at all (RL105).  ``Owner`` calls into an externally-guarded object
without holding anything (RL104).
"""

import threading

from repro.core.fsutil import atomic_write_text


class SharedCounter:  # repro: shared
    """A counter several threads bump."""

    def __init__(self):
        self._lock = threading.Lock()
        self.count = 0
        self.peak = 0

    def bump(self):
        self.count += 1  # repro: expect(RL101)
        with self._lock:
            self.peak = max(self.peak, self.count)

    def snapshot(self):
        return (self.count, self.peak)  # repro: expect(RL102)

    def persist(self, path):
        with self._lock:
            atomic_write_text(path, str(self.count))  # repro: expect(RL103)


class NoLockRegistry:  # repro: shared  # repro: expect(RL105)
    """Shared, mutated, and entirely unguarded."""

    def __init__(self):
        self.entries = {}

    def put(self, key, value):
        self.entries[key] = value


class ExternallyGuarded:  # repro: synchronized-externally
    """Guarded by its owner's lock, by contract."""

    def __init__(self):
        self.observations = 0

    def observe(self):
        self.observations += 1


class Owner:  # repro: shared
    """Holds an externally-guarded object but forgets the contract."""

    def __init__(self):
        self._lock = threading.Lock()
        self.digest = ExternallyGuarded()

    def record_wrong(self):
        self.digest.observe()  # repro: expect(RL104)

    def record_right(self):
        with self._lock:
            self.digest.observe()
