"""Shared cluster state: ring membership, shard health, merged metrics.

Three small thread-safe classes, each one lock around one concern, all
registered in REPROLINT's shared-class seed set (daemon handler
threads, the health-probe thread, and the supervisor callback all
touch them):

* :class:`RingState` -- the locked facade over one
  :class:`~repro.cluster.ring.HashRing` (which is marked
  synchronized-externally and never escapes the lock);
* :class:`ShardHealthTable` -- what the router believes about each
  shard: address, pid, liveness, drain state, restart count, run
  count, last error;
* :class:`DigestMerger` -- the router's latency accounting plus the
  cluster-level merge of per-shard
  :class:`~repro.obs.quantiles.QuantileDigest` wire forms.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional, Tuple

from repro.cluster.ring import DEFAULT_VNODES, HashRing
from repro.obs.quantiles import QuantileDigest


class RingState:
    """The cluster's placement authority, safe to share across threads.

    Every mutation bumps ``version`` so ``/clusterz`` readers (and the
    rebalancer) can tell whether the layout changed under them.
    """

    def __init__(
        self, replicas: int = 2, vnodes: int = DEFAULT_VNODES
    ) -> None:
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.replicas = replicas
        self._lock = threading.Lock()
        self._ring = HashRing(vnodes)
        self.version = 0

    def add(self, shard: str) -> None:
        with self._lock:
            if shard not in self._ring:
                self._ring.add(shard)
                self.version += 1

    def remove(self, shard: str) -> None:
        with self._lock:
            if shard in self._ring:
                self._ring.remove(shard)
                self.version += 1

    def __contains__(self, shard: str) -> bool:
        with self._lock:
            return shard in self._ring

    def shards(self) -> Tuple[str, ...]:
        with self._lock:
            return self._ring.shards()

    def place(self, key: str) -> List[str]:
        """The replica set for one key under the current membership."""
        with self._lock:
            return self._ring.place(key, self.replicas)

    def layout(self) -> Dict[str, object]:
        with self._lock:
            layout = self._ring.layout()
            layout["replicas"] = self.replicas
            layout["version"] = self.version
        return layout


class ShardHealthTable:
    """What the router currently believes about each shard.

    Rows are plain dicts (snapshot() deep-copies them out), keyed by
    the shard's stable *name* -- the name is what the ring places on,
    so a shard that restarts on a new port keeps its identity and its
    data placement.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._shards: Dict[str, Dict[str, object]] = {}

    def _row(self, name: str) -> Dict[str, object]:
        # caller holds the lock
        row = self._shards.get(name)
        if row is None:
            row = self._shards[name] = {
                "url": None,
                "pid": None,
                "alive": False,
                "draining": False,
                "restarts": 0,
                "runs": None,
                "last_error": None,
                "checked_ts": None,
            }
        return row

    def set_address(
        self,
        name: str,
        url: str,
        pid: Optional[int] = None,
        restarts: int = 0,
    ) -> None:
        """(Re)announce a shard -- initial spawn and every restart."""
        with self._lock:
            row = self._row(name)
            row["url"] = url
            row["pid"] = pid
            row["restarts"] = restarts
            row["alive"] = True
            row["last_error"] = None

    def mark_ok(self, name: str, runs: Optional[int] = None) -> None:
        with self._lock:
            row = self._row(name)
            row["alive"] = True
            row["last_error"] = None
            row["checked_ts"] = time.time()
            if runs is not None:
                row["runs"] = runs

    def mark_failed(self, name: str, error: str) -> None:
        with self._lock:
            row = self._row(name)
            row["alive"] = False
            row["last_error"] = error
            row["checked_ts"] = time.time()

    def set_draining(self, name: str, draining: bool = True) -> None:
        with self._lock:
            self._row(name)["draining"] = draining

    def forget(self, name: str) -> None:
        with self._lock:
            self._shards.pop(name, None)

    def names(self) -> List[str]:
        with self._lock:
            return list(self._shards)

    def url(self, name: str) -> Optional[str]:
        with self._lock:
            row = self._shards.get(name)
            return None if row is None else row["url"]  # type: ignore

    def pid(self, name: str) -> Optional[int]:
        with self._lock:
            row = self._shards.get(name)
            return None if row is None else row["pid"]  # type: ignore

    def is_alive(self, name: str) -> bool:
        with self._lock:
            row = self._shards.get(name)
            return bool(row and row["alive"])

    def alive_shards(self) -> List[str]:
        with self._lock:
            return [
                name
                for name, row in self._shards.items()
                if row["alive"] and not row["draining"]
            ]

    def lag_runs(self) -> Optional[int]:
        """Replication lag proxy: max - min run count across live,
        non-draining shards (None until two shards have reported)."""
        with self._lock:
            counts = [
                row["runs"]
                for row in self._shards.values()
                if row["alive"]
                and not row["draining"]
                and isinstance(row["runs"], int)
            ]
        if len(counts) < 2:
            return None
        return max(counts) - min(counts)  # type: ignore[type-var]

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        with self._lock:
            return {name: dict(row) for name, row in self._shards.items()}


class DigestMerger:
    """Keyed latency digests, observable locally and mergeable remotely.

    The router observes its own request latencies per endpoint and
    absorbs each shard's ``latency_digests`` wire forms (from
    ``/metricsz?digests=1``) into the same keyed table, yielding the
    cluster-level p50/p95/p99 without shipping raw samples.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._digests: Dict[str, QuantileDigest] = {}

    def observe(self, key: str, seconds: float) -> None:
        with self._lock:
            digest = self._digests.get(key)
            if digest is None:
                digest = self._digests[key] = QuantileDigest()
            digest.observe(seconds)

    def absorb(self, plains: Dict[str, object]) -> None:
        """Merge a ``{key: QuantileDigest.to_plain()}`` table in."""
        for key, plain in plains.items():
            incoming = QuantileDigest.from_plain(plain)
            with self._lock:
                digest = self._digests.get(key)
                if digest is None:
                    self._digests[key] = incoming
                else:
                    digest.merge(incoming)

    def summaries(self) -> Dict[str, Dict[str, object]]:
        with self._lock:
            return {
                key: digest.summary()
                for key, digest in self._digests.items()
                if digest.count
            }

    def plains(self) -> Dict[str, object]:
        with self._lock:
            return {
                key: digest.to_plain()
                for key, digest in self._digests.items()
                if digest.count
            }
