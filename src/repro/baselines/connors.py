"""Connors-style window-based memory-dependence profiler (Section 4.2.1).

The comparison baseline of Figures 7/8: a re-implementation of the
instruction-indexed memory dependence profiler of Connors' thesis, which
"identifies dependences only in a small window of instructions based on
addresses recorded in a small history window".

A bounded FIFO of recent *store* executions is kept; each load execution
is matched against the stores currently in the window.  Because the
window forgets old stores, dependences with long def-use distances are
missed -- the profiler undercounts but, matching the paper's
observation, never *overestimates* a pair's frequency.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Set, Tuple

from repro.baselines.dependence_lossless import DependenceProfile
from repro.core.events import AccessKind, Trace

#: Default history window: number of store executions remembered.  The
#: paper "chose a window size such that it exhibits a running time
#: similar to LEAP"; the Fig 7 ablation bench sweeps this, and 768 is
#: the value whose runtime matches LEAP's on the stand-in suite.
DEFAULT_WINDOW = 768


class ConnorsProfiler:
    """Window-based dependence profiler.

    ``window``
        Number of most recent store executions retained.
    """

    def __init__(self, window: int = DEFAULT_WINDOW) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        self.window = window

    def profile(self, trace: Trace) -> DependenceProfile:
        profile = DependenceProfile()
        history: Deque[Tuple[int, int]] = deque()  # (address, store id)
        # address -> store ids currently in the window (multiset via counts)
        in_window: Dict[int, Dict[int, int]] = {}
        for event in trace.accesses():
            if event.kind is AccessKind.STORE:
                profile.store_counts[event.instruction_id] = (
                    profile.store_counts.get(event.instruction_id, 0) + 1
                )
                history.append((event.address, event.instruction_id))
                slot = in_window.setdefault(event.address, {})
                slot[event.instruction_id] = slot.get(event.instruction_id, 0) + 1
                if len(history) > self.window:
                    old_address, old_store = history.popleft()
                    old_slot = in_window[old_address]
                    old_slot[old_store] -= 1
                    if not old_slot[old_store]:
                        del old_slot[old_store]
                    if not old_slot:
                        del in_window[old_address]
            else:
                profile.load_counts[event.instruction_id] = (
                    profile.load_counts.get(event.instruction_id, 0) + 1
                )
                matches: Set[int] = set(in_window.get(event.address, ()))
                for store_id in matches:
                    pair = (store_id, event.instruction_id)
                    profile.conflicts[pair] = profile.conflicts.get(pair, 0) + 1
        return profile
