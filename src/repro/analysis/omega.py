"""Omega-test-like integer solver for LMAD intersection.

Section 4.2.1: "Because of the linear structure of LMADs, the above
computation can be sped up using some omega-test-like linear programming
algorithms.  For example, detecting the location conflicts involves
solving integer solutions k1, k2 for

    start1 + stride1*k1 = start2 + stride2*k2,
    k1 <= count1, k2 <= count2"

This module solves exactly that, exactly: a system of per-dimension
linear Diophantine equations over the bounded index box
``0 <= k1 < count1, 0 <= k2 < count2``, plus an optional strict ordering
constraint on a designated *time* dimension.  The solution set of such a
system is a (possibly empty) one-parameter integer lattice line clipped
to an interval; :class:`SolutionSet` represents it in closed form so
callers can count solutions -- or count distinct ``k2`` values, which is
what memory-dependence frequency needs -- without enumeration.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil, floor, gcd
from typing import Optional, Tuple

from repro.compression.lmad import LMAD


def extended_gcd(a: int, b: int) -> Tuple[int, int, int]:
    """Return ``(g, x, y)`` with ``a*x + b*y == g == gcd(a, b)``.

    >>> extended_gcd(240, 46)
    (2, -9, 47)
    """
    old_r, r = a, b
    old_x, x = 1, 0
    old_y, y = 0, 1
    while r:
        q = old_r // r
        old_r, r = r, old_r - q * r
        old_x, x = x, old_x - q * x
        old_y, y = y, old_y - q * y
    if old_r < 0:
        old_r, old_x, old_y = -old_r, -old_x, -old_y
    return old_r, old_x, old_y


@dataclass(frozen=True)
class SolutionSet:
    """Integer solutions ``(k1, k2) = (k1_0, k2_0) + s*(q1, q2)`` for
    ``s`` in ``[s_min, s_max]``.

    An empty set is represented by ``s_min > s_max``.  A unique solution
    has ``q1 == q2 == 0`` and ``s_min == s_max == 0``.
    """

    k1_0: int
    k2_0: int
    q1: int
    q2: int
    s_min: int
    s_max: int

    @classmethod
    def empty(cls) -> "SolutionSet":
        return cls(0, 0, 0, 0, 1, 0)

    @property
    def is_empty(self) -> bool:
        return self.s_min > self.s_max

    def count(self) -> int:
        """Number of integer solution pairs."""
        if self.is_empty:
            return 0
        return self.s_max - self.s_min + 1

    def distinct_k2(self) -> int:
        """Number of distinct ``k2`` values among solutions.

        When ``q2 == 0`` every solution shares one ``k2``.
        """
        if self.is_empty:
            return 0
        if self.q2 == 0:
            return 1
        return self.s_max - self.s_min + 1

    def k2_progression(self) -> Tuple[int, int, int]:
        """The distinct ``k2`` values as ``(first, step, n)`` with
        ``step >= 0``; ``step == 0`` means a single value."""
        if self.is_empty:
            raise ValueError("empty solution set")
        if self.q2 == 0:
            return self.k2_0 + 0, 0, 1
        first = self.k2_0 + self.s_min * self.q2
        last = self.k2_0 + self.s_max * self.q2
        step = abs(self.q2)
        return min(first, last), step, self.s_max - self.s_min + 1

    def restrict(self, new_min: int, new_max: int) -> "SolutionSet":
        return SolutionSet(
            self.k1_0,
            self.k2_0,
            self.q1,
            self.q2,
            max(self.s_min, new_min),
            min(self.s_max, new_max),
        )


# A practical bound standing in for "unbounded" parameter ranges.  All
# callers clip to index boxes immediately, so the sentinel never leaks
# into counts as long as LMAD counts stay below it (they are trace
# lengths, far below 2**62).
_HUGE = 1 << 62


def _clip_affine(
    base: int, step: int, lo: int, hi: int, s_min: int, s_max: int
) -> Tuple[int, int]:
    """Intersect ``lo <= base + step*s <= hi`` with ``[s_min, s_max]``."""
    if step == 0:
        if lo <= base <= hi:
            return s_min, s_max
        return 1, 0
    if step > 0:
        new_min = ceil((lo - base) / step)
        new_max = floor((hi - base) / step)
    else:
        new_min = ceil((hi - base) / step)
        new_max = floor((lo - base) / step)
    return max(s_min, new_min), min(s_max, new_max)


def solve_equality(
    start1: int, stride1: int, count1: int, start2: int, stride2: int, count2: int
) -> SolutionSet:
    """Solve ``start1 + stride1*k1 == start2 + stride2*k2`` over the box
    ``0 <= k1 < count1, 0 <= k2 < count2``.

    This is the 1-D omega-test core: a single linear Diophantine equation
    ``stride1*k1 - stride2*k2 == start2 - start1``.
    """
    a, b, c = stride1, -stride2, start2 - start1
    if a == 0 and b == 0:
        if c != 0:
            return SolutionSet.empty()
        # Every (k1, k2) matches; not a line but a full box.  Callers in
        # this codebase always have at least one non-degenerate stride
        # (an all-zero-stride LMAD pair means two constant locations,
        # handled here as the full box collapsed onto k-independence).
        # Represent as k1 fixed at 0, k2 sweeping -- counts of distinct
        # k2 remain exact, which is all MDF consumes.
        return SolutionSet(0, 0, 0, 1, 0, count2 - 1)
    g, x, y = extended_gcd(a, b)
    if c % g:
        return SolutionSet.empty()
    scale = c // g
    k1_0, k2_0 = x * scale, y * scale
    # General solution: k1 = k1_0 + (b/g)s, k2 = k2_0 - (a/g)s.
    q1, q2 = b // g, -(a // g)
    s_min, s_max = -_HUGE, _HUGE
    s_min, s_max = _clip_affine(k1_0, q1, 0, count1 - 1, s_min, s_max)
    s_min, s_max = _clip_affine(k2_0, q2, 0, count2 - 1, s_min, s_max)
    if s_min > s_max:
        return SolutionSet.empty()
    return SolutionSet(k1_0, k2_0, q1, q2, s_min, s_max)


def _apply_equation(
    sol: SolutionSet, a: int, b: int, c: int
) -> Optional[SolutionSet]:
    """Refine ``sol`` with the additional equation ``a*k1 + b*k2 == c``.

    Substituting the parametrization gives a linear equation in ``s``:
    either inconsistent (returns None), an exact value of ``s``, or
    redundant (returns ``sol``).
    """
    coeff = a * sol.q1 + b * sol.q2
    rhs = c - a * sol.k1_0 - b * sol.k2_0
    if coeff == 0:
        return sol if rhs == 0 else None
    if rhs % coeff:
        return None
    s = rhs // coeff
    if not sol.s_min <= s <= sol.s_max:
        return None
    return SolutionSet(
        sol.k1_0 + s * sol.q1, sol.k2_0 + s * sol.q2, 0, 0, 0, 0
    )


def _apply_strict_less(sol: SolutionSet, a: int, b: int, c: int) -> SolutionSet:
    """Refine ``sol`` with ``a*k1 + b*k2 + c < 0`` (strict)."""
    coeff = a * sol.q1 + b * sol.q2
    base = a * sol.k1_0 + b * sol.k2_0 + c
    if coeff == 0:
        return sol if base < 0 else SolutionSet.empty()
    # coeff*s + base < 0  =>  coeff*s <= -base - 1
    if coeff > 0:
        new_max = floor((-base - 1) / coeff)
        return sol.restrict(sol.s_min, new_max)
    new_min = ceil((-base - 1) / coeff)
    return sol.restrict(new_min, sol.s_max)


def intersect_lmads(
    writer: LMAD,
    reader: LMAD,
    equal_dims: Tuple[int, ...],
    time_dim: Optional[int] = None,
) -> SolutionSet:
    """Solve for index pairs where two LMADs touch the same location.

    ``equal_dims`` lists the dimensions that must be equal (for LEAP's
    (object, offset, time) streams: object and offset).  ``time_dim``,
    when given, additionally requires ``writer_time < reader_time`` --
    the read-after-write ordering of the MDF definition.

    Returns the solution set over ``(k_writer, k_reader)``.
    """
    if writer.dims != reader.dims:
        raise ValueError("LMAD dimensionality mismatch")
    if not equal_dims:
        raise ValueError("need at least one equality dimension")
    # Degenerate dimensions (both strides zero) are pure constant checks;
    # parametrizing on one would pin the wrong index variable, so split
    # them out first.
    degenerate = [
        d for d in equal_dims if writer.stride[d] == 0 and reader.stride[d] == 0
    ]
    for dim in degenerate:
        if writer.start[dim] != reader.start[dim]:
            return SolutionSet.empty()
    live = [d for d in equal_dims if d not in degenerate]
    if not live:
        # Every equality dimension is constant and matching: the full
        # index box conflicts.  Represent it with k1 pinned to the
        # writer's earliest index and k2 sweeping; with the monotone
        # time dimensions LEAP produces this preserves exists-a-writer
        # semantics for ``distinct_k2`` (the only count MDF consumes).
        sol = SolutionSet(0, 0, 0, 1, 0, reader.count - 1)
        if time_dim is not None:
            sol = _apply_strict_less(
                sol,
                writer.stride[time_dim],
                -reader.stride[time_dim],
                writer.start[time_dim] - reader.start[time_dim],
            )
        return sol
    first, *rest = live
    sol = solve_equality(
        writer.start[first],
        writer.stride[first],
        writer.count,
        reader.start[first],
        reader.stride[first],
        reader.count,
    )
    if sol.is_empty:
        return sol
    for dim in rest:
        refined = _apply_equation(
            sol,
            writer.stride[dim],
            -reader.stride[dim],
            reader.start[dim] - writer.start[dim],
        )
        if refined is None:
            return SolutionSet.empty()
        sol = refined
        if sol.is_empty:
            return sol
    if time_dim is not None:
        # writer_time < reader_time:
        #   w_start + w_stride*k1 - r_start - r_stride*k2 < 0
        sol = _apply_strict_less(
            sol,
            writer.stride[time_dim],
            -reader.stride[time_dim],
            writer.start[time_dim] - reader.start[time_dim],
        )
    return sol
