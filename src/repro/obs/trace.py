"""Trace documents: assembling, persisting, and rendering one trace.

A *trace document* is the durable form of one traced invocation: the
trace id, the span trees every participant contributed (the CLI's own
plus the worker trees grafted back through the pool), and the
structured events that carried the trace id.  It is a first-class
profile-store document kind (``"format": "trace"``, validated by
:mod:`repro.core.profile_io` like any other), so traces are ingested,
content-addressed, queried, and garbage-collected exactly like
profiles.

Rendering is deliberately plain text:

* :func:`render_trace_tree` -- the ``repro-obs trace show`` view: an
  ASCII tree with per-span wall time, call counts, and item
  throughput, children ordered on the shared wall-clock timeline the
  spans' start offsets define;
* :func:`top_spans` -- the hottest span paths across a run,
  aggregated from ``stage`` events;
* :func:`folded_stacks` -- ``parent;child;grandchild <microseconds>``
  lines, the folded-stack format every flamegraph tool consumes.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Optional, Tuple

# The document version (and the validating decoder) live with the other
# formats in core.profile_io; builders and validators must agree.
from repro.core.profile_io import TRACE_FORMAT_VERSION as TRACE_DOCUMENT_VERSION


def build_trace_document(
    trace_id: str,
    spans: Iterable[Dict[str, object]],
    events: Iterable[Dict[str, object]],
    meta: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Assemble the canonical trace document for one invocation.

    ``spans`` are :meth:`repro.telemetry.spans.Span.to_plain` trees
    (typically the root's top-level children); ``events`` are event-log
    records, filtered here to the trace's own.
    """
    return {
        "format": "trace",
        "version": int(TRACE_DOCUMENT_VERSION),
        "trace_id": trace_id,
        "created": time.time(),
        "spans": list(spans),
        "events": [
            event for event in events if event.get("trace") == trace_id
        ],
        "meta": dict(meta or {}),
    }


# -- tree rendering ----------------------------------------------------------


def _format_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.3f}s"
    return f"{seconds * 1e3:.2f}ms"


def _format_rate(rate: float) -> str:
    if rate >= 1e6:
        return f"{rate / 1e6:.2f}M"
    if rate >= 1e3:
        return f"{rate / 1e3:.1f}k"
    return f"{rate:.0f}"


def _span_line(span: Dict[str, object]) -> str:
    seconds = float(span.get("seconds", 0.0))
    calls = int(span.get("calls", 0))
    items = int(span.get("items", 0))
    detail = f"{_format_seconds(seconds)}  x{calls}"
    if items:
        unit = str(span.get("unit", "items"))
        detail += f"  {items} {unit}"
        if seconds > 0.0:
            detail += f" ({_format_rate(items / seconds)} {unit}/s)"
    span_id = span.get("span_id")
    if span_id:
        detail += f"  [{span_id}]"
    return detail


def _ordered_children(span: Dict[str, object]) -> List[Dict[str, object]]:
    children = [
        child for child in span.get("children", ()) if isinstance(child, dict)
    ]
    # Shared-timeline order: spans absorbed from workers carry absolute
    # start offsets, so sorting on them interleaves worker and parent
    # stages the way they actually ran.  Zero (never entered under a
    # wall clock) sorts last, in creation order.
    indexed = list(enumerate(children))
    indexed.sort(
        key=lambda pair: (
            float(pair[1].get("start_ts") or 0.0) or float("inf"),
            pair[0],
        )
    )
    return [child for __, child in indexed]


def render_trace_tree(document: Dict[str, object]) -> str:
    """The ASCII span tree of one trace document."""
    lines: List[str] = [f"trace {document.get('trace_id', '?')}"]
    spans = [
        span for span in document.get("spans", ()) if isinstance(span, dict)
    ]
    starts = [
        float(span.get("start_ts") or 0.0)
        for span in spans
        if float(span.get("start_ts") or 0.0) > 0.0
    ]
    epoch = min(starts) if starts else 0.0

    def walk(span: Dict[str, object], prefix: str, is_last: bool) -> None:
        connector = "`-- " if is_last else "|-- "
        name = str(span.get("name", "?"))
        offset = ""
        start = float(span.get("start_ts") or 0.0)
        if start > 0.0 and epoch > 0.0:
            offset = f" @+{start - epoch:.3f}s"
        lines.append(
            f"{prefix}{connector}{name:<20} {_span_line(span)}{offset}"
        )
        children = _ordered_children(span)
        child_prefix = prefix + ("    " if is_last else "|   ")
        for index, child in enumerate(children):
            walk(child, child_prefix, index == len(children) - 1)

    ordered = _ordered_children({"children": spans})
    for index, span in enumerate(ordered):
        walk(span, "", index == len(ordered) - 1)
    events = document.get("events", ())
    if events:
        lines.append(f"({len(events)} event record(s) in this trace)")
    return "\n".join(lines)


# -- aggregation views -------------------------------------------------------


def top_spans(
    events: Iterable[Dict[str, object]], limit: int = 10
) -> List[Dict[str, object]]:
    """The hottest span paths by accumulated wall time.

    Aggregates ``stage`` events (one per span exit) by their slash
    path; returns rows ``{path, seconds, calls, items}`` sorted by
    seconds descending.
    """
    totals: Dict[str, Dict[str, object]] = {}
    for event in events:
        if event.get("kind") != "stage":
            continue
        path = event.get("path")
        if not isinstance(path, str):
            continue
        row = totals.setdefault(
            path, {"path": path, "seconds": 0.0, "calls": 0, "items": 0}
        )
        row["seconds"] = float(row["seconds"]) + float(event.get("seconds", 0.0))
        row["calls"] = int(row["calls"]) + 1
        row["items"] = int(row["items"]) + int(event.get("items", 0) or 0)
    rows = sorted(
        totals.values(), key=lambda row: float(row["seconds"]), reverse=True
    )
    return rows[:limit] if limit > 0 else rows


def top_from_spans(
    spans: Iterable[Dict[str, object]], limit: int = 10
) -> List[Dict[str, object]]:
    """Like :func:`top_spans`, but from span trees instead of events.

    Used when a log has no ``stage`` records for a path -- e.g. spans
    profiled inside pool workers, which reach the parent as absorbed
    trees rather than live event emissions.
    """
    totals: Dict[str, Dict[str, object]] = {}

    def walk(span: Dict[str, object], stack: str) -> None:
        name = str(span.get("name", "?"))
        path = f"{stack}/{name}" if stack else name
        row = totals.setdefault(
            path, {"path": path, "seconds": 0.0, "calls": 0, "items": 0}
        )
        row["seconds"] = float(row["seconds"]) + float(span.get("seconds", 0.0))
        row["calls"] = int(row["calls"]) + int(span.get("calls", 0))
        row["items"] = int(row["items"]) + int(span.get("items", 0))
        for child in span.get("children", ()):
            if isinstance(child, dict):
                walk(child, path)

    for span in spans:
        if isinstance(span, dict):
            walk(span, "")
    rows = sorted(
        totals.values(), key=lambda row: float(row["seconds"]), reverse=True
    )
    return rows[:limit] if limit > 0 else rows


def render_top(rows: List[Dict[str, object]]) -> str:
    lines = [f"{'wall time':>12}  {'calls':>6}  {'items':>10}  path"]
    for row in rows:
        lines.append(
            f"{_format_seconds(float(row['seconds'])):>12}  "
            f"{row['calls']:>6}  {row['items']:>10}  {row['path']}"
        )
    if len(lines) == 1:
        lines.append("(no stage events)")
    return "\n".join(lines)


def folded_stacks(spans: Iterable[Dict[str, object]]) -> List[str]:
    """Span trees as folded-stack lines for flamegraph tools.

    The value is *self* time in microseconds (total minus children), so
    the flamegraph's widths add up exactly like the span tree's wall
    times do.
    """
    lines: List[Tuple[str, int]] = []

    def walk(span: Dict[str, object], stack: str) -> None:
        name = str(span.get("name", "?")).replace(";", "_")
        path = f"{stack};{name}" if stack else name
        seconds = float(span.get("seconds", 0.0))
        children = [
            child
            for child in span.get("children", ())
            if isinstance(child, dict)
        ]
        child_seconds = sum(float(c.get("seconds", 0.0)) for c in children)
        self_us = max(0, int(round((seconds - child_seconds) * 1e6)))
        if self_us or not children:
            lines.append((path, self_us))
        for child in children:
            walk(child, path)

    for span in spans:
        if isinstance(span, dict):
            walk(span, "")
    return [f"{path} {value}" for path, value in lines]
