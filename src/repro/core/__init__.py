"""The paper's core: object-relative tuples, translation, decomposition,
and the OMC/CDC/SCC components of the Figure 4 framework."""

from repro.core.cdc import OnlineCDC, translate_trace, translate_trace_list
from repro.core.decomposition import (
    horizontal,
    project,
    recombine,
    vertical,
    vertical_by_instruction_group,
)
from repro.core.events import AccessEvent, AccessKind, AllocEvent, FreeEvent, Trace
from repro.core.framework import (
    ProfilingSession,
    collect_trace,
    profile_trace,
    profile_workload,
)
from repro.core.interval_index import BTreeMap, IntervalIndex
from repro.core.omc import GroupRecord, ObjectManager, ObjectRecord, TranslationError
from repro.core.scc import HorizontalSequiturSCC, VerticalLMADSCC
from repro.core.tuples import DIMENSIONS, WILD_GROUP, WILD_OBJECT, ObjectRelativeAccess

__all__ = [
    "AccessEvent", "AccessKind", "AllocEvent", "BTreeMap", "DIMENSIONS",
    "FreeEvent", "GroupRecord", "HorizontalSequiturSCC", "IntervalIndex",
    "ObjectManager", "ObjectRecord", "ObjectRelativeAccess", "OnlineCDC",
    "ProfilingSession", "collect_trace", "profile_trace", "profile_workload",
    "Trace", "TranslationError", "VerticalLMADSCC", "WILD_GROUP",
    "WILD_OBJECT", "horizontal", "project", "recombine", "translate_trace",
    "translate_trace_list", "vertical", "vertical_by_instruction_group",
]
