"""Process-pool fan-out for the profiling pipeline.

The paper's decompositions (Section 2.3) are also its parallelism
seams: horizontally decomposed dimension streams and vertically
decomposed ``(instruction, group)`` substreams are independent by
construction, so each can be compressed in its own worker process and
the results merged without any coordination beyond the final join.

:mod:`repro.parallel.executor` provides the pool wrapper (worker
bootstrap, chunked submission, crash/interrupt handling, serial
fallback); :mod:`repro.parallel.workers` holds the top-level worker
functions the profilers and the experiment runner fan out to.
"""

from repro.parallel.executor import (
    ParallelExecutor,
    TaskOutcome,
    WorkerCrashError,
    fork_available,
    resolve_jobs,
)

__all__ = [
    "ParallelExecutor",
    "TaskOutcome",
    "WorkerCrashError",
    "fork_available",
    "resolve_jobs",
]
