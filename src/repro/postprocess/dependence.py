"""Memory-dependence frequency (MDF) post-processor for LEAP profiles.

Section 4.2.1: from the collected LMADs, compute for every (st, ld)
instruction pair the fraction of the load's executions that read a
location some earlier execution of the store wrote:

    MDF(st, ld) = # conflicts with st / total # of executions of ld

"Because of the linear structure of LMADs, the above computation can be
sped up using some omega-test-like linear programming algorithms" -- the
intersection of each (store LMAD, load LMAD) pair is solved in closed
form by :mod:`repro.analysis.omega` over the (object, offset) equality
dimensions with the strict time-order constraint.

Conflicting load executions are counted as a union of arithmetic
progressions per load descriptor, so one load execution conflicting with
many store descriptors is counted once, exactly as the ground-truth
profiler counts it.

Because the LMADs hold a *sample* of each stream (the initial linear
runs, Section 4.1), the frequency is normalized by the load's captured
execution count rather than its exact total: a representative sample
then yields a nearly unbiased ratio even at modest capture rates --
which is how the paper reports 75% of pairs within 10% while capturing
only ~47% of accesses.  Bias enters only when the store's captured time
range fails to cover the load's (the small +/- tails of Figure 6), or
when a stream is captured not at all (the residual miss mass).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set, Tuple

from repro.analysis.omega import intersect_lmads
from repro.baselines.dependence_lossless import DependenceProfile
from repro.core.events import AccessKind
from repro.profilers.leap import LeapProfile

#: (object, offset) are the location-equality dimensions of LEAP's
#: (object, offset, time) triples; time is dimension 2.
EQUAL_DIMS = (0, 1)
TIME_DIM = 2

#: Above this many candidate conflict indices per load descriptor the
#: union is approximated by a capped sum instead of materialized.
ENUMERATION_CAP = 1 << 18


def _union_size(
    progressions: List[Tuple[int, int, int]], universe: int, cap: int
) -> int:
    """Size of the union of arithmetic progressions within [0, universe).

    Exact via materialization when small; otherwise the capped-sum upper
    bound (the inexactness then shows up as profile error, which is the
    quantity the experiments measure anyway).
    """
    if not progressions:
        return 0
    if len(progressions) == 1:
        return min(progressions[0][2], universe)
    total = sum(n for __, __, n in progressions)
    if total <= cap:
        members: Set[int] = set()
        for first, step, n in progressions:
            if step == 0:
                members.add(first)
            else:
                members.update(range(first, first + step * n, step))
        return len(members)
    return min(total, universe)


class LeapDependenceAnalyzer:
    """Compute the MDF table from a LEAP profile.

    The result reuses :class:`DependenceProfile`, so the error-
    distribution machinery compares LEAP, Connors, and the lossless
    ground truth uniformly.
    """

    def __init__(self, enumeration_cap: int = ENUMERATION_CAP) -> None:
        self.enumeration_cap = enumeration_cap

    def analyze(self, profile: LeapProfile) -> DependenceProfile:
        # Denominators are the *captured* execution counts: conflicts are
        # only visible inside the captured sample, so the sample's own
        # size is the consistent normalizer (see module docstring).
        captured: Dict[int, int] = {}
        for (instr, __), entry in profile.entries.items():
            captured[instr] = captured.get(instr, 0) + entry.captured_symbols
        result = DependenceProfile(
            load_counts={i: captured.get(i, 0) for i in profile.loads()},
            store_counts={i: captured.get(i, 0) for i in profile.stores()},
        )
        by_group = self._entries_by_group(profile)
        for group, members in by_group.items():
            stores = [
                (instr, entry)
                for instr, entry in members
                if profile.kinds[instr] is AccessKind.STORE
            ]
            loads = [
                (instr, entry)
                for instr, entry in members
                if profile.kinds[instr] is AccessKind.LOAD
            ]
            for load_id, load_entry in loads:
                for store_id, store_entry in stores:
                    conflicts = self._pair_conflicts(store_entry, load_entry)
                    if conflicts:
                        pair = (store_id, load_id)
                        result.conflicts[pair] = (
                            result.conflicts.get(pair, 0) + conflicts
                        )
        return result

    def _entries_by_group(
        self, profile: LeapProfile
    ) -> Dict[int, List[Tuple[int, object]]]:
        by_group: Dict[int, List[Tuple[int, object]]] = {}
        for (instr, group), entry in profile.entries.items():
            by_group.setdefault(group, []).append((instr, entry))
        return by_group

    def _pair_conflicts(self, store_entry, load_entry) -> int:
        """Conflicting load executions between two profile entries."""
        total = 0
        for load_lmad in load_entry.lmads:
            progressions: List[Tuple[int, int, int]] = []
            for store_lmad in store_entry.lmads:
                solution = intersect_lmads(
                    store_lmad, load_lmad, EQUAL_DIMS, time_dim=TIME_DIM
                )
                if not solution.is_empty:
                    progressions.append(solution.k2_progression())
            total += _union_size(
                progressions, load_lmad.count, self.enumeration_cap
            )
        return total


def analyze_dependences(
    profile: LeapProfile, enumeration_cap: int = ENUMERATION_CAP
) -> DependenceProfile:
    """Convenience wrapper: MDF table for a LEAP profile."""
    return LeapDependenceAnalyzer(enumeration_cap).analyze(profile)


def format_pairs(
    table: DependenceProfile, instruction_names: Dict[int, str], limit: int = 20
) -> Iterable[str]:
    """Human-readable ``(st, ld, frequency)`` rows like the paper's
    ``(st2, ld1, 10%)`` example, most frequent first."""
    pairs = sorted(
        table.dependent_pairs().items(), key=lambda kv: kv[1], reverse=True
    )
    for (store_id, load_id), frequency in pairs[:limit]:
        store = instruction_names.get(store_id, f"st{store_id}")
        load = instruction_names.get(load_id, f"ld{load_id}")
        yield f"({store}, {load}, {frequency:.1%})"
