"""The PROFSTORE serving daemon: a concurrent JSON API over one store.

Stdlib-only (``http.server.ThreadingHTTPServer``), because the repo has
no dependencies and the workload -- a profile registry queried by build
bots and developers -- fits comfortably in threaded Python: requests
are I/O plus cached decodes, and the decoded-profile LRU keeps the hot
runs resident.

Endpoints (all JSON unless noted)::

    GET  /healthz                     liveness + store snapshot
    GET  /metricsz                    telemetry counters/gauges + cache stats
                                      (+ p50/p95/p99 per endpoint;
                                      ``?format=prom`` for scrape text)
    GET  /tracez                      traces seen by the access log
                                      (``?trace=ID`` for one trace's
                                      records + stored documents)
    POST /ingest?workload=NAME        body = profile document (JSON or
                                      BINCAP binary); 400 on corrupt,
                                      413 over the body cap
    POST /ingest/stream?workload=NAME body = BINCAP document stream;
                                      each document lands as its CRC
                                      verifies, torn tails degrade
    GET  /get?run=SELECTOR            the stored document (either
                                      encoding, served as JSON)
    GET  /query/runs?workload=&kind=  manifest rows
    GET  /query/entries?...           per-(instruction, group) LEAP rows
    GET  /query/shapes?run=SELECTOR   LMAD stride fingerprint of one run
    GET  /diff?a=SEL&b=SEL            structural diff + regression verdicts
    POST /gc                          drop unreferenced blobs
    GET  /blob?digest=D|run=SEL       the exact ingested bytes
                                      (octet-stream; ``X-Repro-Digest``
                                      / ``-Workload`` / ``-Kind``
                                      headers carry the provenance)
    POST /repair?digest=D&workload=W  body = blob bytes; force-rewrites
                                      a corrupted or missing replica
                                      after digest + decode validation
                                      (SCALE-OUT read-repair)

Run selectors are what :meth:`repro.store.store.ProfileStore.resolve`
accepts (run ids, digest prefixes, ``workload@kind[~N]``).

Concurrency is bounded: a semaphore of ``max_concurrent`` gates the
request bodies, so a stampede queues in the accept backlog instead of
oversubscribing the process.  Every endpoint is telemetry-threaded --
per-endpoint request/error counters, a latency histogram, and a span
per endpoint accumulated under ``serve/`` -- guarded by one lock
because the registry itself is single-threaded by design.

TRACELINK: every request lands one ``request`` record in the daemon's
event log (the access log), and a request carrying an ``X-Repro-Trace``
header runs under a *child* of the sender's context -- its records are
tagged with the sender's trace id, and the child context is echoed back
in the response's own ``X-Repro-Trace`` header so clients can confirm
the linkage.  Per-endpoint latency is summarized by
:class:`~repro.obs.quantiles.QuantileDigest` (p50/p95/p99 under
``/metricsz``).
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from repro.core.binformat import StreamReader
from repro.core.profile_io import ProfileFormatError
from repro.obs.context import TRACE_HEADER, TraceContext, activate
from repro.obs.events import EventLog
from repro.obs.quantiles import QuantileDigest
from repro.store.diff import detect_regressions, diff_blobs
from repro.store.httpbody import RequestError, iter_body, read_body
from repro.store.query import QueryEngine
from repro.store.store import ProfileStore
from repro.telemetry import Telemetry, coalesce
from repro.telemetry.export import render_prometheus

#: default cap on concurrently served request bodies
DEFAULT_MAX_CONCURRENT = 8

#: default cap on one request body / streamed document (64 MiB); a
#: profile document larger than this is a client bug, not a workload
DEFAULT_MAX_BODY_BYTES = 64 << 20

#: request-latency histogram buckets (seconds)
LATENCY_BUCKETS = tuple(0.0001 * (4 ** p) for p in range(8))


class RawBody:
    """A non-JSON response payload: raw bytes plus extra headers."""

    __slots__ = ("data", "headers")

    def __init__(self, data: bytes, headers: Optional[Dict[str, str]] = None):
        self.data = data
        self.headers = dict(headers or {})


class _Metrics:
    """Thread-safe telemetry facade for the handler threads."""

    def __init__(self, telemetry: Telemetry) -> None:
        self.telemetry = telemetry
        self.lock = threading.Lock()

    def record(self, endpoint: str, status: int, seconds: float) -> None:
        if not self.telemetry.enabled:
            return
        with self.lock:
            self.telemetry.counter(
                "store.http.requests_total", "requests served"
            ).inc()
            self.telemetry.counter(
                f"store.http.{endpoint}_total", f"requests to {endpoint}"
            ).inc()
            if status >= 400:
                self.telemetry.counter(
                    "store.http.errors_total", "requests answered >= 400"
                ).inc()
            self.telemetry.histogram(
                "store.http.latency_seconds",
                "request wall time",
                bounds=LATENCY_BUCKETS,
            ).observe(seconds)
            # Span accumulation without the (thread-hostile) context
            # stack: one child per endpoint under serve/.
            span = self.telemetry.root.child("serve").child(endpoint)
            span.calls += 1
            span.seconds += seconds
            span.add_items(1, "requests")


class StoreServer:
    """The daemon: owns the HTTP server, the store, and the telemetry."""

    def __init__(
        self,
        store: ProfileStore,
        host: str = "127.0.0.1",
        port: int = 0,
        telemetry: Optional[Telemetry] = None,
        max_concurrent: int = DEFAULT_MAX_CONCURRENT,
        trace_out: Optional[str] = None,
        events: Optional[EventLog] = None,
        max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
    ) -> None:
        self.store = store
        self.query = QueryEngine(store)
        self.telemetry = coalesce(telemetry)
        self.metrics = _Metrics(self.telemetry)
        #: the access log: one ``request`` record per served request,
        #: mirrored to ``trace_out`` (JSONL) when given
        self.events = events if events is not None else EventLog(path=trace_out)
        #: per-endpoint latency digests ("*" aggregates all endpoints);
        #: guarded by the metrics lock like the registry
        self.latency: Dict[str, QuantileDigest] = {}
        self.started = time.time()
        self._gate = threading.BoundedSemaphore(max(1, max_concurrent))
        self.max_concurrent = max(1, max_concurrent)
        self.max_body_bytes = max_body_bytes

        server = self

        class Handler(BaseHTTPRequestHandler):
            # keep-alive: every response carries Content-Length, so
            # HTTP/1.1 is safe and the cluster router can reuse one
            # connection per shard instead of reconnecting per request
            protocol_version = "HTTP/1.1"

            # Nagle off: response bodies follow headers in a second
            # send() and would otherwise stall on the peer's delayed ACK
            disable_nagle_algorithm = True

            # quiet by default: the daemon's own telemetry replaces the
            # per-request stderr log lines
            def log_message(self, format, *args):  # noqa: A002
                pass

            def do_GET(self):  # noqa: N802
                server.handle(self, "GET")

            def do_POST(self):  # noqa: N802
                server.handle(self, "POST")

        self.httpd = ThreadingHTTPServer((host, port), Handler)
        self.httpd.daemon_threads = True
        # guards the serving-thread handle: start() may race stop() (or
        # a second start()) when embedding code drives the lifecycle
        # from more than one thread
        self._lifecycle_lock = threading.Lock()
        self._thread: Optional[threading.Thread] = None
        # in-flight request accounting for graceful shutdown: drain()
        # waits on the condition until handler threads finish
        self._inflight_lock = threading.Lock()
        self._inflight_cond = threading.Condition(self._inflight_lock)
        self._inflight = 0

    # -- lifecycle -----------------------------------------------------

    @property
    def address(self) -> Tuple[str, int]:
        return self.httpd.server_address[0], self.httpd.server_address[1]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "StoreServer":
        """Serve in a background thread (tests, embedded use).

        Starting an already-started server raises rather than leaking
        the first serving thread's handle.
        """
        with self._lifecycle_lock:
            if self._thread is not None:
                raise RuntimeError("server is already started")
            thread = threading.Thread(
                target=self.httpd.serve_forever, daemon=True
            )
            self._thread = thread
        thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread (the CLI's foreground mode)."""
        self.httpd.serve_forever()

    def stop(self) -> None:
        """Idempotent: a second stop() finds no thread and still closes
        cleanly."""
        self.httpd.shutdown()
        with self._lifecycle_lock:
            thread, self._thread = self._thread, None
        if thread is not None:
            thread.join()
        self.httpd.server_close()
        self.events.flush()

    def drain(self, deadline_seconds: float = 5.0) -> bool:
        """Wait (bounded) for in-flight requests, then log the shutdown.

        The graceful-shutdown half of SIGTERM handling: the caller has
        already stopped accepting (the serve loop exited), and drain()
        waits until every handler thread finishes or the deadline
        passes.  Either way one schema-checked ``server_shutdown``
        event lands in the log -- the shard supervisor's restart path
        keys off it -- and the sink is flushed.  Returns True when the
        server drained fully.
        """
        deadline = time.monotonic() + max(0.0, deadline_seconds)
        with self._inflight_cond:
            while self._inflight > 0:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._inflight_cond.wait(remaining)
            leftover = self._inflight
        self.events.emit(
            "server_shutdown",
            drained=leftover == 0,
            in_flight=leftover,
            deadline_seconds=deadline_seconds,
        )
        self.events.flush()
        return leftover == 0

    # -- dispatch ------------------------------------------------------

    def handle(self, request: BaseHTTPRequestHandler, method: str) -> None:
        with self._inflight_lock:
            self._inflight += 1
        try:
            self._handle(request, method)
        finally:
            with self._inflight_cond:
                self._inflight -= 1
                self._inflight_cond.notify_all()

    def _handle(self, request: BaseHTTPRequestHandler, method: str) -> None:
        parsed = urlparse(request.path)
        endpoint = parsed.path.strip("/").replace("/", "_") or "root"
        params = {
            key: values[-1] for key, values in parse_qs(parsed.query).items()
        }
        inbound = TraceContext.from_header(request.headers.get(TRACE_HEADER))
        context = inbound.child() if inbound is not None else None
        start = time.perf_counter()
        gate_wait = 0.0
        with self._gate:
            gate_wait = time.perf_counter() - start
            try:
                if context is not None:
                    with activate(context):
                        status, payload = self.route(
                            request, method, parsed.path, params
                        )
                else:
                    status, payload = self.route(
                        request, method, parsed.path, params
                    )
            except RequestError as exc:
                status, payload = exc.status, {"error": str(exc)}
            except (KeyError, ProfileFormatError, ValueError) as exc:
                kind = 404 if isinstance(exc, KeyError) else 400
                status, payload = kind, {"error": str(exc).strip("'\"")}
            except Exception as exc:  # noqa: BLE001 - the daemon survives
                status, payload = 500, {
                    "error": f"{type(exc).__name__}: {exc}"
                }
        elapsed = time.perf_counter() - start
        self.metrics.record(endpoint, status, elapsed)
        self._observe(endpoint, elapsed, gate_wait)
        self.events.emit(
            "request",
            trace=context.trace_id if context is not None else None,
            span=context.span_id if context is not None else None,
            endpoint=endpoint,
            method=method,
            status=status,
            seconds=elapsed,
        )
        extra_headers: Dict[str, str] = {}
        if isinstance(payload, RawBody):
            content_type = "application/octet-stream"
            body = payload.data
            extra_headers = payload.headers
        elif isinstance(payload, str):
            content_type = "text/plain; charset=utf-8"
            body = payload.encode("utf-8")
        else:
            content_type = "application/json"
            body = json.dumps(payload, sort_keys=True).encode("utf-8") + b"\n"
        try:
            request.send_response(status)
            request.send_header("Content-Type", content_type)
            request.send_header("Content-Length", str(len(body)))
            # a failed POST may not have consumed its body; keeping the
            # connection alive would desync the next request's framing
            # (send_header('Connection', 'close') also flags
            # close_connection for the serving loop)
            if method == "POST" and status >= 400:
                request.send_header("Connection", "close")
            for name, value in extra_headers.items():
                request.send_header(name, value)
            if context is not None:
                request.send_header(TRACE_HEADER, context.to_header())
            request.end_headers()
            request.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away; nothing to clean up

    def _observe(self, endpoint: str, elapsed: float, gate_wait: float) -> None:
        """Fold one request into the latency digests and wait gauges."""
        with self.metrics.lock:
            for key in (endpoint, "*"):
                digest = self.latency.get(key)
                if digest is None:
                    digest = self.latency[key] = QuantileDigest()
                digest.observe(elapsed)
            if self.telemetry.enabled:
                self.telemetry.gauge(
                    "store.http.gate_wait_seconds_max",
                    "longest wait on the concurrency semaphore",
                ).set_max(gate_wait)
                self.telemetry.gauge(
                    "store.http.gate_wait_seconds_last",
                    "latest wait on the concurrency semaphore",
                ).set(gate_wait)

    def route(
        self,
        request: BaseHTTPRequestHandler,
        method: str,
        path: str,
        params: Dict[str, str],
    ) -> Tuple[int, object]:
        if path == "/healthz" and method == "GET":
            snapshot = self.store.stats()
            host, port = self.address
            snapshot.update(
                status="ok",
                host=host,
                port=port,
                uptime_seconds=time.time() - self.started,
                max_concurrent=self.max_concurrent,
            )
            return 200, snapshot
        if path == "/metricsz" and method == "GET":
            if params.get("format") == "prom":
                return 200, self._metricsz_prom()
            return 200, self._metricsz(include_digests="digests" in params)
        if path == "/tracez" and method == "GET":
            return 200, self._tracez(params.get("trace"))
        if path == "/ingest/stream" and method == "POST":
            return self._ingest_stream(request, params)
        if path == "/ingest" and method == "POST":
            return self._ingest(request, params)
        if path == "/get" and method == "GET":
            # get_document decodes either encoding to the JSON document
            # shape, so binary-encoded runs are served like JSON ones.
            return 200, self.store.get_document(self._required(params, "run"))
        if path == "/query/runs" and method == "GET":
            return 200, {
                "runs": self.query.find_runs(
                    workload=params.get("workload"), kind=params.get("kind")
                )
            }
        if path == "/query/entries" and method == "GET":
            return 200, {
                "entries": self.query.find_entries(
                    workload=params.get("workload"),
                    instruction=self._int(params, "instruction"),
                    group=self._int(params, "group"),
                    stride=self._stride(params),
                    min_count=self._int(params, "min_count") or 0,
                    run=params.get("run"),
                )
            }
        if path == "/query/shapes" and method == "GET":
            return 200, {
                "shapes": self.query.lmad_shapes(self._required(params, "run"))
            }
        if path == "/diff" and method == "GET":
            return 200, self._diff(params)
        if path == "/blob" and method == "GET":
            return 200, self._blob(params)
        if path == "/repair" and method == "POST":
            return 200, self._repair(request, params)
        if path == "/gc" and method == "POST":
            stats = self.store.gc()
            return 200, {
                "scanned": stats.scanned,
                "removed": stats.removed,
                "freed_bytes": stats.freed_bytes,
            }
        return 404, {"error": f"no such endpoint: {method} {path}"}

    # -- endpoint bodies -----------------------------------------------

    def _metricsz(self, include_digests: bool = False) -> Dict[str, object]:
        counters: Dict[str, object] = {}
        gauges: Dict[str, object] = {}
        with self.metrics.lock:
            for metric in self.telemetry.registry:
                kind = getattr(metric, "kind", None)
                if kind == "counter":
                    counters[metric.name] = metric.value
                elif kind == "gauge":
                    gauges[metric.name] = metric.value
            latency = self.telemetry.registry.get("store.http.latency_seconds")
            latency_summary = None
            if latency is not None and getattr(latency, "count", 0):
                latency_summary = {
                    "count": latency.count,
                    "mean_seconds": latency.mean,
                    "max_seconds": latency.maximum,
                }
        with self.metrics.lock:
            endpoints = {
                key: digest.summary()
                for key, digest in self.latency.items()
                if digest.count
            }
            digests = (
                {
                    key: digest.to_plain()
                    for key, digest in self.latency.items()
                    if digest.count
                }
                if include_digests
                else None
            )
        hits, misses, evictions = self.store.cache.stats()
        out: Dict[str, object] = {
            "counters": counters,
            "gauges": gauges,
            "latency": latency_summary,
            "endpoints": endpoints,
            "cache": {
                "hits": hits,
                "misses": misses,
                "evictions": evictions,
                "hit_rate": self.store.cache.hit_rate,
            },
        }
        if digests is not None:
            # the mergeable wire form: the cluster router folds these
            # into its cluster-level /metricsz with QuantileDigest.merge
            out["latency_digests"] = digests
        return out

    def _metricsz_prom(self) -> str:
        """The scrape view: the telemetry registry in Prometheus text
        format plus the store-level gauges a scraper wants alongside it
        (cache effectiveness, semaphore pressure, latency quantiles)."""
        hits, misses, evictions = self.store.cache.stats()
        with self.metrics.lock:
            if self.telemetry.enabled:
                # Surface cache state as gauges so the exporter carries
                # them; they are cheap to refresh per scrape.
                self.telemetry.gauge(
                    "store.cache.hits", "decoded-profile cache hits"
                ).set(hits)
                self.telemetry.gauge(
                    "store.cache.misses", "decoded-profile cache misses"
                ).set(misses)
                self.telemetry.gauge(
                    "store.cache.evictions", "decoded-profile cache evictions"
                ).set(evictions)
            text = render_prometheus(self.telemetry)
            lines = [text.rstrip("\n")] if text.strip() else []
            lines.append(
                "# TYPE repro_store_http_latency_quantile_seconds gauge"
            )
            for key, digest in sorted(self.latency.items()):
                if not digest.count:
                    continue
                endpoint = "all" if key == "*" else key
                for quantile in (0.5, 0.95, 0.99):
                    lines.append(
                        "repro_store_http_latency_quantile_seconds"
                        f'{{endpoint="{endpoint}",quantile="{quantile}"}} '
                        f"{digest.quantile(quantile):.9g}"
                    )
        return "\n".join(lines) + "\n"

    def _tracez(self, trace_id: Optional[str]) -> Dict[str, object]:
        """Traces the daemon has seen: the access-log view.

        Without ``trace``: one summary row per distinct trace id in the
        event ring.  With ``trace``: that trace's records plus any
        stored trace *documents* carrying the id (ingested via
        ``/ingest``), so a client can recover the full span tree from
        the daemon alone.
        """
        if trace_id is None:
            traces = []
            for tid in self.events.trace_ids():
                records = self.events.records_for_trace(tid)
                traces.append(
                    {
                        "trace_id": tid,
                        "records": len(records),
                        "kinds": sorted({str(r.get("kind")) for r in records}),
                        "first_ts": records[0].get("ts"),
                        "last_ts": records[-1].get("ts"),
                    }
                )
            return {"traces": traces}
        records = self.events.records_for_trace(trace_id)
        documents = []
        for row in self.query.find_runs(kind="trace"):
            run_id = str(row.get("run_id"))
            try:
                document = json.loads(self.store.get_text(run_id))
            except (KeyError, ValueError):
                continue
            if document.get("trace_id") == trace_id:
                documents.append({"run_id": run_id, "document": document})
        if not records and not documents:
            raise KeyError(f"no such trace: {trace_id}")
        return {
            "trace_id": trace_id,
            "records": records,
            "documents": documents,
        }

    # -- request bodies ------------------------------------------------

    def _body_chunks(self, request: BaseHTTPRequestHandler):
        """The request body as chunks (framing decoded in
        :mod:`repro.store.httpbody`, shared with the cluster router)."""
        return iter_body(request, self.max_body_bytes)

    def _read_body(self, request: BaseHTTPRequestHandler) -> bytes:
        return read_body(request, self.max_body_bytes)

    # -- ingest --------------------------------------------------------

    def _ingest(
        self, request: BaseHTTPRequestHandler, params: Dict[str, str]
    ) -> Tuple[int, object]:
        workload = self._required(params, "workload")
        data = self._read_body(request)
        if not data:
            raise RequestError(400, "ingest requires a profile document body")
        meta = {"source": "http"}
        record = self.store.ingest_bytes(data, workload, meta=meta)
        self._count_ingest(len(data))
        return 201, {
            "run_id": record.run_id,
            "digest": record.digest,
            "kind": record.kind,
            "size_bytes": record.size_bytes,
        }

    def _count_ingest(self, size: int) -> None:
        if not self.telemetry.enabled:
            return
        with self.metrics.lock:
            self.telemetry.counter(
                "store.ingested_total", "profiles ingested"
            ).inc()
            self.telemetry.counter(
                "store.ingested_bytes_total", "profile bytes ingested"
            ).inc(size)

    def _ingest_stream(
        self, request: BaseHTTPRequestHandler, params: Dict[str, str]
    ) -> Tuple[int, object]:
        """Ingest a BINCAP document stream while it is still arriving.

        Each document is validated and stored the moment its DOC_END
        verifies, so a long capture session lands runs incrementally
        rather than after one giant upload.  A producer dying
        mid-stream degrades instead of failing: documents already
        verified stay ingested, the torn tail is counted, and the
        response (and the ``stream_ingest`` event) carries
        ``capture_completeness`` -- the store never holds a torn blob
        because only CRC-verified documents reach ``ingest_bytes``.
        """
        default_workload = params.get("workload")
        reader = StreamReader(max_document_bytes=self.max_body_bytes)
        ingested = []
        rejected = []
        error: Optional[str] = None

        def consume(events) -> None:
            for event in events:
                if event[0] == "doc":
                    __, workload, meta, blob = event
                    meta = dict(meta)
                    meta["source"] = "http-stream"
                    try:
                        record = self.store.ingest_bytes(
                            blob, workload or default_workload or "unknown",
                            meta=meta,
                        )
                    except ProfileFormatError as exc:
                        rejected.append(
                            {"workload": workload, "error": str(exc)}
                        )
                        continue
                    self._count_ingest(len(blob))
                    ingested.append(
                        {
                            "run_id": record.run_id,
                            "digest": record.digest,
                            "kind": record.kind,
                            "size_bytes": record.size_bytes,
                        }
                    )
                elif event[0] == "torn":
                    rejected.append(
                        {"workload": event[1], "error": event[2]}
                    )

        try:
            for piece in self._body_chunks(request):
                consume(reader.feed(piece))
        except RequestError as exc:
            # Framing died mid-stream (truncated chunk, connection
            # cut): keep what verified, report the wreck as degraded.
            error = str(exc)
        except (ValueError, OSError) as exc:
            error = str(exc) or type(exc).__name__
        summary = reader.summary()
        degraded = bool(error) or not summary["complete"] or bool(rejected)
        self.events.emit(
            "stream_ingest",
            workload=default_workload,
            documents=summary["documents"],
            torn=summary["torn"],
            ingested=len(ingested),
            rejected=len(rejected),
            complete=summary["complete"],
            capture_completeness=summary["capture_completeness"],
            error=error,
        )
        if not ingested and degraded:
            raise RequestError(
                400, error or "stream carried no ingestible documents"
            )
        payload = {
            "ingested": ingested,
            "rejected": rejected,
            "documents": summary["documents"],
            "complete": summary["complete"] and not rejected,
            "capture_completeness": summary["capture_completeness"],
        }
        if error:
            payload["error"] = error
        return (201 if not degraded else 200), payload

    def _blob(self, params: Dict[str, str]) -> RawBody:
        """The exact ingested bytes of one run, with provenance headers.

        The cluster router's replication primitive: it fetches raw
        bytes here (re-hashed by the blob layer on the way out, so a
        corrupted replica answers 400 instead of serving wrong bytes),
        verifies the digest itself, and pushes repairs back through
        ``/repair``.
        """
        selector = params.get("digest") or params.get("run")
        if not selector:
            raise RequestError(400, "blob requires 'digest' or 'run'")
        record = self.store.resolve(selector)
        data = self.store.get_bytes(record.run_id)
        return RawBody(
            data,
            {
                "X-Repro-Digest": record.digest,
                "X-Repro-Workload": record.workload,
                "X-Repro-Kind": record.kind,
            },
        )

    def _repair(
        self, request: BaseHTTPRequestHandler, params: Dict[str, str]
    ) -> Dict[str, object]:
        """Force-install one validated blob (the read-repair sink).

        Unlike ``/ingest``, the payload must hash to the digest the
        caller names, and an existing (possibly corrupt) blob file is
        *replaced* -- the idempotent ingest path would skip it.  A
        manifest run is created only when no run references the digest
        yet (a replica that lost the run entirely).
        """
        digest = self._required(params, "digest")
        workload = params.get("workload") or "unknown"
        data = self._read_body(request)
        if not data:
            raise RequestError(400, "repair requires the blob bytes as body")
        result = self.store.repair_blob(digest, data, workload=workload)
        self._count_ingest(len(data))
        out: Dict[str, object] = {"digest": digest}
        out.update(result)
        return out

    def _diff(self, params: Dict[str, str]) -> Dict[str, object]:
        selector_a = self._required(params, "a")
        selector_b = self._required(params, "b")
        record_a = self.store.resolve(selector_a)
        record_b = self.store.resolve(selector_b)
        diff = diff_blobs(
            self.store.get_bytes(record_a.run_id),
            self.store.get_bytes(record_b.run_id),
            label_a=record_a.run_id,
            label_b=record_b.run_id,
        )
        regressions = detect_regressions(diff)
        payload = diff.to_json()
        payload["regressions"] = [r.to_json() for r in regressions]
        return payload

    # -- parameter helpers ---------------------------------------------

    @staticmethod
    def _required(params: Dict[str, str], name: str) -> str:
        value = params.get(name)
        if not value:
            raise ValueError(f"missing required parameter {name!r}")
        return value

    @staticmethod
    def _int(params: Dict[str, str], name: str) -> Optional[int]:
        value = params.get(name)
        if value is None:
            return None
        try:
            return int(value)
        except ValueError:
            raise ValueError(f"parameter {name!r} must be an integer") from None

    @staticmethod
    def _stride(params: Dict[str, str]) -> Optional[Tuple[int, ...]]:
        value = params.get("stride")
        if value is None:
            return None
        try:
            return tuple(int(part) for part in value.split(",") if part != "")
        except ValueError:
            raise ValueError(
                "parameter 'stride' must be comma-separated integers"
            ) from None
