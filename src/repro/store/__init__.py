"""PROFSTORE: the profile store, query/diff engine, and serving daemon.

The paper's payoff is that object-relative profiles are *compact,
comparable artifacts* -- small enough to keep every run, regular
enough to diff run against run.  This package is the layer that makes
the artifacts durable and queryable:

* :mod:`repro.store.blobs` / :mod:`repro.store.store` -- a
  content-addressed repository: profiles as sha256-keyed,
  zlib-compressed blobs behind an atomic append-only manifest of run
  metadata, with ``git gc``-style collection of unreferenced blobs.
  Retrieval is bit-identical to ingest by construction.
* :mod:`repro.store.query` -- indexed lookups by workload, profiler
  kind, instruction, group, and LMAD stride shape.
* :mod:`repro.store.diff` -- the structural differ (per-key LMAD
  drift, grammar-size deltas, dependence-frequency changes) and the
  regression detector behind ``repro-profile diff``'s exit code.
* :mod:`repro.store.server` / :mod:`repro.store.serve_cli` -- the
  ``repro-serve`` daemon: a stdlib ``ThreadingHTTPServer`` JSON API
  (ingest / get / query / diff / healthz / metricsz) with a decoded-
  profile LRU cache, bounded request concurrency, and per-endpoint
  telemetry.
"""

from repro.store.blobs import BlobStore, sha256_hex
from repro.store.cache import LRUCache
from repro.store.diff import (
    EntryDelta,
    ProfileDiff,
    Regression,
    detect_regressions,
    diff_texts,
    render_diff,
)
from repro.store.query import QueryEngine
from repro.store.store import GCStats, ProfileStore, RunRecord

__all__ = [
    "BlobStore",
    "EntryDelta",
    "GCStats",
    "LRUCache",
    "ProfileDiff",
    "ProfileStore",
    "QueryEngine",
    "Regression",
    "RunRecord",
    "detect_regressions",
    "diff_texts",
    "render_diff",
    "sha256_hex",
]
