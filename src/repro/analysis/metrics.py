"""Evaluation metrics for the paper's figures and tables.

* :class:`ErrorDistribution` -- the histogram of Figures 6-8: for every
  dependent (st, ld) pair, the signed difference between a profiler's
  estimated MDF and the ground-truth MDF, bucketed at 10% granularity
  from -100% to +100%.
* :func:`compression_improvement` -- Figure 5's percent compression of
  the OMSG over the RASG.
* :func:`stride_score` lives in :mod:`repro.postprocess.strides`.
* Table 1's size/quality numbers are methods on
  :class:`~repro.profilers.leap.LeapProfile`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.baselines.dependence_lossless import DependenceProfile

#: Bucket width of the error histograms (the paper's 10%).
BUCKET_WIDTH = 0.10

#: Bucket centers: -100%, -90%, ..., 0%, ..., +90%, +100%.
BUCKET_CENTERS: Tuple[float, ...] = tuple(
    round(-1.0 + 0.1 * i, 1) for i in range(21)
)


@dataclass
class ErrorDistribution:
    """Histogram of per-pair MDF estimation errors.

    ``counts[i]`` holds the number of pairs whose error falls in the
    bucket centred at ``BUCKET_CENTERS[i]``; an error of exactly 0 lands
    in the centre bucket ("completely correct" in the paper's words).
    """

    counts: List[int] = field(default_factory=lambda: [0] * len(BUCKET_CENTERS))
    total_pairs: int = 0

    def add(self, error: float) -> None:
        error = max(-1.0, min(1.0, error))
        index = int(round((error + 1.0) / BUCKET_WIDTH))
        index = max(0, min(len(self.counts) - 1, index))
        self.counts[index] += 1
        self.total_pairs += 1

    def fractions(self) -> List[float]:
        """Bucket fractions (sum to 1.0 when any pairs exist)."""
        if not self.total_pairs:
            return [0.0] * len(self.counts)
        return [count / self.total_pairs for count in self.counts]

    def within(self, tolerance: float = 0.10) -> float:
        """Fraction of pairs with |error| <= tolerance -- the paper's
        "completely correct or off by no more than 10%" number."""
        if not self.total_pairs:
            return 1.0
        covered = sum(
            count
            for center, count in zip(BUCKET_CENTERS, self.counts)
            if abs(center) <= tolerance + 1e-9
        )
        return covered / self.total_pairs

    def exactly_correct(self) -> float:
        """Fraction of pairs in the centre (zero-error) bucket."""
        if not self.total_pairs:
            return 1.0
        return self.counts[len(self.counts) // 2] / self.total_pairs

    @classmethod
    def average(
        cls, distributions: Sequence["ErrorDistribution"]
    ) -> "ErrorDistribution":
        """Benchmark-averaged distribution (Figure 8): the mean of the
        per-benchmark bucket *fractions*, so each benchmark contributes
        equally regardless of its pair count."""
        merged = cls()
        contributing = [d for d in distributions if d.total_pairs]
        if not contributing:
            return merged
        scale = 10_000  # fixed-point so counts stay integers
        for index in range(len(BUCKET_CENTERS)):
            merged.counts[index] = round(
                sum(d.fractions()[index] for d in contributing)
                / len(contributing)
                * scale
            )
        merged.total_pairs = sum(merged.counts)
        return merged


def error_distribution(
    estimated: DependenceProfile, truth: DependenceProfile
) -> ErrorDistribution:
    """Build the Figures 6/7 histogram for one benchmark.

    The pair universe is every pair dependent in the ground truth or
    claimed dependent by the estimator, so both misses (error -f) and
    phantom dependences (error +f) are charged.
    """
    distribution = ErrorDistribution()
    true_pairs = truth.dependent_pairs()
    estimated_pairs = estimated.dependent_pairs()
    for pair in set(true_pairs) | set(estimated_pairs):
        distribution.add(estimated_pairs.get(pair, 0.0) - true_pairs.get(pair, 0.0))
    return distribution


def compression_improvement(omsg_bytes: int, rasg_bytes: int) -> float:
    """Figure 5's metric: percent compression of OMSG over RASG, with
    RASG as the base.  Positive means the OMSG is smaller."""
    if rasg_bytes <= 0:
        raise ValueError("RASG size must be positive")
    return 1.0 - omsg_bytes / rasg_bytes


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean (used for compression-ratio averaging)."""
    if not values:
        raise ValueError("need at least one value")
    product = 1.0
    for value in values:
        if value <= 0:
            raise ValueError("geometric mean requires positive values")
        product *= value
    return product ** (1.0 / len(values))


def summarize_distribution(distribution: ErrorDistribution) -> Dict[str, float]:
    """Key scalar summaries used in experiment reports."""
    return {
        "pairs": float(distribution.total_pairs),
        "exact": distribution.exactly_correct(),
        "within_10pct": distribution.within(0.10),
    }
