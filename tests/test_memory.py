"""Tests for the simulated address space."""

import pytest

from repro.runtime.memory import (
    PAGE_SIZE,
    AddressSpace,
    MemoryError_,
    Segment,
    SegmentKind,
    align_up,
)


class TestAlignUp:
    def test_rounds_up(self):
        assert align_up(13, 8) == 16

    def test_exact_multiple_unchanged(self):
        assert align_up(16, 8) == 16

    def test_zero(self):
        assert align_up(0, 8) == 0

    def test_alignment_one(self):
        assert align_up(7, 1) == 7

    def test_rejects_nonpositive_alignment(self):
        with pytest.raises(ValueError):
            align_up(8, 0)
        with pytest.raises(ValueError):
            align_up(8, -4)


class TestSegment:
    def test_limit(self):
        segment = Segment(SegmentKind.HEAP, 0x1000, 0x100)
        assert segment.limit == 0x1100

    def test_contains_boundaries(self):
        segment = Segment(SegmentKind.HEAP, 0x1000, 0x100)
        assert segment.contains(0x1000)
        assert segment.contains(0x10FF)
        assert not segment.contains(0x1100)
        assert not segment.contains(0xFFF)

    def test_contains_with_length(self):
        segment = Segment(SegmentKind.HEAP, 0x1000, 0x100)
        assert segment.contains(0x10F8, 8)
        assert not segment.contains(0x10F9, 8)

    def test_rejects_empty(self):
        with pytest.raises(MemoryError_):
            Segment(SegmentKind.HEAP, 0x1000, 0)

    def test_rejects_negative_base(self):
        with pytest.raises(MemoryError_):
            Segment(SegmentKind.HEAP, -1, 16)


class TestAddressSpace:
    def test_segments_do_not_overlap(self):
        space = AddressSpace()
        ordered = sorted(space.segments, key=lambda s: s.base)
        for left, right in zip(ordered, ordered[1:]):
            assert left.limit <= right.base

    def test_layout_order(self):
        space = AddressSpace()
        assert space.code.base < space.static.base
        assert space.static.base < space.heap.base
        assert space.heap.base < space.stack.base

    def test_page_zero_unmapped(self):
        space = AddressSpace()
        assert space.segment_of(0) is None
        assert space.code.base >= PAGE_SIZE

    def test_segment_of(self):
        space = AddressSpace()
        assert space.segment_of(space.heap.base).kind is SegmentKind.HEAP
        assert space.segment_of(space.static.base).kind is SegmentKind.STATIC

    def test_segment_of_unmapped(self):
        space = AddressSpace()
        assert space.segment_of(space.stack.limit + PAGE_SIZE) is None

    def test_check_access_rejects_code(self):
        space = AddressSpace()
        with pytest.raises(MemoryError_):
            space.check_access(space.code.base)

    def test_check_access_rejects_unmapped(self):
        space = AddressSpace()
        with pytest.raises(MemoryError_):
            space.check_access(0)

    def test_check_access_rejects_straddle(self):
        space = AddressSpace()
        with pytest.raises(MemoryError_):
            space.check_access(space.heap.limit - 4, 8)

    def test_check_access_ok(self):
        space = AddressSpace()
        segment = space.check_access(space.heap.base, 8)
        assert segment.kind is SegmentKind.HEAP

    def test_os_offset_shifts_everything(self):
        base = AddressSpace()
        shifted = AddressSpace(os_offset=1 << 20)
        assert shifted.heap.base == base.heap.base + (1 << 20)
        assert shifted.static.base == base.static.base + (1 << 20)

    def test_os_offset_must_be_page_aligned(self):
        with pytest.raises(MemoryError_):
            AddressSpace(os_offset=100)

    def test_code_size_shifts_static_data(self):
        small = AddressSpace(code_size=1 << 20)
        large = AddressSpace(code_size=(1 << 20) + PAGE_SIZE)
        assert large.static.base > small.static.base
