# repro: fixture
"""Seeded durability defects: every RL13x checker must fire here.

Each function truncates or renames a durable artifact without the
atomic-write discipline; a crash mid-call loses both the old and the
new contents.
"""

import os


def save_profile(path, payload):
    with open(path, "w", encoding="utf-8") as handle:  # repro: expect(RL131)
        handle.write(payload)


def save_checkpoint(path, payload):
    descriptor = os.open(path, os.O_WRONLY | os.O_CREAT)  # repro: expect(RL131)
    try:
        os.write(descriptor, payload)
    finally:
        os.close(descriptor)


def save_manifest(path, payload):
    path.write_text(payload)  # repro: expect(RL131)


def swap_manifest(temp_path, final_path):
    os.replace(temp_path, final_path)  # repro: expect(RL132)
