"""Workload abstraction.

A workload is the stand-in for one profiled benchmark binary: a
deterministic program driving a :class:`~repro.runtime.process.Process`
through allocations, loads, and stores.  Determinism is the critical
property -- the paper's artifacts come from *layout*, not behaviour, so
a workload must issue the identical logical access sequence regardless
of allocator policy, probe padding, or OS offset.  Workloads therefore
never branch on raw addresses; pointers are opaque tokens.

Each workload exposes a ``scale`` knob controlling trace length, so the
experiments can trade fidelity for runtime uniformly.
"""

from __future__ import annotations

import random
from typing import Dict, Optional, Type

from repro.core.events import Trace
from repro.runtime.process import Process


class Workload:
    """Base class: subclass and implement :meth:`run`."""

    #: short benchmark name (used in experiment tables)
    name: str = "abstract"
    #: one-line description of the memory character being mimicked
    description: str = ""

    def __init__(self, scale: float = 1.0, seed: int = 0) -> None:
        if scale <= 0:
            raise ValueError("scale must be positive")
        self.scale = scale
        self.seed = seed

    def rng(self) -> random.Random:
        """A fresh deterministic generator for this workload instance."""
        return random.Random(f"{self.name}:{self.seed}")

    def scaled(self, quantity: int, minimum: int = 1) -> int:
        """Scale an iteration count, with a floor."""
        return max(minimum, int(quantity * self.scale))

    # -- to be implemented by subclasses --------------------------------

    def run(self, process: Process) -> None:
        """Drive the process through the workload's access sequence."""
        raise NotImplementedError

    # -- cold code -------------------------------------------------------

    def declare_cold_statics(self, process: Process) -> None:
        """Declare the static tables used by the cold phases.

        Must be called before the first allocation (statics link once).
        """
        process.declare_static("cold_config", 64 * 8, type_name="config")
        process.declare_static("cold_stats", 64 * 8, type_name="stats")

    def run_startup(self, process: Process, sites: int = 8) -> None:
        """Cold startup code: configuration reads.

        Real binaries are mostly cold instructions -- option parsing,
        table setup -- each executing a handful of times in trivially
        linear patterns.  These one-LMAD instructions are what puts real
        programs' "instructions captured" fraction in the 40% band
        (Table 1), so the stand-ins model them explicitly.
        """
        from repro.core.events import AccessKind

        base = process.static("cold_config").address
        for site in range(sites):
            instr = process.instruction(
                f"startup.load_config_{site}", AccessKind.LOAD
            )
            for k in range(2):
                process.load(instr, base + ((site * 2 + k) % 64) * 8)

    def run_shutdown(self, process: Process, sites: int = 4) -> None:
        """Cold teardown code: write summary statistics, then read them
        back for the final report -- a short-distance read-after-write
        dependence per site, fully captured by any profiler."""
        from repro.core.events import AccessKind

        base = process.static("cold_stats").address
        for site in range(sites):
            instr = process.instruction(
                f"shutdown.store_stat_{site}", AccessKind.STORE
            )
            process.store(instr, base + (site % 64) * 8)
        for site in range(sites):
            instr = process.instruction(
                f"report.load_stat_{site}", AccessKind.LOAD
            )
            process.load(instr, base + (site % 64) * 8)

    # -- conveniences -------------------------------------------------------

    def execute(
        self,
        allocator: str = "first-fit",
        probe_padding: int = 0,
        os_offset: int = 0,
        record_trace: bool = True,
        process: Optional[Process] = None,
        telemetry=None,
    ) -> Process:
        """Run the workload on a (possibly fresh) process and finish it."""
        if process is None:
            process = Process(
                allocator=allocator,
                probe_padding=probe_padding,
                os_offset=os_offset,
                record_trace=record_trace,
                telemetry=telemetry,
            )
        self.run(process)
        process.finish()
        return process

    def trace(
        self,
        allocator: str = "first-fit",
        probe_padding: int = 0,
        os_offset: int = 0,
        telemetry=None,
    ) -> Trace:
        """Record and return this workload's trace."""
        return self.execute(
            allocator=allocator,
            probe_padding=probe_padding,
            os_offset=os_offset,
            telemetry=telemetry,
        ).trace


class WorkloadRegistry:
    """Name -> workload class registry used by experiments and the CLI."""

    def __init__(self) -> None:
        self._classes: Dict[str, Type[Workload]] = {}

    def register(self, cls: Type[Workload]) -> Type[Workload]:
        """Class decorator registering a workload under its ``name``."""
        if cls.name in self._classes:
            raise ValueError(f"duplicate workload name {cls.name!r}")
        self._classes[cls.name] = cls
        return cls

    def names(self) -> list:
        return sorted(self._classes)

    def create(self, name: str, scale: float = 1.0, seed: int = 0) -> Workload:
        try:
            cls = self._classes[name]
        except KeyError:
            raise KeyError(
                f"unknown workload {name!r}; known: {', '.join(self.names())}"
            ) from None
        return cls(scale=scale, seed=seed)


#: The global registry; workload modules register themselves into it.
REGISTRY = WorkloadRegistry()
