"""Fault tolerance for the profiling pipeline.

The paper's profilers assume a pristine tuple stream and a run that
completes in one shot; the ROADMAP's production-scale north star does
not get either.  This package is the failure-containment layer:

* :mod:`repro.resilience.faults` -- a deterministic, seed-driven fault
  harness (:class:`FaultPlan` / :class:`FaultInjector`) that corrupts
  or drops probe events, bit-flips serialized profiles, and kills or
  stalls pool workers on schedule, for drills from tests or
  ``repro-experiments --inject-faults SPEC``.
* :mod:`repro.resilience.degraded` -- the quarantine sidecar that lets
  WHOMP/LEAP absorb malformed or wild tuples instead of crashing, and
  report a capture-completeness ratio in the profile.
* :mod:`repro.resilience.checkpoint` -- atomic per-experiment
  checkpoints so interrupted sweeps resume instead of restarting.

Retry/timeout/backoff for pool workers lives with the pool itself in
:mod:`repro.parallel.executor`; its ``resilience.*`` telemetry
counters are documented in README's "Resilience" section.
"""

# Crash-safe writes live in core (no dependency cycles) but are part of
# the resilience toolkit's public face: everything that persists state
# -- profiles, checkpoints, manifests, JSON results -- goes through it.
from repro.core.fsutil import atomic_write_text
from repro.resilience.checkpoint import CheckpointStore
from repro.resilience.degraded import (
    Quarantine,
    quarantine_consumer,
    quarantine_stream,
)
from repro.resilience.faults import FaultInjector, FaultPlan, parse_fault_spec

__all__ = [
    "CheckpointStore",
    "atomic_write_text",
    "FaultInjector",
    "FaultPlan",
    "Quarantine",
    "parse_fault_spec",
    "quarantine_consumer",
    "quarantine_stream",
]
