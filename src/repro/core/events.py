"""Trace event model.

An instrumented run produces a single time-ordered stream of events, of
three kinds mirroring the paper's probes (Section 2.3):

* :class:`AccessEvent` -- emitted by an *instruction probe* adjacent to a
  load or store: the (instruction-id, address) pair the CDC receives,
  plus the access width and load/store kind needed by the dependence
  post-processor.
* :class:`AllocEvent` / :class:`FreeEvent` -- emitted by *object probes*
  at object creation and destruction: creation/destruction time, size,
  type, and allocation site, feeding the OMC.

Events carry a ``time`` field: the global counter "starting from 0 at the
beginning of the program and incremented after every collected access"
(Section 2.2).  The :class:`Trace` container assigns it.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass
from typing import IO, TYPE_CHECKING, Dict, Iterable, Iterator, List, Optional, Union

if TYPE_CHECKING:
    from repro.telemetry.spans import Telemetry


class AccessKind(enum.Enum):
    """Whether a memory instruction reads or writes."""

    LOAD = "load"
    STORE = "store"


@dataclass(frozen=True)
class AccessEvent:
    """One dynamic execution of a load or store instruction."""

    __slots__ = ("instruction_id", "address", "size", "kind", "time")

    instruction_id: int
    address: int
    size: int
    kind: AccessKind
    time: int


@dataclass(frozen=True)
class AllocEvent:
    """Object creation observed by an object probe.

    ``site`` is the static allocation-site id: the paper "groups
    allocated dynamic objects by static instruction" (Section 3.1), so
    the site is what the OMC turns into a group.  ``type_name`` is the
    optional compiler-provided type refinement.
    """

    __slots__ = ("address", "size", "site", "type_name", "time")

    address: int
    size: int
    site: str
    type_name: Optional[str]
    time: int


@dataclass(frozen=True)
class FreeEvent:
    """Object destruction observed by an object probe."""

    __slots__ = ("address", "time")

    address: int
    time: int


TraceEvent = Union[AccessEvent, AllocEvent, FreeEvent]


class Trace:
    """A time-ordered event stream from one instrumented run.

    The trace is the profiler-independent artifact: WHOMP, LEAP, and all
    baselines consume the same :class:`Trace`, which is what makes the
    paper's profiler comparisons apples-to-apples.

    Only :class:`AccessEvent` ticks the global time counter, matching the
    paper's definition (incremented after every *collected access*);
    object events are tagged with the current counter value so lifetimes
    interleave correctly with accesses.

    An enabled :class:`~repro.telemetry.spans.Telemetry` makes the trace
    record its own footprint growth as it is collected (live/peak
    allocated bytes, allocation-size distribution); the instrumented
    recording methods are swapped in at construction so the default path
    stays untouched.
    """

    def __init__(self, telemetry: Optional["Telemetry"] = None) -> None:
        self._events: List[TraceEvent] = []
        self._clock = 0
        self._access_count = 0
        if telemetry is not None and telemetry.enabled:
            self._access_counter = telemetry.counter(
                "trace.accesses", "access events recorded"
            )
            self._live_bytes = telemetry.gauge(
                "trace.live_bytes", "currently allocated object bytes"
            )
            self._peak_bytes = telemetry.gauge(
                "trace.peak_live_bytes", "peak allocated object bytes"
            )
            self._alloc_bytes = telemetry.counter(
                "trace.allocated_bytes_total", "cumulative allocated bytes"
            )
            self._alloc_sizes = telemetry.histogram(
                "trace.alloc_size_bytes", "allocation size distribution"
            )
            self._object_sizes: Dict[int, int] = {}
            self.record_access = self._record_access_instrumented  # type: ignore[method-assign]
            self.record_alloc = self._record_alloc_instrumented  # type: ignore[method-assign]
            self.record_free = self._record_free_instrumented  # type: ignore[method-assign]

    # -- recording ----------------------------------------------------

    def record_access(
        self, instruction_id: int, address: int, size: int, kind: AccessKind
    ) -> AccessEvent:
        event = AccessEvent(instruction_id, address, size, kind, self._clock)
        self._events.append(event)
        self._clock += 1
        self._access_count += 1
        return event

    def record_alloc(
        self, address: int, size: int, site: str, type_name: Optional[str] = None
    ) -> AllocEvent:
        event = AllocEvent(address, size, site, type_name, self._clock)
        self._events.append(event)
        return event

    def record_free(self, address: int) -> FreeEvent:
        event = FreeEvent(address, self._clock)
        self._events.append(event)
        return event

    # -- telemetry-instrumented recording (swapped in when enabled) ----

    def _record_access_instrumented(
        self, instruction_id: int, address: int, size: int, kind: AccessKind
    ) -> AccessEvent:
        self._access_counter.inc()
        event = AccessEvent(instruction_id, address, size, kind, self._clock)
        self._events.append(event)
        self._clock += 1
        self._access_count += 1
        return event

    def _record_alloc_instrumented(
        self, address: int, size: int, site: str, type_name: Optional[str] = None
    ) -> AllocEvent:
        self._object_sizes[address] = size
        self._alloc_bytes.inc(size)
        self._alloc_sizes.observe(size)
        self._live_bytes.add(size)
        self._peak_bytes.set_max(self._live_bytes.value)
        event = AllocEvent(address, size, site, type_name, self._clock)
        self._events.append(event)
        return event

    def _record_free_instrumented(self, address: int) -> FreeEvent:
        size = self._object_sizes.pop(address, 0)
        self._live_bytes.add(-size)
        event = FreeEvent(address, self._clock)
        self._events.append(event)
        return event

    # -- access -------------------------------------------------------

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def __getitem__(self, index: int) -> TraceEvent:
        return self._events[index]

    @property
    def access_count(self) -> int:
        """Number of memory accesses (the paper's trace length)."""
        return self._access_count

    def accesses(self) -> Iterator[AccessEvent]:
        """Iterate over just the access events."""
        return (e for e in self._events if isinstance(e, AccessEvent))

    def object_events(self) -> Iterator[TraceEvent]:
        """Iterate over just the alloc/free events."""
        return (e for e in self._events if not isinstance(e, AccessEvent))

    def raw_address_stream(self) -> List[int]:
        """The conventional raw address stream (baseline input)."""
        return [e.address for e in self._events if isinstance(e, AccessEvent)]

    def raw_size_bytes(self) -> int:
        """Uncompressed trace size in bytes, as the paper's compression
        ratios measure it: one (instruction-id, address) record per
        access at 12 bytes (4-byte instruction id + 8-byte address)."""
        return self._access_count * 12

    # -- serialization ------------------------------------------------

    def dump(self, stream: IO[str]) -> None:
        """Write the trace as JSON lines (one event per line)."""
        for event in self._events:
            if isinstance(event, AccessEvent):
                record = [
                    "A",
                    event.instruction_id,
                    event.address,
                    event.size,
                    event.kind.value,
                    event.time,
                ]
            elif isinstance(event, AllocEvent):
                record = [
                    "M",
                    event.address,
                    event.size,
                    event.site,
                    event.type_name,
                    event.time,
                ]
            else:
                record = ["F", event.address, event.time]
            stream.write(json.dumps(record) + "\n")

    @classmethod
    def load(cls, stream: IO[str]) -> "Trace":
        """Read a trace written by :meth:`dump`."""
        trace = cls()
        for line in stream:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            tag = record[0]
            if tag == "A":
                __, instruction_id, address, size, kind, time = record
                trace._events.append(
                    AccessEvent(instruction_id, address, size, AccessKind(kind), time)
                )
                trace._access_count += 1
                trace._clock = time + 1
            elif tag == "M":
                __, address, size, site, type_name, time = record
                trace._events.append(AllocEvent(address, size, site, type_name, time))
            elif tag == "F":
                __, address, time = record
                trace._events.append(FreeEvent(address, time))
            else:
                raise ValueError(f"unknown trace record tag {tag!r}")
        return trace

    @classmethod
    def from_events(cls, events: Iterable[TraceEvent]) -> "Trace":
        """Build a trace from pre-timestamped events (used by tests)."""
        trace = cls()
        for event in events:
            trace._events.append(event)
            if isinstance(event, AccessEvent):
                trace._access_count += 1
                trace._clock = max(trace._clock, event.time + 1)
        return trace
