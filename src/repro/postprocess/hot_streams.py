"""Hot data stream extraction from object-relative grammars.

The paper positions the OMSG as input to "a class of correlation-based
memory optimizations including clustering, custom heap allocation, and
hot data stream prefetching" (Section 3.2, citing Chilimbi & Hirzel).
A *hot data stream* is a sequence of object references that repeats
frequently; in a Sequitur grammar those are precisely the rules --
every rule exists because its expansion occurred repeatedly.

This module builds a grammar over the ``(group, object)`` reference
stream and ranks its rules by *heat* = occurrences x expanded length,
the standard hot-stream magnitude metric.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

from repro.compression.sequitur import Rule, SequiturGrammar
from repro.core.tuples import ObjectRelativeAccess

ObjectRef = Tuple[int, int]  # (group, object serial)


@dataclass(frozen=True)
class HotStream:
    """One frequently repeated object reference sequence."""

    references: Tuple[ObjectRef, ...]
    occurrences: int

    @property
    def length(self) -> int:
        return len(self.references)

    @property
    def heat(self) -> int:
        """Total accesses the stream accounts for."""
        return self.occurrences * self.length


def _rule_occurrences(grammar: SequiturGrammar) -> Dict[int, int]:
    """How many times each rule's expansion occurs in the full input.

    Computed top-down: the start rule occurs once; each reference to a
    rule inside rule R contributes R's own occurrence count.  Sequitur
    grammars are acyclic, so a memoized traversal suffices.
    """
    counts: Dict[int, int] = {grammar.start.id: 1}
    order: List[Rule] = []
    seen = set()

    def visit(rule: Rule) -> None:
        if rule.id in seen:
            return
        seen.add(rule.id)
        for symbol in rule.symbols():
            if symbol.is_nonterminal:
                visit(symbol.value)
        order.append(rule)

    visit(grammar.start)
    # Process parents before children: reverse postorder.
    for rule in reversed(order):
        parent_count = counts.get(rule.id, 0)
        for symbol in rule.symbols():
            if symbol.is_nonterminal:
                counts[symbol.value.id] = (
                    counts.get(symbol.value.id, 0) + parent_count
                )
    return counts


def _expansions(grammar: SequiturGrammar) -> Dict[int, List]:
    """Memoized full expansion of every rule."""
    expansions: Dict[int, List] = {}

    def expand(rule: Rule) -> List:
        cached = expansions.get(rule.id)
        if cached is not None:
            return cached
        out: List = []
        for symbol in rule.symbols():
            if symbol.is_nonterminal:
                out.extend(expand(symbol.value))
            else:
                out.append(symbol.value)
        expansions[rule.id] = out
        return out

    expand(grammar.start)
    return expansions


def extract_hot_streams(
    stream: Iterable[ObjectRelativeAccess],
    min_length: int = 2,
    max_length: int = 256,
    min_occurrences: int = 2,
    top: int = 10,
) -> List[HotStream]:
    """Mine the hot object-reference streams of a translated trace.

    Consecutive duplicate references are collapsed first (several field
    accesses to one object are one visit), then the visit stream is
    grammar-compressed and the rules ranked by heat.
    """
    grammar = SequiturGrammar()
    previous: ObjectRef = None  # type: ignore[assignment]
    for access in stream:
        if access.wild:
            continue
        reference = (access.group, access.object_serial)
        if reference != previous:
            grammar.feed(reference)
            previous = reference
    counts = _rule_occurrences(grammar)
    expansions = _expansions(grammar)
    streams = []
    for rule in grammar.rules():
        if rule is grammar.start:
            continue
        expansion = expansions[rule.id]
        occurrences = counts.get(rule.id, 0)
        if (
            min_length <= len(expansion) <= max_length
            and occurrences >= min_occurrences
        ):
            streams.append(HotStream(tuple(expansion), occurrences))
    streams.sort(key=lambda s: s.heat, reverse=True)
    return streams[:top]


def coverage(streams: Iterable[HotStream], total_accesses: int) -> float:
    """Fraction of the (collapsed) reference stream the hot streams
    account for -- an upper-bound usefulness estimate."""
    if not total_accesses:
        return 0.0
    return min(1.0, sum(s.heat for s in streams) / total_accesses)
