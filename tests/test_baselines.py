"""Tests for the baseline profilers (RASG, lossless dependence, Connors,
lossless stride)."""

import pytest

from repro.baselines.connors import ConnorsProfiler
from repro.baselines.dependence_lossless import (
    DependenceProfile,
    LosslessDependenceProfiler,
)
from repro.baselines.rasg import RasgProfiler
from repro.baselines.stride_lossless import LosslessStrideProfiler
from repro.core.events import AccessKind
from repro.runtime.process import Process


def build(events):
    """events: list of ('ld'|'st', name, address)"""
    process = Process()
    process.declare_static("arena", 1 << 16)
    base = process.static("arena").address
    for kind, name, offset in events:
        if kind == "st":
            instr = process.instruction(name, AccessKind.STORE)
            process.store(instr, base + offset)
        else:
            instr = process.instruction(name, AccessKind.LOAD)
            process.load(instr, base + offset)
    process.finish()
    return process


class TestRasg:
    def test_split_dimensions(self, list_trace):
        profile = RasgProfiler().profile(list_trace)
        assert set(profile.grammars) == {"instruction", "address"}
        assert profile.access_count == list_trace.access_count
        streams = {
            name: grammar.expand() for name, grammar in profile.grammars.items()
        }
        assert streams["address"] == list_trace.raw_address_stream()

    def test_interleaved_mode(self, list_trace):
        profile = RasgProfiler(split_dimensions=False).profile(list_trace)
        assert set(profile.grammars) == {"stream"}
        assert (
            len(profile.grammars["stream"].expand())
            == 2 * list_trace.access_count
        )

    def test_sizes_positive(self, list_trace):
        profile = RasgProfiler().profile(list_trace)
        assert profile.size() > 0
        assert profile.size_bytes_varint() > 0
        assert sum(profile.dimension_sizes().values()) == profile.size()


class TestLosslessDependence:
    def test_simple_raw(self):
        process = build([("st", "s1", 0), ("ld", "l1", 0)])
        profile = LosslessDependenceProfiler().profile(process.trace)
        s1 = 0
        l1 = 1
        assert profile.frequency(s1, l1) == 1.0

    def test_no_dependence_on_different_addresses(self):
        process = build([("st", "s1", 0), ("ld", "l1", 8)])
        profile = LosslessDependenceProfiler().profile(process.trace)
        assert profile.dependent_pairs() == {}

    def test_order_matters(self):
        process = build([("ld", "l1", 0), ("st", "s1", 0)])
        profile = LosslessDependenceProfiler().profile(process.trace)
        assert profile.dependent_pairs() == {}

    def test_any_earlier_write_counts(self):
        # store once, load many times later: every load conflicts
        events = [("st", "s1", 0)] + [("ld", "l1", 0)] * 10
        profile = LosslessDependenceProfiler().profile(build(events).trace)
        assert profile.frequency(0, 1) == 1.0

    def test_fractional_frequency(self):
        events = [("st", "s1", 0)]
        events += [("ld", "l1", 0)] * 3 + [("ld", "l1", 8)] * 7
        profile = LosslessDependenceProfiler().profile(build(events).trace)
        assert profile.frequency(0, 1) == pytest.approx(0.3)

    def test_multiple_stores_each_counted(self):
        events = [("st", "s1", 0), ("st", "s2", 0), ("ld", "l1", 0)]
        profile = LosslessDependenceProfiler().profile(build(events).trace)
        pairs = profile.dependent_pairs()
        assert len(pairs) == 2

    def test_counts(self):
        events = [("st", "s1", 0), ("ld", "l1", 0), ("ld", "l1", 0)]
        profile = LosslessDependenceProfiler().profile(build(events).trace)
        assert profile.store_counts[0] == 1
        assert profile.load_counts[1] == 2

    def test_frequency_of_unknown_pair(self):
        profile = DependenceProfile()
        assert profile.frequency(1, 2) == 0.0


class TestConnors:
    def test_catches_short_distance(self):
        process = build([("st", "s1", 0), ("ld", "l1", 0)])
        profile = ConnorsProfiler(window=4).profile(process.trace)
        assert profile.frequency(0, 1) == 1.0

    def test_misses_beyond_window(self):
        events = [("st", "s1", 0)]
        events += [("st", "s2", 8 * (i + 1)) for i in range(10)]
        events += [("ld", "l1", 0)]
        process = build(events)
        small = ConnorsProfiler(window=4).profile(process.trace)
        large = ConnorsProfiler(window=64).profile(process.trace)
        s1 = 0
        load = process.instructions["l1"].instruction_id
        assert small.frequency(s1, load) == 0.0  # s1 fell out of the window
        assert large.frequency(s1, load) == 1.0

    def test_never_overestimates(self, list_trace):
        truth = LosslessDependenceProfiler().profile(list_trace)
        windowed = ConnorsProfiler(window=32).profile(list_trace)
        for pair, frequency in windowed.dependent_pairs().items():
            assert frequency <= truth.dependent_pairs().get(pair, 0.0) + 1e-9

    def test_window_eviction_multiset(self):
        # same address stored twice by one instruction; eviction must not
        # drop the second copy prematurely
        events = [("st", "s1", 0), ("st", "s1", 0), ("st", "s2", 8), ("ld", "l1", 0)]
        profile = ConnorsProfiler(window=2).profile(build(events).trace)
        # window holds [s1(second), s2]: s1 still present once
        assert profile.frequency(0, 2) == 1.0

    def test_window_validation(self):
        with pytest.raises(ValueError):
            ConnorsProfiler(window=0)

    def test_counts_match_lossless(self, list_trace):
        truth = LosslessDependenceProfiler().profile(list_trace)
        windowed = ConnorsProfiler(window=16).profile(list_trace)
        assert windowed.load_counts == truth.load_counts
        assert windowed.store_counts == truth.store_counts


class TestLosslessStride:
    def test_constant_stride_detected(self):
        events = [("ld", "l1", 8 * i) for i in range(20)]
        profile = LosslessStrideProfiler().profile(build(events).trace)
        assert profile.dominant_stride(0) == 8
        assert profile.dominant_fraction(0) == 1.0
        assert profile.strongly_strided() == {0}

    def test_mixed_strides_below_threshold(self):
        offsets = []
        for i in range(30):
            offsets.append(8 * i if i % 2 == 0 else 1000 + 24 * i)
        events = [("ld", "l1", offset) for offset in offsets]
        profile = LosslessStrideProfiler().profile(build(events).trace)
        assert profile.strongly_strided() == set()

    def test_dominant_stride_at_threshold(self):
        # exactly 70%: 7 samples of stride 8, 3 of other strides
        offsets = [0, 8, 16, 24, 32, 40, 48, 56, 1000, 2000, 3000]
        events = [("ld", "l1", offset) for offset in offsets]
        profile = LosslessStrideProfiler().profile(build(events).trace)
        assert profile.strongly_strided(threshold=0.70) == {0}

    def test_min_samples_filter(self):
        events = [("ld", "l1", 0), ("ld", "l1", 8)]
        profile = LosslessStrideProfiler().profile(build(events).trace)
        assert profile.strongly_strided(min_samples=4) == set()
        assert profile.strongly_strided(min_samples=1) == {0}

    def test_no_histogram_for_single_execution(self):
        events = [("ld", "l1", 0)]
        profile = LosslessStrideProfiler().profile(build(events).trace)
        assert profile.dominant_stride(0) is None
        assert profile.dominant_fraction(0) == 0.0

    def test_negative_strides_tracked(self):
        events = [("ld", "l1", 8 * i) for i in reversed(range(20))]
        profile = LosslessStrideProfiler().profile(build(events).trace)
        assert profile.dominant_stride(0) == -8
