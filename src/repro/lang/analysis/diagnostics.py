"""Diagnostic records and suppression comments for the mini-IR linter.

Every finding carries a stable code (``MIR101``...), a severity, and an
exact source position.  Codes are stable API: tools and CI scripts match
on them, so they are never renumbered.

Suppression: a trailing ``// mir: allow(MIR104)`` comment on a line
silences the listed codes (comma-separated; ``allow(all)`` silences
everything) for diagnostics reported *on that line*.  Trailing comments
are used -- rather than pragmas on their own line -- so annotating a
program never shifts line numbers, which would rename its profiled
instruction sites.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List

#: severity levels, ordered
ERROR = "error"
WARNING = "warning"

#: code -> (severity, short title)
CODES: Dict[str, tuple] = {
    "MIR101": (ERROR, "possibly uninitialized variable"),
    "MIR102": (ERROR, "use after delete"),
    "MIR103": (ERROR, "double delete"),
    "MIR104": (WARNING, "leaked allocation"),
    "MIR105": (ERROR, "constant index out of bounds"),
    "MIR106": (WARNING, "dead store"),
    "MIR107": (WARNING, "unreachable code"),
    "MIR108": (ERROR, "missing return on some path"),
}


@dataclass(frozen=True)
class Diagnostic:
    """One linter finding, pointing at an exact source position."""

    code: str
    line: int
    column: int
    message: str
    function: str = ""

    @property
    def severity(self) -> str:
        return CODES.get(self.code, (ERROR, ""))[0]

    def render(self, path: str = "<source>") -> str:
        return (
            f"{path}:{self.line}:{self.column}: "
            f"{self.severity}: {self.message} [{self.code}]"
        )

    def to_dict(self) -> dict:
        return {
            "code": self.code,
            "severity": self.severity,
            "line": self.line,
            "column": self.column,
            "function": self.function,
            "message": self.message,
        }


_ALLOW_RE = re.compile(r"//\s*mir:\s*allow\(([^)]*)\)")


def suppressed_lines(source: str) -> Dict[int, FrozenSet[str]]:
    """Map line number -> set of codes allowed on that line.

    The special entry ``"all"`` allows every code.
    """
    table: Dict[int, FrozenSet[str]] = {}
    for number, text in enumerate(source.splitlines(), start=1):
        match = _ALLOW_RE.search(text)
        if not match:
            continue
        codes = frozenset(
            item.strip() for item in match.group(1).split(",") if item.strip()
        )
        if codes:
            table[number] = codes
    return table


@dataclass
class DiagnosticSink:
    """Collects diagnostics, applying per-line suppressions."""

    suppressions: Dict[int, FrozenSet[str]] = field(default_factory=dict)
    diagnostics: List[Diagnostic] = field(default_factory=list)

    def report(
        self,
        code: str,
        line: int,
        column: int,
        message: str,
        function: str = "",
    ) -> None:
        allowed = self.suppressions.get(line, frozenset())
        if code in allowed or "all" in allowed:
            return
        diagnostic = Diagnostic(code, line, column, message, function)
        if diagnostic not in self.diagnostics:
            self.diagnostics.append(diagnostic)

    def sorted(self) -> List[Diagnostic]:
        return sorted(
            self.diagnostics,
            key=lambda d: (d.line, d.column, d.code),
        )

    @property
    def has_errors(self) -> bool:
        return any(d.severity == ERROR for d in self.diagnostics)
