"""RASG -- the raw-address Sequitur grammar baseline (Section 3.2).

"To compare the performance of OMSG, we also generate the conventional
RASG using the raw address stream (similar to the grammars in [Rubin et
al.])."  The raw stream here is the (instruction-id, address) pairs as
recorded -- exactly what WHOMP sees before object-relative translation.

To be fair to the baseline, the stream is decomposed the same way WHOMP
decomposes (two dimensions: instruction-id and address), each compressed
with its own Sequitur grammar; the conventional single-stream variant
(addresses interleaved) is also available for the ablation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.compression.sequitur import SequiturGrammar
from repro.core.events import Trace


@dataclass
class RasgProfile:
    """The raw-address Sequitur profile."""

    grammars: Dict[str, SequiturGrammar]
    access_count: int

    def size(self) -> int:
        return sum(grammar.size() for grammar in self.grammars.values())

    def size_bytes(self, bytes_per_symbol: int = 4) -> int:
        return sum(
            g.size_bytes(bytes_per_symbol) for g in self.grammars.values()
        )

    def size_bytes_varint(self) -> int:
        """Serialized profile size with varint symbol coding -- the
        byte-level size Figure 5's comparison uses."""
        return sum(g.size_bytes_varint() for g in self.grammars.values())

    def dimension_sizes(self) -> Dict[str, int]:
        return {name: grammar.size() for name, grammar in self.grammars.items()}


class RasgProfiler:
    """Lossless raw-address profiler: Sequitur over the raw stream.

    ``split_dimensions``
        True (default): one grammar for the instruction-id stream and
        one for the address stream -- the strongest fair baseline.
        False: a single grammar over the interleaved
        ``instr, addr, instr, addr, ...`` stream.
    """

    def __init__(self, split_dimensions: bool = True) -> None:
        self.split_dimensions = split_dimensions

    def profile(self, trace: Trace) -> RasgProfile:
        if self.split_dimensions:
            grammars = {
                "instruction": SequiturGrammar(),
                "address": SequiturGrammar(),
            }
            count = 0
            for event in trace.accesses():
                grammars["instruction"].feed(event.instruction_id)
                grammars["address"].feed(event.address)
                count += 1
            return RasgProfile(grammars=grammars, access_count=count)
        grammar = SequiturGrammar()
        count = 0
        for event in trace.accesses():
            grammar.feed(("I", event.instruction_id))
            grammar.feed(("A", event.address))
            count += 1
        return RasgProfile(grammars={"stream": grammar}, access_count=count)
