"""Experiment harness: one module per figure/table of the paper."""
