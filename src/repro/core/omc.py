"""Object Management Component (OMC).

Figure 4's OMC: "records information about every object allocated in the
program: the time when it is allocated and de-allocated, the address
range used by the object, and the type of the object.  Additionally,
this component assigns an identifier to every group and object...  Given
an address, the OMC identifies the group and object, and translates the
raw address into a (group, object, offset) triple."

Groups follow the paper's policy: dynamic objects are grouped by static
allocation site, optionally refined by compiler-provided type
information; static objects are grouped by symbol.  Object serial
numbers count creation order *within* a group, so they are stable across
allocator and layout changes -- the whole point of object-relativity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.interval_index import IntervalIndex


class TranslationError(Exception):
    """Raised on inconsistent object probe streams (double free etc.)."""


@dataclass
class ObjectRecord:
    """Everything the OMC remembers about one object instance."""

    group_id: int
    serial: int
    start: int
    size: int
    alloc_time: int
    free_time: Optional[int] = None

    @property
    def end(self) -> int:
        return self.start + self.size

    @property
    def live(self) -> bool:
        return self.free_time is None

    def lifetime(self) -> Optional[int]:
        """Ticks between creation and destruction, if destroyed."""
        if self.free_time is None:
            return None
        return self.free_time - self.alloc_time


@dataclass
class GroupRecord:
    """One group: all objects sharing an allocation site (and type)."""

    group_id: int
    site: str
    type_name: Optional[str]
    objects: List[ObjectRecord] = field(default_factory=list)

    @property
    def label(self) -> str:
        if self.type_name:
            return f"{self.site}<{self.type_name}>"
        return self.site


class ObjectManager:
    """The OMC: group/object identity, lifetimes, and address translation.

    ``refine_by_type``
        When true, objects allocated at the same site with different
        compiler-provided types land in different groups (Section 3.1:
        "The compiler can provide type information to further refine
        this strategy").
    """

    def __init__(self, refine_by_type: bool = False) -> None:
        self.refine_by_type = refine_by_type
        self._groups: List[GroupRecord] = []
        self._group_ids: Dict[Tuple[str, Optional[str]], int] = {}
        self._live: IntervalIndex[ObjectRecord] = IntervalIndex()

    # -- object probe input ------------------------------------------------

    def on_alloc(
        self,
        address: int,
        size: int,
        site: str,
        type_name: Optional[str],
        time: int,
    ) -> ObjectRecord:
        """Register a created object and assign its identifiers."""
        group = self._group_for(site, type_name)
        record = ObjectRecord(
            group_id=group.group_id,
            serial=len(group.objects),
            start=address,
            size=size,
            alloc_time=time,
        )
        group.objects.append(record)
        self._live.insert(address, address + size, record)
        return record

    def on_free(self, address: int, time: int) -> ObjectRecord:
        """Register object destruction; the address must be a live start."""
        try:
            record = self._live.remove(address)
        except KeyError as exc:
            raise TranslationError(f"free of untracked object {address:#x}") from exc
        record.free_time = time
        return record

    def _group_for(self, site: str, type_name: Optional[str]) -> GroupRecord:
        key = (site, type_name if self.refine_by_type else None)
        group_id = self._group_ids.get(key)
        if group_id is None:
            group_id = len(self._groups)
            self._group_ids[key] = group_id
            self._groups.append(GroupRecord(group_id, site, key[1]))
        return self._groups[group_id]

    # -- translation -----------------------------------------------------

    def translate(self, address: int) -> Optional[Tuple[int, int, int]]:
        """Raw address -> ``(group, object, offset)``, or ``None`` if no
        live object contains the address."""
        hit = self._live.resolve(address)
        if hit is None:
            return None
        start, __, record = hit
        return record.group_id, record.serial, address - start

    # -- auxiliary outputs (the run/alloc-dependent side channel) -----------

    @property
    def groups(self) -> List[GroupRecord]:
        return list(self._groups)

    def group(self, group_id: int) -> GroupRecord:
        return self._groups[group_id]

    def group_id_of_site(
        self, site: str, type_name: Optional[str] = None
    ) -> Optional[int]:
        return self._group_ids.get((site, type_name if self.refine_by_type else None))

    def objects(self) -> List[ObjectRecord]:
        """All object records across groups, in group/serial order."""
        return [record for group in self._groups for record in group.objects]

    def object(self, group_id: int, serial: int) -> ObjectRecord:
        return self._groups[group_id].objects[serial]

    def live_count(self) -> int:
        return len(self._live)

    def base_address_table(self) -> Dict[Tuple[int, int], int]:
        """(group, serial) -> start address for every object ever seen.

        This is the auxiliary information that, together with the
        object-relative stream, makes WHOMP lossless: raw addresses are
        ``table[(group, object)] + offset``.
        """
        return {
            (record.group_id, record.serial): record.start
            for group in self._groups
            for record in group.objects
        }

    def lifetime_table(self) -> List[Tuple[int, int, int, Optional[int], int]]:
        """Rows of (group, serial, alloc_time, free_time, size) -- the
        object lifetime output of Figure 4."""
        return [
            (r.group_id, r.serial, r.alloc_time, r.free_time, r.size)
            for group in self._groups
            for r in group.objects
        ]
