"""Tests for the mini-IR interpreter."""

import pytest

from repro.core.events import AccessKind, AllocEvent, FreeEvent
from repro.lang.interp import Interpreter, RuntimeError_, run_source
from repro.lang.parser import parse


def run(source, entry="main", args=()):
    return run_source(source, entry, args=args)


class TestArithmetic:
    def test_return_value(self):
        assert run("fn main(): int { return 41 + 1; }")[0] == 42

    def test_precedence(self):
        assert run("fn main(): int { return 2 + 3 * 4; }")[0] == 14

    def test_division_truncates_toward_zero(self):
        assert run("fn main(): int { return -7 / 2; }")[0] == -3
        assert run("fn main(): int { return 7 / 2; }")[0] == 3

    def test_modulo_c_semantics(self):
        assert run("fn main(): int { return -7 % 2; }")[0] == -1

    def test_division_by_zero(self):
        with pytest.raises(RuntimeError_):
            run("fn main(): int { return 1 / 0; }")

    def test_comparisons_and_logic(self):
        source = """
        fn main(): int {
          var a: int = 0;
          if (1 < 2 && 2 <= 2 && 3 > 2 && 2 >= 2 && 1 != 2 && 2 == 2) { a = 1; }
          if (!a || false) { a = 99; }
          return a;
        }
        """
        assert run(source)[0] == 1

    def test_short_circuit(self):
        # right side would divide by zero if evaluated
        assert run("fn main(): int { if (false && 1/0) { return 1; } return 2; }")[0] == 2

    def test_unary_minus_and_not(self):
        assert run("fn main(): int { return -(-5); }")[0] == 5
        assert run("fn main(): int { return !0 + !7; }")[0] == 1


class TestControlFlow:
    def test_while_loop(self):
        source = """
        fn main(): int {
          var total: int = 0;
          var i: int = 0;
          while (i < 10) { total = total + i; i = i + 1; }
          return total;
        }
        """
        assert run(source)[0] == 45

    def test_for_loop(self):
        source = "fn main(): int { var t: int = 0; for (var i: int = 0; i < 5; i = i + 1) { t = t + i; } return t; }"
        assert run(source)[0] == 10

    def test_break_and_continue(self):
        source = """
        fn main(): int {
          var total: int = 0;
          for (var i: int = 0; i < 100; i = i + 1) {
            if (i % 2 == 0) { continue; }
            if (i > 10) { break; }
            total = total + i;
          }
          return total;
        }
        """
        assert run(source)[0] == 1 + 3 + 5 + 7 + 9

    def test_recursion(self):
        source = """
        fn fib(n: int): int {
          if (n < 2) { return n; }
          return fib(n - 1) + fib(n - 2);
        }
        fn main(): int { return fib(12); }
        """
        assert run(source)[0] == 144

    def test_call_arity_checked(self):
        with pytest.raises(RuntimeError_):
            run("fn f(a: int): int { return a; } fn main(): int { return f(); }")

    def test_unknown_function(self):
        with pytest.raises(RuntimeError_):
            run("fn main(): int { return ghost(); }")

    def test_missing_entry(self):
        with pytest.raises(RuntimeError_):
            run("fn helper() { }", entry="main")

    def test_entry_args(self):
        assert run("fn main(n: int): int { return n * 2; }", args=(21,))[0] == 42


class TestMemory:
    def test_global_store_load(self):
        source = """
        global int counter;
        fn main(): int { counter = 7; return counter + 1; }
        """
        result, interp = run(source)
        assert result == 8
        accesses = list(interp.process.trace.accesses())
        assert [a.kind for a in accesses] == [AccessKind.STORE, AccessKind.LOAD]

    def test_global_array_indexing(self):
        source = """
        global int[8] table;
        fn main(): int {
          for (var i: int = 0; i < 8; i = i + 1) { table[i] = i * i; }
          return table[5];
        }
        """
        assert run(source)[0] == 25

    def test_heap_struct_fields(self):
        source = """
        struct point { int x; int y; }
        fn main(): int {
          var p: point* = new point;
          p->x = 3; p->y = 4;
          return p->x * p->x + p->y * p->y;
        }
        """
        assert run(source)[0] == 25

    def test_heap_array(self):
        source = """
        fn main(): int {
          var buf: int* = new int[10];
          for (var i: int = 0; i < 10; i = i + 1) { buf[i] = i; }
          var total: int = 0;
          for (var i: int = 0; i < 10; i = i + 1) { total = total + buf[i]; }
          delete buf;
          return total;
        }
        """
        assert run(source)[0] == 45

    def test_pointer_chase(self):
        source = """
        struct node { int data; node* next; }
        fn main(): int {
          var head: node* = null;
          for (var i: int = 1; i <= 5; i = i + 1) {
            var n: node* = new node;
            n->data = i;
            n->next = head;
            head = n;
          }
          var product: int = 1;
          var p: node* = head;
          while (p != null) { product = product * p->data; p = p->next; }
          return product;
        }
        """
        assert run(source)[0] == 120

    def test_struct_by_value_global(self):
        source = """
        struct pair { int a; int b; }
        global pair g;
        fn main(): int { g.a = 10; g.b = 32; return g.a + g.b; }
        """
        assert run(source)[0] == 42

    def test_nested_struct_offsets(self):
        source = """
        struct inner { int x; int y; }
        struct outer { int tag; inner body; }
        global outer g;
        fn main(): int { g.body.y = 9; return g.body.y; }
        """
        assert run(source)[0] == 9

    def test_null_deref_rejected(self):
        source = """
        struct node { int data; node* next; }
        fn main(): int { var p: node* = null; return p->data; }
        """
        with pytest.raises(RuntimeError_):
            run(source)

    def test_delete_null_rejected(self):
        with pytest.raises(RuntimeError_):
            run("fn main() { var p: int* = null; delete p; }")

    def test_delete_clears_memory_image(self):
        source = """
        fn main(): int {
          var a: int* = new int[4];
          a[0] = 99;
          delete a;
          var b: int* = new int[4];
          return b[0];
        }
        """
        result, interp = run(source)
        assert result == 0  # reused memory reads as zero, not stale 99

    def test_address_of(self):
        source = """
        global int g;
        fn main(): int {
          var p: int* = &g;
          p[0] = 5;
          return g;
        }
        """
        assert run(source)[0] == 5

    def test_local_is_register_not_memory(self):
        result, interp = run(
            "fn main(): int { var x: int = 1; x = x + 1; return x; }"
        )
        assert result == 2
        assert interp.process.trace.access_count == 0


class TestInstrumentation:
    LIST_SOURCE = """
    struct node { int data; int pad; node* next; }
    fn main(): int {
      var head: node* = null;
      for (var i: int = 0; i < 10; i = i + 1) {
        var n: node* = new node;
        n->data = i;
        n->next = head;
        head = n;
      }
      var total: int = 0;
      var p: node* = head;
      while (p != null) {
        total = total + p->data;
        p = p->next;
      }
      return total;
    }
    """

    def test_distinct_sites_get_distinct_instructions(self):
        __, interp = run(self.LIST_SOURCE)
        names = list(interp.process.instructions)
        loads = [n for n in names if ":load:" in n]
        stores = [n for n in names if ":store:" in n]
        assert len(loads) == 2  # ->data and ->next in the traversal
        assert len(stores) == 2  # ->data and ->next in the builder

    def test_allocation_site_becomes_group(self):
        __, interp = run(self.LIST_SOURCE)
        from repro.profilers.whomp import WhompProfiler

        profile = WhompProfiler().profile(interp.process.trace)
        assert any("new node" in label for label in profile.group_labels.values())

    def test_object_probes_fired(self):
        __, interp = run(self.LIST_SOURCE)
        trace = interp.process.trace
        allocs = [e for e in trace if isinstance(e, AllocEvent)]
        assert len(allocs) == 10

    def test_field_offsets_in_object_relative_stream(self):
        from repro.core.cdc import translate_trace_list

        __, interp = run(self.LIST_SOURCE)
        translated = translate_trace_list(interp.process.trace)
        offsets = {a.offset for a in translated}
        assert offsets == {0, 16}  # data at 0, next at 16 (pad between)

    def test_whomp_lossless_on_lang_trace(self):
        from repro.profilers.whomp import WhompProfiler

        __, interp = run(self.LIST_SOURCE)
        trace = interp.process.trace
        profile = WhompProfiler().profile(trace)
        raw = [(e.instruction_id, e.address) for e in trace.accesses()]
        assert profile.reconstruct_accesses() == raw


class TestGuards:
    def test_step_budget(self):
        program = parse("fn main() { while (1) { } }")
        interp = Interpreter(program)
        interp.MAX_STEPS = 1000
        with pytest.raises(RuntimeError_):
            interp.run()

    def test_assign_to_rvalue_rejected(self):
        with pytest.raises(RuntimeError_):
            run("fn main() { 1 = 2; }")

    def test_unknown_variable(self):
        with pytest.raises(RuntimeError_):
            run("fn main(): int { return ghost; }")

    def test_field_on_non_struct(self):
        with pytest.raises(RuntimeError_):
            run("fn main(): int { var p: int* = new int[2]; return p->data; }")

    def test_index_on_int_rejected(self):
        with pytest.raises(RuntimeError_):
            run("fn main(): int { var x: int = 3; return x[0]; }")
