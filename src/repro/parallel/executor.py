"""The process-pool executor behind every ``--jobs N`` flag.

A thin, predictable wrapper over :mod:`multiprocessing`:

* **Serial fallback.**  ``jobs <= 1``, a platform without the ``fork``
  start method, or a task list shorter than two items all run inline in
  the calling process -- same results, no pool, no pickling.  (``fork``
  is required because the profilers ship closed-over grammar classes
  and large streams to the workers; ``spawn`` would re-import the world
  per worker and still require every argument to cross a pipe.)
* **Worker bootstrap.**  Workers ignore ``SIGINT`` so a Ctrl-C lands
  only in the parent, which terminates the pool and re-raises
  :class:`KeyboardInterrupt` cleanly instead of leaking children.
* **Chunked submission.**  Tasks are submitted in contiguous chunks
  (``chunksize`` heuristic below) to amortize IPC per task.
* **Crash containment.**  A worker that raises reports the traceback
  text back to the parent, which raises :class:`WorkerCrashError`
  carrying it; a worker that *dies* (segfault, OOM-kill) surfaces as
  the same error type instead of a hung join.

Results are always returned in task order, so parallel runs are
deterministic whenever the worker function is.
"""

from __future__ import annotations

import multiprocessing
import signal
import traceback
from typing import Any, Callable, List, Optional, Sequence

from repro.telemetry.spans import Telemetry, coalesce


class WorkerCrashError(RuntimeError):
    """A pool worker raised or died; carries the worker traceback."""

    def __init__(self, message: str, worker_traceback: str = "") -> None:
        super().__init__(message)
        self.worker_traceback = worker_traceback


def fork_available() -> bool:
    """Whether this platform supports the ``fork`` start method."""
    return "fork" in multiprocessing.get_all_start_methods()


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``--jobs`` value: ``None``/``0`` and negatives mean
    "use all CPUs"; positive values pass through; platforms without
    ``fork`` always resolve to 1 (the serial fallback)."""
    if not fork_available():
        return 1
    if jobs is None or jobs <= 0:
        return multiprocessing.cpu_count()
    return jobs


def _bootstrap_worker() -> None:
    """Pool initializer: leave interrupt handling to the parent."""
    signal.signal(signal.SIGINT, signal.SIG_IGN)


def _guarded_call(payload):
    """Run one task inside a worker, trapping exceptions as data so the
    parent can distinguish "task raised" from "worker died"."""
    function, task = payload
    try:
        return True, function(task)
    except BaseException as exc:  # noqa: BLE001 - report, don't unwind
        return False, (type(exc).__name__, str(exc), traceback.format_exc())


class ParallelExecutor:
    """Map a picklable function over tasks with up to ``jobs`` workers.

    >>> executor = ParallelExecutor(jobs=1)
    >>> executor.map(abs, [-2, 3, -4])
    [2, 3, 4]
    """

    def __init__(
        self, jobs: Optional[int] = 1, telemetry: Optional[Telemetry] = None
    ) -> None:
        self.jobs = resolve_jobs(jobs if jobs is not None else 1)
        self.telemetry = coalesce(telemetry)

    def effective_jobs(self, task_count: int) -> int:
        """Workers actually used for ``task_count`` tasks."""
        return max(1, min(self.jobs, task_count))

    @staticmethod
    def _chunksize(task_count: int, workers: int) -> int:
        """Contiguous tasks per submission: aim for ~4 chunks per worker
        so stragglers rebalance without paying IPC per task."""
        return max(1, task_count // (workers * 4))

    def map(
        self,
        function: Callable[[Any], Any],
        tasks: Sequence[Any],
        label: str = "parallel-map",
    ) -> List[Any]:
        """Apply ``function`` to every task; results in task order.

        Falls back to an inline serial loop when only one worker would
        be used (single job, single task, or no ``fork``).
        """
        tasks = list(tasks)
        workers = self.effective_jobs(len(tasks)) if fork_available() else 1
        if workers <= 1:
            return [function(task) for task in tasks]
        return self._map_pool(function, tasks, workers, label)

    def _map_pool(
        self,
        function: Callable[[Any], Any],
        tasks: List[Any],
        workers: int,
        label: str,
    ) -> List[Any]:
        context = multiprocessing.get_context("fork")
        telemetry = self.telemetry
        telemetry.counter(
            "parallel.pools_total", "process pools started"
        ).inc()
        telemetry.gauge("parallel.jobs", "workers in the last pool").set(workers)
        pool = context.Pool(processes=workers, initializer=_bootstrap_worker)
        try:
            payloads = [(function, task) for task in tasks]
            chunksize = self._chunksize(len(tasks), workers)
            with telemetry.span(label) as span:
                try:
                    outcomes = pool.map(_guarded_call, payloads, chunksize=chunksize)
                except KeyboardInterrupt:
                    pool.terminate()
                    raise
                except Exception as exc:
                    # The pool machinery itself failed -- most commonly a
                    # worker process died without reporting (the result
                    # pipe closes).  Surface it as a crash, not a hang.
                    pool.terminate()
                    raise WorkerCrashError(
                        f"{label}: worker pool failed: {exc}"
                    ) from exc
                span.add_items(len(tasks), "tasks")
            results: List[Any] = []
            for index, (ok, value) in enumerate(outcomes):
                if not ok:
                    name, message, worker_tb = value
                    telemetry.counter(
                        "parallel.worker_errors_total", "tasks that raised"
                    ).inc()
                    raise WorkerCrashError(
                        f"{label}: task {index} raised {name}: {message}",
                        worker_traceback=worker_tb,
                    )
                results.append(value)
            telemetry.counter(
                "parallel.tasks_total", "tasks executed in pools"
            ).inc(len(tasks))
            return results
        finally:
            pool.close()
            pool.terminate()
            pool.join()
