"""Experiment runner CLI.

Regenerates every figure and table of the paper's evaluation::

    repro-experiments --all
    repro-experiments fig5 fig8 --scale 0.5
    python -m repro.experiments.runner table1

Results print as paper-style text tables and histograms; ``--json``
writes the structured results (plus per-experiment elapsed seconds) to
a file as well.  ``--telemetry [report|json|prom]`` self-profiles the
suite with one span per experiment, ``--heartbeat SECS`` emits a
progress line to stderr while a long experiment runs, and ``--jobs N``
fans whole experiments out to worker processes (results identical to
the serial run).
"""

from __future__ import annotations

import argparse
import json
import math
import sys
import threading
import time
from typing import Dict, List, Optional

from repro.experiments import fig3, fig5, fig6, fig7, fig8, fig9, table1
from repro.experiments.context import SuiteContext
from repro.telemetry import MODES, NULL_TELEMETRY, Telemetry, emit

EXPERIMENTS = {
    "fig3": (fig3.run, fig3.render),
    "fig5": (fig5.run, fig5.render),
    "fig6": (fig6.run, fig6.render),
    "fig7": (fig7.run, fig7.render),
    "fig8": (fig8.run, fig8.render),
    "fig9": (fig9.run, fig9.render),
    "table1": (table1.run, table1.render),
}


def _jsonable(value: object) -> object:
    """Strip non-serializable objects (profiles, distributions) down to
    plain data for --json output."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, float) and not math.isfinite(value):
        # json.dump would emit bare NaN/Infinity literals, which are not
        # JSON; null is the honest portable encoding.
        return None
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    fractions = getattr(value, "fractions", None)
    if callable(fractions):
        return {
            "fractions": _jsonable(fractions()),
            "total_pairs": _jsonable(getattr(value, "total_pairs", None)),
        }
    return repr(value)


class _Heartbeat:
    """Background progress line for long-running experiments.

    Prints ``[heartbeat] <name> running (12s)`` to stderr every
    ``interval`` seconds until the guarded block exits.  A zero or
    negative interval disables it entirely.
    """

    def __init__(self, name: str, interval: float) -> None:
        self._name = name
        self._interval = interval
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def __enter__(self) -> "_Heartbeat":
        if self._interval > 0:
            self._thread = threading.Thread(target=self._beat, daemon=True)
            self._thread.start()
        return self

    def __exit__(self, *exc_info) -> bool:
        self._stop.set()
        if self._thread is not None:
            self._thread.join()
        return False

    def _beat(self) -> None:
        started = time.perf_counter()
        while not self._stop.wait(self._interval):
            elapsed = time.perf_counter() - started
            print(
                f"[heartbeat] {self._name} running ({elapsed:.0f}s)",
                file=sys.stderr,
                flush=True,
            )


def _run_parallel(
    names: List[str],
    args: argparse.Namespace,
    telemetry,
    collected: Dict[str, object],
    elapsed_seconds: Dict[str, float],
) -> None:
    """Fan whole experiments out to worker processes.

    Each worker builds its own :class:`SuiteContext` (traces are cheap
    relative to the experiments and cannot be shared across processes),
    runs one experiment, and reports its results, wall-clock, and span
    tree back; the parent grafts each worker's spans under its own root
    so ``--telemetry`` still shows one span per experiment.  Results
    print in request order once everything has finished.
    """
    from repro.parallel import ParallelExecutor
    from repro.parallel.workers import run_experiment

    executor = ParallelExecutor(jobs=args.jobs, telemetry=telemetry)
    workers = executor.effective_jobs(len(names))
    print(
        f"running {len(names)} experiments in up to {workers} workers ...",
        flush=True,
    )
    tasks = [
        (name, args.scale, args.seed, not args.no_speed, telemetry.enabled)
        for name in names
    ]
    with _Heartbeat("experiments", args.heartbeat):
        outcomes = executor.map(run_experiment, tasks, label="experiments")
    for name, results, elapsed, span_data in outcomes:
        __, render = EXPERIMENTS[name]
        collected[name] = results
        elapsed_seconds[name] = elapsed
        if span_data is not None:
            telemetry.root.absorb_plain(span_data)
        print(render(results))
        print(f"[{name} completed in {elapsed:.1f}s]\n")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's figures and tables.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="EXPERIMENT",
        help=f"which experiments to run: {', '.join(EXPERIMENTS)}, all "
        "(default: all)",
    )
    parser.add_argument("--all", action="store_true", help="run every experiment")
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="workload scale factor (default 1.0 = paper-shape calibration)",
    )
    parser.add_argument("--seed", type=int, default=0, help="workload seed")
    parser.add_argument(
        "--no-speed",
        action="store_true",
        help="skip the wall-clock dilation measurement in table1",
    )
    parser.add_argument("--json", metavar="PATH", help="also write results as JSON")
    parser.add_argument(
        "--telemetry",
        choices=MODES,
        help="self-profile the suite (one span per experiment) and print "
        "spans/metrics in the chosen format",
    )
    parser.add_argument(
        "--telemetry-out",
        metavar="PATH",
        help="write the telemetry output to PATH instead of stdout",
    )
    parser.add_argument(
        "--heartbeat",
        type=float,
        default=0.0,
        metavar="SECS",
        help="print a progress line to stderr every SECS seconds while an "
        "experiment runs (0 disables)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="run up to N whole experiments concurrently in worker "
        "processes (0 = all CPUs; 1 = serial; falls back to serial "
        "when the platform lacks fork)",
    )
    args = parser.parse_args(argv)

    names = list(args.experiments)
    unknown = [n for n in names if n not in EXPERIMENTS and n != "all"]
    if unknown:
        parser.error(
            f"unknown experiment(s) {', '.join(unknown)}; "
            f"choose from {', '.join(EXPERIMENTS)} or all"
        )
    if args.all or "all" in names or not names:
        names = list(EXPERIMENTS)

    telemetry = Telemetry() if args.telemetry else NULL_TELEMETRY
    context = SuiteContext(
        scale=args.scale,
        seed=args.seed,
        telemetry=telemetry if telemetry.enabled else None,
    )
    collected: Dict[str, object] = {}
    elapsed_seconds: Dict[str, float] = {}
    from repro.parallel import resolve_jobs

    if resolve_jobs(args.jobs) > 1 and len(names) > 1:
        _run_parallel(names, args, telemetry, collected, elapsed_seconds)
    else:
        for index, name in enumerate(names, start=1):
            run, render = EXPERIMENTS[name]
            print(f"[{index}/{len(names)}] running {name} ...", flush=True)
            start = time.perf_counter()
            with _Heartbeat(name, args.heartbeat), telemetry.span(name):
                if name == "table1":
                    results = run(context, measure_speed=not args.no_speed)
                else:
                    results = run(context)
            elapsed = time.perf_counter() - start
            collected[name] = results
            elapsed_seconds[name] = elapsed
            print(render(results))
            print(f"[{name} completed in {elapsed:.1f}s]\n")

    if args.json:
        payload = {
            name: {
                "elapsed_seconds": elapsed_seconds[name],
                "results": _jsonable(results),
            }
            for name, results in collected.items()
        }
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=2)
        print(f"JSON results written to {args.json}")
    emit(telemetry, args.telemetry, args.telemetry_out)
    return 0


if __name__ == "__main__":
    sys.exit(main())
