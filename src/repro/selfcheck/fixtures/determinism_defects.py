# repro: fixture
# repro: capture-path
"""Seeded determinism and event-schema defects (RL14x).

Marked capture-path: captured bytes here are supposed to be a pure
function of the workload seed, so wall-clock reads and unseeded
randomness are convictions.  The module carries its own
``EVENT_SCHEMAS`` table so the emit-site checks are self-contained
when only the fixture tree is analyzed.
"""

import random
import time

EVENT_SCHEMAS = {
    "request": {
        "required": ["endpoint", "method", "status", "seconds"],
        "optional": [],
    },
}


def capture_timestamped(samples):
    return [(time.time(), sample) for sample in samples]  # repro: expect(RL141)


def shuffle_documents(documents):
    random.shuffle(documents)  # repro: expect(RL142)
    return documents


def fresh_generator():
    return random.Random()  # repro: expect(RL142)


def seeded_generator(seed):
    return random.Random(seed)  # sanctioned: explicit seed


def emit_unknown_kind(log):
    log.emit("warp-drive", speed=9)  # repro: expect(RL143)


def emit_bad_fields(log):
    log.emit("request", endpoint="/get", verb="GET")  # repro: expect(RL144)
