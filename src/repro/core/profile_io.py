"""Profile serialization.

Profiles are the artifact a feedback-directed compiler consumes in a
later build, so they must survive a round trip to disk.  The format is
versioned JSON: human-inspectable, diff-friendly, and adequate for the
profile sizes object-relative compression produces.

Supported payloads: :class:`~repro.profilers.whomp.WhompProfile`
(grammars stored as productions, re-expandable),
:class:`~repro.profilers.leap.LeapProfile` (LMAD records), and
:class:`~repro.baselines.dependence_lossless.DependenceProfile` (the
post-processed MDF table).

Robustness contract: **loading never trusts the file**.  Whatever a
truncated write, a flipped bit, or a hand-edited document does to the
bytes, a loader either returns a valid profile or raises
:class:`ProfileFormatError` -- never a ``KeyError``/``TypeError`` from
half-decoded structure, and never unbounded work from a malicious
document (a doubling grammar claiming a small ``access_count`` is cut
off at the claimed length; internal totals are cross-checked).  The
fuzz tests in ``tests/test_profile_io.py`` drive this with bit flips
and truncations at every offset.

:func:`save` / :func:`load` are the path-level API: atomic writes
(temp file + ``os.replace``) and format sniffing, so a crash mid-save
can never leave a truncated profile where a good one stood.
"""

from __future__ import annotations

import json
from typing import IO, Dict, List, Optional, Tuple

from repro.baselines.dependence_lossless import DependenceProfile
from repro.compression.lmad import LMAD, LMADProfileEntry, OverflowSummary
from repro.compression.sequitur import Ref, SequiturGrammar
from repro.core.events import AccessKind
from repro.core.fsutil import atomic_write_text
from repro.core.tuples import DIMENSIONS
from repro.profilers.leap import LeapProfile
from repro.profilers.whomp import WhompProfile

FORMAT_VERSION = 1


class ProfileFormatError(Exception):
    """Raised when a profile file cannot be decoded."""


#: exception classes that half-decoded JSON structure raises when the
#: decoders index into it; all converted to :class:`ProfileFormatError`
_DECODE_ERRORS = (KeyError, IndexError, TypeError, ValueError, AttributeError)


def _load_document(stream: IO[str]) -> Dict[str, object]:
    """Parse one JSON document, normalizing every parse-level failure
    (bad JSON, binary garbage, a non-object top level) to
    :class:`ProfileFormatError`."""
    try:
        document = json.load(stream)
    except ProfileFormatError:
        raise
    except (ValueError, RecursionError, OSError, UnicodeDecodeError) as exc:
        raise ProfileFormatError(f"unparseable profile: {exc}") from exc
    if not isinstance(document, dict):
        raise ProfileFormatError("profile document is not a JSON object")
    return document


def _require_version(document: Dict[str, object], fmt: str) -> None:
    if document.get("format") != fmt:
        raise ProfileFormatError(f"not a {fmt.upper()} profile")
    if document.get("version") != FORMAT_VERSION:
        raise ProfileFormatError(f"unsupported version {document.get('version')}")


def _count_field(document: Dict[str, object], key: str) -> int:
    value = document.get(key)
    if not isinstance(value, int) or isinstance(value, bool) or value < 0:
        raise ProfileFormatError(f"bad {key}: {value!r}")
    return value


# -- grammar (de)serialization ------------------------------------------------


def _grammar_to_json(grammar: SequiturGrammar) -> Dict[str, object]:
    productions = {}
    for rule_id, rhs in grammar.to_productions().items():
        encoded: List[object] = []
        for symbol in rhs:
            if isinstance(symbol, Ref):
                encoded.append(["R", symbol.rule_id])
            else:
                encoded.append(["T", symbol])
        productions[str(rule_id)] = encoded
    return {"start": grammar.start.id, "productions": productions}


def _expand_productions(
    data: Dict[str, object], max_symbols: Optional[int] = None
) -> List[object]:
    """Expand serialized productions back into the terminal stream.

    Expansion is iterative (explicit frame stack): rule chains in a
    valid grammar can be arbitrarily deep, far past Python's recursion
    limit, and must still load.  A rule re-entered while one of its own
    expansions is in flight is a true cycle -- impossible in a grammar
    produced by Sequitur -- and raises :class:`ProfileFormatError`.

    ``max_symbols`` bounds the output length: a crafted document can
    describe exponentially many terminals in linear space (a doubling
    chain of rules), so a loader that knows the expected stream length
    passes it and the expansion aborts the moment the claim is
    exceeded, instead of filling memory first and failing later.
    """
    try:
        productions = data["productions"]
        start = str(data["start"])
        if start not in productions:
            raise ProfileFormatError(f"start rule {start!r} not in productions")
        out: List[object] = []
        # Each frame: [rule_id, rhs, next index].  ``active`` tracks the
        # rules currently on the stack for cycle detection.
        stack: List[List[object]] = [[start, productions[start], 0]]
        active = {start}
        while stack:
            frame = stack[-1]
            rule_id, rhs, index = frame
            if index >= len(rhs):
                stack.pop()
                active.discard(rule_id)
                continue
            frame[2] = index + 1
            tag, value = rhs[index]
            if tag == "T":
                out.append(value)
                if max_symbols is not None and len(out) > max_symbols:
                    raise ProfileFormatError(
                        f"grammar expands past the claimed {max_symbols} symbols"
                    )
            elif tag == "R":
                child = str(value)
                if child in active:
                    raise ProfileFormatError(
                        f"grammar cycle through rule {child!r}"
                    )
                child_rhs = productions.get(child)
                if child_rhs is None:
                    raise ProfileFormatError(f"undefined rule {child!r}")
                stack.append([child, child_rhs, 0])
                active.add(child)
            else:
                raise ProfileFormatError(f"bad symbol tag {tag!r}")
        return out
    except ProfileFormatError:
        raise
    except _DECODE_ERRORS as exc:
        raise ProfileFormatError(f"malformed grammar: {exc}") from exc


# -- WHOMP ----------------------------------------------------------------


def save_whomp(profile: WhompProfile, stream: IO[str]) -> None:
    document = {
        "format": "whomp",
        "version": FORMAT_VERSION,
        "access_count": profile.access_count,
        "capture_completeness": profile.capture_completeness,
        "quarantined": profile.quarantined,
        "grammars": {
            name: _grammar_to_json(grammar)
            for name, grammar in profile.grammars.items()
        },
        "base_addresses": [
            [group, serial, address]
            for (group, serial), address in sorted(profile.base_addresses.items())
        ],
        "lifetimes": [list(row) for row in profile.lifetimes],
        "group_labels": {str(k): v for k, v in profile.group_labels.items()},
    }
    json.dump(document, stream)


def load_whomp_streams(stream: IO[str]) -> Dict[str, object]:
    """Load a WHOMP profile as expanded dimension streams plus the
    auxiliary tables.

    The Sequitur grammar objects themselves are not reconstructed (the
    grammar is a compression artifact); consumers want the streams.
    Returns a dict with ``streams``, ``base_addresses``, ``lifetimes``,
    ``group_labels``, ``access_count``, ``capture_completeness``,
    ``quarantined``.
    """
    return _decode_whomp(_load_document(stream))


def _decode_whomp(document: Dict[str, object]) -> Dict[str, object]:
    _require_version(document, "whomp")
    try:
        access_count = _count_field(document, "access_count")
        streams = {
            name: _expand_productions(grammar_data, max_symbols=access_count)
            for name, grammar_data in document["grammars"].items()
        }
        missing = [name for name in DIMENSIONS if name not in streams]
        if missing:
            raise ProfileFormatError(f"missing dimension streams: {missing}")
        for name, values in streams.items():
            if len(values) != access_count:
                raise ProfileFormatError(
                    f"{name} stream has {len(values)} symbols, "
                    f"expected {access_count}"
                )
        base_addresses = {
            (group, serial): address
            for group, serial, address in document["base_addresses"]
        }
        return {
            "streams": streams,
            "base_addresses": base_addresses,
            "lifetimes": [tuple(row) for row in document["lifetimes"]],
            "group_labels": {
                int(k): v for k, v in document["group_labels"].items()
            },
            "access_count": access_count,
            "capture_completeness": document.get("capture_completeness", 1.0),
            "quarantined": document.get("quarantined", 0),
        }
    except ProfileFormatError:
        raise
    except _DECODE_ERRORS as exc:
        raise ProfileFormatError(f"malformed WHOMP profile: {exc}") from exc


# -- LEAP --------------------------------------------------------------------


def save_leap(profile: LeapProfile, stream: IO[str]) -> None:
    entries = []
    for (instruction, group), entry in sorted(profile.entries.items()):
        overflow = entry.overflow
        entries.append(
            {
                "instruction": instruction,
                "group": group,
                "total": entry.total_symbols,
                "summarized": entry.summarized,
                "lmads": [
                    [list(l.start), list(l.stride), l.count] for l in entry.lmads
                ],
                "overflow": {
                    "count": overflow.count,
                    "min": list(overflow.minimum) if overflow.minimum else None,
                    "max": list(overflow.maximum) if overflow.maximum else None,
                    "granularity": (
                        list(overflow.granularity) if overflow.granularity else None
                    ),
                },
            }
        )
    document = {
        "format": "leap",
        "version": FORMAT_VERSION,
        "budget": profile.budget,
        "access_count": profile.access_count,
        "capture_completeness": profile.capture_completeness,
        "quarantined": profile.quarantined,
        "entries": entries,
        "kinds": {str(k): v.value for k, v in profile.kinds.items()},
        "exec_counts": {str(k): v for k, v in profile.exec_counts.items()},
        "group_labels": {str(k): v for k, v in profile.group_labels.items()},
        "lifetimes": [list(row) for row in profile.lifetimes],
    }
    json.dump(document, stream)


def load_leap(stream: IO[str]) -> LeapProfile:
    return _decode_leap(_load_document(stream))


def _decode_leap(document: Dict[str, object]) -> LeapProfile:
    _require_version(document, "leap")
    try:
        entries: Dict[Tuple[int, int], LMADProfileEntry] = {}
        for record in document["entries"]:
            lmads = tuple(
                LMAD(tuple(start), tuple(stride), count)
                for start, stride, count in record["lmads"]
            )
            dims = lmads[0].dims if lmads else 3
            overflow = OverflowSummary(dims=dims)
            overflow.count = _count_field(record["overflow"], "count")
            if record["overflow"]["min"] is not None:
                overflow.minimum = tuple(record["overflow"]["min"])
                overflow.maximum = tuple(record["overflow"]["max"])
                overflow.granularity = tuple(record["overflow"]["granularity"])
            total = _count_field(record, "total")
            described = sum(l.count for l in lmads) + overflow.count
            if described != total:
                raise ProfileFormatError(
                    f"entry ({record['instruction']}, {record['group']}) "
                    f"describes {described} symbols but claims {total}"
                )
            entries[(record["instruction"], record["group"])] = LMADProfileEntry(
                lmads=lmads,
                overflow=overflow,
                total_symbols=total,
                summarized=bool(record.get("summarized", False)),
            )
        return LeapProfile(
            entries=entries,
            kinds={int(k): AccessKind(v) for k, v in document["kinds"].items()},
            exec_counts={int(k): v for k, v in document["exec_counts"].items()},
            group_labels={
                int(k): v for k, v in document["group_labels"].items()
            },
            access_count=_count_field(document, "access_count"),
            budget=document["budget"],
            lifetimes=[tuple(row) for row in document["lifetimes"]],
            capture_completeness=document.get("capture_completeness", 1.0),
            quarantined=document.get("quarantined", 0),
        )
    except ProfileFormatError:
        raise
    except _DECODE_ERRORS as exc:
        raise ProfileFormatError(f"malformed LEAP profile: {exc}") from exc


# -- dependence tables -------------------------------------------------------


def save_dependence(profile: DependenceProfile, stream: IO[str]) -> None:
    document = {
        "format": "dependence",
        "version": FORMAT_VERSION,
        "conflicts": [
            [store, load, count]
            for (store, load), count in sorted(profile.conflicts.items())
        ],
        "load_counts": {str(k): v for k, v in profile.load_counts.items()},
        "store_counts": {str(k): v for k, v in profile.store_counts.items()},
    }
    json.dump(document, stream)


def load_dependence(stream: IO[str]) -> DependenceProfile:
    return _decode_dependence(_load_document(stream))


def _decode_dependence(document: Dict[str, object]) -> DependenceProfile:
    if document.get("format") != "dependence":
        raise ProfileFormatError("not a dependence profile")
    try:
        return DependenceProfile(
            conflicts={
                (store, load): count
                for store, load, count in document["conflicts"]
            },
            load_counts={
                int(k): v for k, v in document["load_counts"].items()
            },
            store_counts={
                int(k): v for k, v in document["store_counts"].items()
            },
        )
    except ProfileFormatError:
        raise
    except _DECODE_ERRORS as exc:
        raise ProfileFormatError(f"malformed dependence profile: {exc}") from exc


# -- trace documents ----------------------------------------------------------

#: version of the TRACELINK trace document (see :mod:`repro.obs.trace`,
#: which builds them; decoding lives here so the store validates traces
#: exactly like profiles)
TRACE_FORMAT_VERSION = 1

_HEX_DIGITS = frozenset("0123456789abcdef")


def _decode_trace(document: Dict[str, object]) -> Dict[str, object]:
    """Validate a trace document; returns the document itself.

    Traces are consumed as plain data (the ``repro-obs`` renderers and
    the daemon's ``/tracez`` endpoint work straight off the dict), so
    decoding is validation: id well-formed, spans and events lists of
    objects, every span subtree sane.  Same contract as the profile
    decoders -- a valid document or :class:`ProfileFormatError`.
    """
    if document.get("format") != "trace":
        raise ProfileFormatError("not a trace document")
    version = document.get("version")
    if not isinstance(version, int) or not 1 <= version <= TRACE_FORMAT_VERSION:
        raise ProfileFormatError(f"unsupported trace version {version!r}")
    trace_id = document.get("trace_id")
    if (
        not isinstance(trace_id, str)
        or len(trace_id) != 32
        or not set(trace_id) <= _HEX_DIGITS
    ):
        raise ProfileFormatError(f"bad trace id {trace_id!r}")

    def check_span(span: object, depth: int = 0) -> None:
        if depth > 64:
            raise ProfileFormatError("span tree too deep")
        if not isinstance(span, dict) or not isinstance(span.get("name"), str):
            raise ProfileFormatError("malformed span node")
        for key in ("seconds", "start_ts", "end_ts"):
            value = span.get(key, 0.0)
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise ProfileFormatError(f"span {key} is not a number")
        children = span.get("children", [])
        if not isinstance(children, list):
            raise ProfileFormatError("span children is not a list")
        for child in children:
            check_span(child, depth + 1)

    try:
        spans = document["spans"]
        events = document["events"]
        if not isinstance(spans, list) or not isinstance(events, list):
            raise ProfileFormatError("trace spans/events must be lists")
        for span in spans:
            check_span(span)
        for event in events:
            if not isinstance(event, dict) or not isinstance(
                event.get("kind"), str
            ):
                raise ProfileFormatError("malformed event record")
    except ProfileFormatError:
        raise
    except _DECODE_ERRORS as exc:
        raise ProfileFormatError(f"malformed trace document: {exc}") from exc
    return document


def save_trace(document: Dict[str, object], stream: IO[str]) -> None:
    json.dump(_decode_trace(document), stream, sort_keys=True)


def load_trace(stream: IO[str]) -> Dict[str, object]:
    return _decode_trace(_load_document(stream))


# -- path-level API -----------------------------------------------------------

_SAVERS = (
    (WhompProfile, save_whomp),
    (LeapProfile, save_leap),
    (DependenceProfile, save_dependence),
)

_DECODERS = {
    "whomp": _decode_whomp,
    "leap": _decode_leap,
    "dependence": _decode_dependence,
    "trace": _decode_trace,
}

#: format names the text-level API recognizes (sniffable documents)
FORMATS = tuple(sorted(_DECODERS))


def dumps(profile: object) -> str:
    """Serialize any supported profile to its canonical document text.

    This is exactly the content :func:`save` writes to disk; the profile
    store keys blobs by the sha256 of this text, so two ingests of the
    same profile deduplicate to one blob.
    """
    import io

    for cls, saver in _SAVERS:
        if isinstance(profile, cls):
            buffer = io.StringIO()
            saver(profile, buffer)
            return buffer.getvalue()
    if isinstance(profile, dict) and profile.get("format") == "trace":
        buffer = io.StringIO()
        save_trace(profile, buffer)
        return buffer.getvalue()
    raise TypeError(f"unsupported profile type {type(profile).__name__}")


def loads(text: str) -> object:
    """Decode a profile document from text, sniffing the format.

    The text-level twin of :func:`load`, with the same robustness
    contract: a valid profile or :class:`ProfileFormatError`, nothing in
    between.
    """
    import io

    document = _load_document(io.StringIO(text))
    fmt = document.get("format")
    decoder = _DECODERS.get(fmt)
    if decoder is None:
        raise ProfileFormatError(f"unknown profile format {fmt!r}")
    return decoder(document)


def sniff_format(text: str) -> str:
    """The ``format`` field of a profile document (cheap validity gate).

    Raises :class:`ProfileFormatError` when the text is not a JSON
    object carrying a recognized format name.
    """
    import io

    document = _load_document(io.StringIO(text))
    fmt = document.get("format")
    if fmt not in _DECODERS:
        raise ProfileFormatError(f"unknown profile format {fmt!r}")
    return fmt


def save(profile: object, path: str) -> None:
    """Serialize any supported profile to ``path`` atomically.

    The document is fully rendered in memory, written to a temp file in
    the target directory, fsynced, and renamed into place -- a crash at
    any instant leaves either the previous file or the complete new
    one, never a truncation.
    """
    atomic_write_text(path, dumps(profile))


def load(path: str) -> object:
    """Load any supported profile file, sniffing the ``format`` field.

    Returns what the format's loader returns: a stream dict for WHOMP
    (see :func:`load_whomp_streams`), a :class:`LeapProfile`, or a
    :class:`DependenceProfile`.  Raises :class:`ProfileFormatError` for
    anything unreadable or unrecognized (including an unreadable path).
    """
    try:
        with open(path) as handle:
            document = _load_document(handle)
    except OSError as exc:
        raise ProfileFormatError(f"cannot read {path!r}: {exc}") from exc
    fmt = document.get("format")
    decoder = _DECODERS.get(fmt)
    if decoder is None:
        raise ProfileFormatError(f"unknown profile format {fmt!r}")
    return decoder(document)
