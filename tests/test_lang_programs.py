"""Tests for the shipped mini-IR example programs: they must run,
return their documented values, and produce profile-worthy traces."""

import os

import pytest

from repro.core.cdc import translate_trace_list
from repro.lang.interp import run_source
from repro.postprocess.strides import LeapStrideAnalyzer
from repro.profilers.leap import LeapProfiler
from repro.profilers.whomp import WhompProfiler

PROGRAMS = os.path.join(
    os.path.dirname(__file__), os.pardir, "examples", "programs"
)


def run_program(name):
    with open(os.path.join(PROGRAMS, name)) as handle:
        return run_source(handle.read())


class TestLinkedListProgram:
    def test_result(self):
        result, __ = run_program("linked_list.mir")
        assert result == 2 * sum(range(64))

    def test_object_relative_structure(self):
        __, interp = run_program("linked_list.mir")
        translated = translate_trace_list(interp.process.trace)
        traversal = [a for a in translated if a.offset in (0, 16)]
        # two traversals over 64 nodes, plus the build stores
        assert len(traversal) > 2 * 64 * 2
        # accesses all hit the node group; the clutter group exists in
        # the OMC (allocated, never accessed)
        from repro.core.cdc import translate_trace
        from repro.core.omc import ObjectManager

        omc = ObjectManager()
        list(translate_trace(interp.process.trace, omc))
        assert len(omc.groups) == 2
        assert len({a.group for a in translated}) == 1

    def test_whomp_lossless(self):
        __, interp = run_program("linked_list.mir")
        trace = interp.process.trace
        profile = WhompProfiler().profile(trace)
        raw = [(e.instruction_id, e.address) for e in trace.accesses()]
        assert profile.reconstruct_accesses() == raw


class TestBinaryTreeProgram:
    def test_result_stable(self):
        result, __ = run_program("binary_tree.mir")
        assert result == 123  # pinned: documented in the program header

    def test_tree_nodes_form_one_group(self):
        __, interp = run_program("binary_tree.mir")
        translated = translate_trace_list(interp.process.trace)
        labels = set()
        from repro.core.omc import ObjectManager
        from repro.core.cdc import translate_trace

        omc = ObjectManager()
        list(translate_trace(interp.process.trace, omc))
        labels = {g.label for g in omc.groups}
        assert any("new tnode" in label for label in labels)

    def test_pointer_chase_defeats_lmads(self):
        __, interp = run_program("binary_tree.mir")
        profile = LeapProfiler().profile(interp.process.trace)
        # tree search is data-dependent: low capture, like mcf
        assert profile.accesses_captured() < 0.6


class TestMatrixProgram:
    def test_result(self):
        # sum over r,c of (r+c) for 40x40
        n = 40
        expected = sum(r + c for r in range(n) for c in range(n))
        result, __ = run_program("matrix.mir")
        assert result == expected

    def test_strides_identified(self):
        __, interp = run_program("matrix.mir")
        profile = LeapProfiler().profile(interp.process.trace)
        identified = LeapStrideAnalyzer().strongly_strided(profile)
        assert identified  # both loops are strongly strided


@pytest.mark.parametrize(
    "name", ["linked_list.mir", "binary_tree.mir", "matrix.mir"]
)
def test_programs_are_deterministic(name):
    first_result, first_interp = run_program(name)
    second_result, second_interp = run_program(name)
    assert first_result == second_result
    assert list(first_interp.process.trace) == list(second_interp.process.trace)
