"""Workload registry assembly.

Importing this module registers every built-in workload; experiments use
:data:`SPEC_BENCHMARKS` (the paper's seven SPEC2000 programs, in Table 1
order) and :func:`create` / :func:`spec_suite` to instantiate them.
"""

from __future__ import annotations

from typing import Dict, List

# Importing the modules has the side effect of populating REGISTRY.
from repro.workloads import (  # noqa: F401  (registration side effects)
    bzip2,
    crafty,
    gzip,
    mcf,
    micro,
    parser,
    twolf,
    vpr,
)
from repro.workloads.base import REGISTRY, Workload

#: The seven SPEC2000 stand-ins, in the paper's table order.
SPEC_BENCHMARKS = ("gzip", "vpr", "mcf", "crafty", "parser", "bzip2", "twolf")

#: Paper's display names for the benchmarks.
PAPER_NAMES: Dict[str, str] = {
    "gzip": "164.gzip",
    "vpr": "175.vpr",
    "mcf": "181.mcf",
    "crafty": "186.crafty",
    "parser": "197.parser",
    "bzip2": "256.bzip",
    "twolf": "300.twolf",
}


#: Convenience aliases accepted anywhere a workload name is.
ALIASES: Dict[str, str] = {"micro": "micro.array"}


def create(name: str, scale: float = 1.0, seed: int = 0) -> Workload:
    """Instantiate a registered workload by name (aliases resolve)."""
    return REGISTRY.create(ALIASES.get(name, name), scale=scale, seed=seed)


def spec_suite(scale: float = 1.0, seed: int = 0) -> List[Workload]:
    """The full SPEC stand-in suite at a common scale."""
    return [create(name, scale=scale, seed=seed) for name in SPEC_BENCHMARKS]


def all_names() -> List[str]:
    return REGISTRY.names()
