"""Tests for the omega-test-like LMAD intersection solver."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.omega import (
    SolutionSet,
    extended_gcd,
    intersect_lmads,
    solve_equality,
)
from repro.compression.lmad import LMAD


def brute_force_pairs(w_start, w_stride, w_count, r_start, r_stride, r_count):
    return {
        (k1, k2)
        for k1 in range(w_count)
        for k2 in range(r_count)
        if w_start + w_stride * k1 == r_start + r_stride * k2
    }


class TestExtendedGcd:
    def test_textbook(self):
        g, x, y = extended_gcd(240, 46)
        assert g == 2 and 240 * x + 46 * y == 2

    def test_zero_cases(self):
        assert extended_gcd(0, 5)[0] == 5
        assert extended_gcd(5, 0)[0] == 5

    @settings(max_examples=200, deadline=None)
    @given(st.integers(-500, 500), st.integers(-500, 500))
    def test_bezout_identity(self, a, b):
        g, x, y = extended_gcd(a, b)
        assert a * x + b * y == g
        assert g >= 0
        if a or b:
            assert a % g == 0 and b % g == 0


class TestSolveEquality:
    def test_no_integer_solution(self):
        assert solve_equality(0, 4, 10, 2, 4, 10).is_empty

    def test_simple_overlap(self):
        solution = solve_equality(0, 4, 10, 0, 8, 10)
        assert solution.count() == 5  # 0,8,16,24,32

    def test_unique_solution(self):
        solution = solve_equality(0, 0, 1, 0, 8, 10)
        assert solution.distinct_k2() == 1

    def test_constant_vs_constant_match(self):
        solution = solve_equality(5, 0, 3, 5, 0, 7)
        assert not solution.is_empty
        assert solution.distinct_k2() == 7

    def test_constant_vs_constant_mismatch(self):
        assert solve_equality(5, 0, 3, 6, 0, 7).is_empty

    def test_negative_strides(self):
        solution = solve_equality(100, -4, 10, 64, 4, 10)
        # writer: 100,96,...,64; reader: 64,68,...,100 -> 10 matches
        assert solution.count() == 10

    @settings(max_examples=300, deadline=None)
    @given(
        st.integers(-40, 40), st.integers(-8, 8), st.integers(1, 12),
        st.integers(-40, 40), st.integers(-8, 8), st.integers(1, 12),
    )
    def test_matches_brute_force(self, ws, wd, wc, rs, rd, rc):
        solution = solve_equality(ws, wd, wc, rs, rd, rc)
        expected = brute_force_pairs(ws, wd, wc, rs, rd, rc)
        if wd == 0 and rd == 0:
            # degenerate case: the set collapses to distinct-k2 semantics
            expected_k2 = {k2 for __, k2 in expected}
            assert solution.distinct_k2() == len(expected_k2)
            return
        got = set()
        if not solution.is_empty:
            for s in range(solution.s_min, solution.s_max + 1):
                got.add(
                    (solution.k1_0 + s * solution.q1, solution.k2_0 + s * solution.q2)
                )
        assert got == expected


class TestSolutionSet:
    def test_empty(self):
        empty = SolutionSet.empty()
        assert empty.is_empty
        assert empty.count() == 0
        assert empty.distinct_k2() == 0

    def test_progression(self):
        solution = solve_equality(0, 4, 10, 0, 8, 10)
        first, step, n = solution.k2_progression()
        values = {first + step * i for i in range(n)}
        assert values == {0, 1, 2, 3, 4}

    def test_progression_single(self):
        solution = solve_equality(8, 0, 5, 0, 8, 10)
        first, step, n = solution.k2_progression()
        assert (first, step, n) == (1, 0, 1)


def brute_force_intersection(writer, reader, equal_dims, time_dim):
    """Reference implementation by full enumeration."""
    conflicts = set()
    for k2 in range(reader.count):
        r = reader.element(k2)
        for k1 in range(writer.count):
            w = writer.element(k1)
            if all(w[d] == r[d] for d in equal_dims) and (
                time_dim is None or w[time_dim] < r[time_dim]
            ):
                conflicts.add(k2)
                break
    return conflicts


class TestIntersectLmads:
    def test_same_object_strided(self):
        writer = LMAD((0, 0, 100), (0, 8, 1), 10)
        reader = LMAD((0, 16, 200), (0, 8, 1), 5)
        solution = intersect_lmads(writer, reader, (0, 1), time_dim=2)
        assert solution.distinct_k2() == 5

    def test_different_objects_no_conflict(self):
        writer = LMAD((0, 0, 100), (0, 8, 1), 10)
        reader = LMAD((1, 0, 200), (0, 8, 1), 10)
        assert intersect_lmads(writer, reader, (0, 1), time_dim=2).is_empty

    def test_time_order_enforced(self):
        writer = LMAD((0, 0, 500), (0, 8, 1), 10)  # writes AFTER the reads
        reader = LMAD((0, 0, 100), (0, 8, 1), 10)
        assert intersect_lmads(writer, reader, (0, 1), time_dim=2).is_empty

    def test_partial_time_overlap(self):
        # writer at times 100..109 writing offsets 0..72; reader reads
        # the same offsets at times 105..114: only later reads conflict.
        writer = LMAD((0, 0, 100), (0, 8, 1), 10)
        reader = LMAD((0, 0, 105), (0, 8, 1), 10)
        solution = intersect_lmads(writer, reader, (0, 1), time_dim=2)
        # read k2 touches offset 8*k2 written at time 100+k2 < 105+k2: all 10
        assert solution.distinct_k2() == 10

    def test_constant_location_rmw(self):
        # scalar read-modify-write: same address, write precedes read
        writer = LMAD((0, 0, 10), (0, 0, 3), 100)
        reader = LMAD((0, 0, 11), (0, 0, 3), 100)
        solution = intersect_lmads(writer, reader, (0, 1), time_dim=2)
        assert solution.distinct_k2() == 100

    def test_dimension_mismatch(self):
        import pytest

        with pytest.raises(ValueError):
            intersect_lmads(LMAD((0,), (1,), 2), LMAD((0, 0), (1, 1), 2), (0,))

    def test_needs_equality_dims(self):
        import pytest

        with pytest.raises(ValueError):
            intersect_lmads(LMAD((0,), (1,), 2), LMAD((0,), (1,), 2), ())

    @settings(max_examples=200, deadline=None)
    @given(
        st.integers(0, 2), st.integers(-2, 2), st.integers(0, 48),
        st.integers(-8, 8), st.integers(1, 10),
        st.integers(0, 2), st.integers(-2, 2), st.integers(0, 48),
        st.integers(-8, 8), st.integers(1, 10),
    )
    def test_matches_brute_force_with_monotone_time(
        self, wo, wdo, wf, wdf, wc, ro, rdo, rf, rdf, rc
    ):
        """Random LMAD pairs with increasing time components (as LEAP
        produces) must match exhaustive enumeration of distinct k2."""
        writer = LMAD((wo, wf, 100), (wdo, wdf, 3), wc)
        reader = LMAD((ro, rf, 104), (rdo, rdf, 5), rc)
        solution = intersect_lmads(writer, reader, (0, 1), time_dim=2)
        expected = brute_force_intersection(writer, reader, (0, 1), 2)
        assert solution.distinct_k2() == len(expected)


class TestEdgeCases:
    """Degenerate descriptor shapes: zero strides, single-element
    streams, negative strides in every position."""

    def test_zero_stride_both_sides_same_location(self):
        # both pin offset 16; the one-parameter family collapses to
        # distinct-k2 semantics: every reader iteration conflicts
        solution = solve_equality(16, 0, 6, 16, 0, 9)
        assert not solution.is_empty
        assert solution.distinct_k2() == 9

    def test_zero_stride_writer_moving_reader(self):
        # writer stays at 24, reader sweeps 0,8,...,72: one hit
        solution = solve_equality(24, 0, 5, 0, 8, 10)
        assert solution.distinct_k2() == 1
        assert (0, 3) in {
            (k1, k2)
            for k1 in range(5)
            for k2 in range(10)
            if 24 == 8 * k2
        }

    def test_single_iteration_both(self):
        assert not solve_equality(8, 0, 1, 8, 0, 1).is_empty
        assert solve_equality(8, 0, 1, 16, 0, 1).is_empty

    def test_single_iteration_lmads(self):
        writer = LMAD((0, 8, 100), (0, 0, 0), 1)
        hit = LMAD((0, 8, 200), (0, 0, 0), 1)
        miss = LMAD((0, 16, 200), (0, 0, 0), 1)
        assert not intersect_lmads(writer, hit, (0, 1), time_dim=2).is_empty
        assert intersect_lmads(writer, miss, (0, 1), time_dim=2).is_empty

    def test_negative_stride_on_object_dimension(self):
        # writer walks objects 5,4,3; reader walks 3,4,5 at offset 0
        writer = LMAD((5, 0, 100), (-1, 0, 1), 3)
        reader = LMAD((3, 0, 200), (1, 0, 1), 3)
        solution = intersect_lmads(writer, reader, (0, 1), time_dim=2)
        assert solution.distinct_k2() == 3

    def test_both_strides_negative(self):
        solution = solve_equality(72, -8, 10, 72, -8, 10)
        assert solution.count() == 10

    def test_mixed_sign_disjoint(self):
        # writer descends 40,32,24; reader ascends 48,56,64: no overlap
        assert solve_equality(40, -8, 3, 48, 8, 3).is_empty

    @settings(max_examples=300, deadline=None)
    @given(
        st.integers(-20, 20),
        st.sampled_from([-8, -4, -1, 0, 1, 4, 8]),
        st.integers(1, 10),
        st.integers(-20, 20),
        st.sampled_from([-8, -4, -1, 0, 1, 4, 8]),
        st.integers(1, 10),
    )
    def test_degenerate_strides_match_brute_force(
        self, ws, wd, wc, rs, rd, rc
    ):
        solution = solve_equality(ws, wd, wc, rs, rd, rc)
        expected = brute_force_pairs(ws, wd, wc, rs, rd, rc)
        assert solution.distinct_k2() == len({k2 for __, k2 in expected})
        if wd == 0 and rd == 0:
            return  # one-parameter set cannot enumerate the full product
        got = set()
        if not solution.is_empty:
            for s in range(solution.s_min, solution.s_max + 1):
                got.add(
                    (
                        solution.k1_0 + s * solution.q1,
                        solution.k2_0 + s * solution.q2,
                    )
                )
        assert got == expected

    @settings(max_examples=200, deadline=None)
    @given(
        st.integers(0, 2),
        st.integers(-16, 16),
        st.sampled_from([-8, 0, 8]),
        st.integers(1, 6),
        st.integers(0, 2),
        st.integers(-16, 16),
        st.sampled_from([-8, 0, 8]),
        st.integers(1, 6),
    )
    def test_untimed_intersection_matches_brute_force(
        self, wobj, woff, wstride, wcount, robj, roff, rstride, rcount
    ):
        """2-D (object, offset) intersection with no time dimension --
        the shape the static dependence tester uses."""
        writer = LMAD((wobj, woff), (0, wstride), wcount)
        reader = LMAD((robj, roff), (0, rstride), rcount)
        solution = intersect_lmads(writer, reader, (0, 1))
        expected = {
            (k1, k2)
            for k1 in range(wcount)
            for k2 in range(rcount)
            if wobj == robj and woff + wstride * k1 == roff + rstride * k2
        }
        assert solution.is_empty == (not expected)
        if expected:
            assert solution.distinct_k2() == len({k2 for __, k2 in expected})
