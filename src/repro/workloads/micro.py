"""Micro-workloads.

Small single-pattern programs used by unit tests, examples, and the
illustrative figures.  :class:`LinkedListTraversal` is the paper's
running example (Figures 1 and 3): a linked list built through a real
allocator, then repeatedly traversed reading the ``data`` and ``next``
fields, with a periodic update store.
"""

from __future__ import annotations

from typing import List

from repro.core.events import AccessKind
from repro.runtime.process import Process
from repro.workloads.base import REGISTRY, Workload

#: byte offsets of the fields of the example list node ``struct node {
#: long data; long pad; struct node *next; }`` -- data at 0, next at 16.
NODE_SIZE = 24
DATA_OFFSET = 0
NEXT_OFFSET = 16


@REGISTRY.register
class LinkedListTraversal(Workload):
    """The paper's Figure 1/3 example: build, traverse, update a list."""

    name = "micro.list"
    description = "linked list build + traversals (Figures 1 and 3)"

    def __init__(
        self, scale: float = 1.0, seed: int = 0, nodes: int = 64, sweeps: int = 16
    ) -> None:
        super().__init__(scale=scale, seed=seed)
        self.nodes = nodes
        self.sweeps = sweeps

    def run(self, process: Process) -> None:
        rng = self.rng()
        ld_data = process.instruction("traverse.load_data", AccessKind.LOAD)
        ld_next = process.instruction("traverse.load_next", AccessKind.LOAD)
        st_data = process.instruction("update.store_data", AccessKind.STORE)
        st_init_data = process.instruction("init.store_data", AccessKind.STORE)
        st_init_next = process.instruction("init.store_next", AccessKind.STORE)

        # Interleave unrelated allocations so the nodes are scattered --
        # the confounding artifact of Figure 1.
        nodes: List[int] = []
        clutter: List[int] = []
        for index in range(self.scaled(self.nodes)):
            node = process.malloc("list.new_node", NODE_SIZE, type_name="node")
            process.store(st_init_data, node + DATA_OFFSET)
            process.store(st_init_next, node + NEXT_OFFSET)
            nodes.append(node)
            if rng.random() < 0.5:
                clutter.append(
                    process.malloc("clutter.alloc", 8 * rng.randint(1, 6))
                )
            if clutter and rng.random() < 0.3:
                process.free(clutter.pop(rng.randrange(len(clutter))))

        for sweep in range(self.scaled(self.sweeps)):
            for node in nodes:
                process.load(ld_data, node + DATA_OFFSET)
                process.load(ld_next, node + NEXT_OFFSET)
                if sweep % 4 == 0:
                    process.store(st_data, node + DATA_OFFSET)

        for node in nodes:
            process.free(node)
        for block in clutter:
            process.free(block)


@REGISTRY.register
class ArraySweep(Workload):
    """Sequential read-modify-write sweeps over one static array."""

    name = "micro.array"
    description = "strided sweeps over a static array"

    def __init__(
        self,
        scale: float = 1.0,
        seed: int = 0,
        elements: int = 512,
        sweeps: int = 8,
        stride: int = 8,
    ) -> None:
        super().__init__(scale=scale, seed=seed)
        self.elements = elements
        self.sweeps = sweeps
        self.stride = stride

    def run(self, process: Process) -> None:
        elements = self.scaled(self.elements)
        process.declare_static("table", elements * self.stride, type_name="long[]")
        base = process.static("table").address
        ld = process.instruction("sweep.load", AccessKind.LOAD)
        st = process.instruction("sweep.store", AccessKind.STORE)
        for __ in range(self.scaled(self.sweeps)):
            for index in range(elements):
                address = base + index * self.stride
                process.load(ld, address)
                process.store(st, address)


@REGISTRY.register
class MatrixTraversal(Workload):
    """Row-major writes then column-major reads of a heap matrix --
    a classic two-stride pattern."""

    name = "micro.matrix"
    description = "row-major writes, column-major reads of a matrix"

    def __init__(
        self, scale: float = 1.0, seed: int = 0, rows: int = 48, cols: int = 48
    ) -> None:
        super().__init__(scale=scale, seed=seed)
        self.rows = rows
        self.cols = cols

    def run(self, process: Process) -> None:
        rows = self.scaled(self.rows)
        cols = self.scaled(self.cols)
        matrix = process.malloc("matrix.alloc", rows * cols * 8, type_name="double[]")
        st = process.instruction("fill.store", AccessKind.STORE)
        ld = process.instruction("transpose.load", AccessKind.LOAD)
        for r in range(rows):
            for c in range(cols):
                process.store(st, matrix + (r * cols + c) * 8)
        for c in range(cols):
            for r in range(rows):
                process.load(ld, matrix + (r * cols + c) * 8)
        process.free(matrix)


@REGISTRY.register
class HashProbe(Workload):
    """Pseudo-random probes into a static hash table: the canonical
    irregular (non-strided) pattern."""

    name = "micro.hash"
    description = "random probes into a static hash table"

    def __init__(
        self, scale: float = 1.0, seed: int = 0, buckets: int = 1024, probes: int = 4096
    ) -> None:
        super().__init__(scale=scale, seed=seed)
        self.buckets = buckets
        self.probes = probes

    def run(self, process: Process) -> None:
        buckets = self.scaled(self.buckets)
        process.declare_static("htab", buckets * 16, type_name="bucket[]")
        base = process.static("htab").address
        rng = self.rng()
        ld = process.instruction("probe.load", AccessKind.LOAD)
        st = process.instruction("insert.store", AccessKind.STORE)
        for __ in range(self.scaled(self.probes)):
            bucket = rng.randrange(buckets)
            process.load(ld, base + bucket * 16)
            if rng.random() < 0.25:
                process.store(st, base + bucket * 16 + 8)
