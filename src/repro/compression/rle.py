"""Delta + run-length codec: the cheap alternative stream compressor.

Section 2.3 notes the SCC's compressor is pluggable: "Examples of such
compression schemes include linear compression, Sequitur compression,
and others."  This module provides the "others": a classic delta + RLE
codec that encodes a stream as runs of equal successive deltas.

It is the natural foil for Sequitur in the compressor ablation: it
devours strided streams (a whole arithmetic sweep is one run) but,
unlike a grammar, cannot exploit *repetition of composite patterns* --
a repeated motif of mixed deltas costs full price every time.  The
ablation bench quantifies exactly that gap on the decomposed
object-relative streams.

The codec satisfies the same informal stream-compressor protocol as
:class:`~repro.compression.sequitur.SequiturGrammar` (``feed``,
``expand``, ``size``, ``size_bytes_varint``), so it can be dropped into
WHOMP via ``WhompProfiler(compressor=DeltaRleCodec)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional


@dataclass(frozen=True)
class Run:
    """``count`` successive symbols each ``delta`` apart, starting at
    ``first`` (``delta`` is meaningless when ``count == 1``)."""

    first: int
    delta: int
    count: int


def _varint_len(value: int) -> int:
    encoded = value * 2 if value >= 0 else -value * 2 - 1
    length = 1
    while encoded >= 0x80:
        encoded >>= 7
        length += 1
    return length


class DeltaRleCodec:
    """Online delta + run-length encoder for integer streams.

    >>> codec = DeltaRleCodec()
    >>> codec.feed_all([0, 8, 16, 24, 5, 5, 5])
    >>> codec.expand()
    [0, 8, 16, 24, 5, 5, 5]
    >>> codec.size()
    2
    """

    def __init__(self) -> None:
        self.runs: List[Run] = []
        self._open_first: Optional[int] = None
        self._open_delta: Optional[int] = None
        self._open_count = 0
        self._last: Optional[int] = None
        self._tokens_fed = 0

    # -- encoding --------------------------------------------------------

    def feed(self, token: int) -> None:
        if not isinstance(token, int) or isinstance(token, bool):
            raise TypeError("DeltaRleCodec compresses integer streams")
        self._tokens_fed += 1
        if self._open_first is None:
            self._open_first = token
            self._open_count = 1
        elif self._open_count == 1:
            self._open_delta = token - self._open_first
            self._open_count = 2
        elif token - self._last == self._open_delta:
            self._open_count += 1
        else:
            self._close()
            self._open_first = token
            self._open_count = 1
        self._last = token

    def feed_all(self, tokens: Iterable[int]) -> None:
        for token in tokens:
            self.feed(token)

    def _close(self) -> None:
        if self._open_first is None:
            return
        self.runs.append(
            Run(self._open_first, self._open_delta or 0, self._open_count)
        )
        self._open_first = None
        self._open_delta = None
        self._open_count = 0

    def _all_runs(self) -> List[Run]:
        if self._open_first is None:
            return self.runs
        open_run = Run(self._open_first, self._open_delta or 0, self._open_count)
        return self.runs + [open_run]

    # -- protocol --------------------------------------------------------

    @property
    def tokens_fed(self) -> int:
        return self._tokens_fed

    def size(self) -> int:
        """Number of runs (the codec's symbol count)."""
        return len(self._all_runs())

    def size_bytes(self, bytes_per_symbol: int = 4) -> int:
        """Fixed-width size: 3 fields per run."""
        return self.size() * 3 * bytes_per_symbol

    def size_bytes_varint(self) -> int:
        """Serialized size: first is delta-coded against the previous
        run's last value; delta and count are varints."""
        total = 0
        previous_end = 0
        for run in self._all_runs():
            total += _varint_len(run.first - previous_end)
            total += _varint_len(run.delta)
            total += _varint_len(run.count)
            previous_end = run.first + run.delta * (run.count - 1)
        return total

    def expand(self) -> List[int]:
        out: List[int] = []
        for run in self._all_runs():
            out.extend(run.first + run.delta * k for k in range(run.count))
        return out


def compress(tokens: Iterable[int]) -> DeltaRleCodec:
    """One-shot convenience."""
    codec = DeltaRleCodec()
    codec.feed_all(tokens)
    return codec
