"""Tests for the mini-IR parser."""

import pytest

from repro.lang import ast
from repro.lang.parser import ParseError, parse


class TestDeclarations:
    def test_struct(self):
        program = parse("struct node { int data; node* next; }")
        struct = program.structs[0]
        assert struct.name == "node"
        assert [f.name for f in struct.fields] == ["data", "next"]
        assert struct.fields[1].type_expr.pointer_depth == 1

    def test_global(self):
        program = parse("global int[64] table;")
        declaration = program.globals[0]
        assert declaration.name == "table"
        assert declaration.type_expr.array_length == 64

    def test_function_signature(self):
        program = parse("fn f(a: int, b: node*): int { }")
        function = program.functions[0]
        assert function.name == "f"
        assert [p.name for p in function.params] == ["a", "b"]
        assert function.return_type.name == "int"

    def test_void_function(self):
        program = parse("fn f() { }")
        assert program.functions[0].return_type is None

    def test_program_lookup(self):
        program = parse("fn a() { } fn b() { }")
        assert program.function("b").name == "b"
        with pytest.raises(KeyError):
            program.function("c")

    def test_unexpected_toplevel(self):
        with pytest.raises(ParseError):
            parse("return 1;")


class TestStatements:
    def test_var_with_initializer(self):
        program = parse("fn f() { var x: int = 3; }")
        statement = program.functions[0].body[0]
        assert isinstance(statement, ast.VarDecl)
        assert statement.initializer.value == 3

    def test_assignment(self):
        program = parse("fn f(p: node*) { p->data = 1; }")
        statement = program.functions[0].body[0]
        assert isinstance(statement, ast.Assign)
        assert isinstance(statement.target, ast.FieldAccess)

    def test_if_else_chain(self):
        program = parse(
            "fn f(x: int) { if (x > 0) { } else if (x < 0) { } "
            "else { x = 0; } }"
        )
        outer = program.functions[0].body[0]
        assert isinstance(outer, ast.If)
        nested = outer.else_body[0]
        assert isinstance(nested, ast.If)
        assert len(nested.else_body) == 1

    def test_while(self):
        program = parse("fn f() { while (1) { break; continue; } }")
        loop = program.functions[0].body[0]
        assert isinstance(loop, ast.While)
        assert isinstance(loop.body[0], ast.Break)
        assert isinstance(loop.body[1], ast.Continue)

    def test_for_desugars(self):
        program = parse("fn f() { for (var i: int = 0; i < 3; i = i + 1) { } }")
        wrapper = program.functions[0].body[0]
        # the for loop carries its init and a while loop with a step
        assert hasattr(wrapper, "init") and hasattr(wrapper, "loop")
        assert wrapper.loop.step is not None

    def test_for_without_init(self):
        program = parse("fn f(i: int) { for (; i < 3; i = i + 1) { } }")
        assert isinstance(program.functions[0].body[0], ast.While)

    def test_delete(self):
        program = parse("fn f(p: node*) { delete p; }")
        assert isinstance(program.functions[0].body[0], ast.Delete)

    def test_return_forms(self):
        program = parse("fn f(): int { return 1; } fn g() { return; }")
        assert program.function("f").body[0].value.value == 1
        assert program.function("g").body[0].value is None

    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse("fn f() { var x: int = 1 }")


class TestExpressions:
    def body_expr(self, text):
        program = parse(f"fn f(a: int, b: int, c: int, p: node*) {{ {text}; }}")
        statement = program.functions[0].body[0]
        return statement.expr if isinstance(statement, ast.ExprStmt) else statement

    def test_precedence_mul_over_add(self):
        expr = self.body_expr("a + b * c")
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_precedence_comparison_over_logic(self):
        expr = self.body_expr("a < b && b < c")
        assert expr.op == "&&"
        assert expr.left.op == "<"

    def test_parentheses(self):
        expr = self.body_expr("(a + b) * c")
        assert expr.op == "*"
        assert expr.left.op == "+"

    def test_unary(self):
        expr = self.body_expr("-a + !b")
        assert expr.left.op == "-"
        assert expr.right.op == "!"

    def test_postfix_chain(self):
        expr = self.body_expr("p->next->data")
        assert isinstance(expr, ast.FieldAccess)
        assert expr.field_name == "data"
        assert expr.base.field_name == "next"

    def test_index_chain(self):
        expr = self.body_expr("p[1][2]")
        assert isinstance(expr, ast.Index)
        assert isinstance(expr.base, ast.Index)

    def test_call_with_args(self):
        expr = self.body_expr("f(a, b + 1)")
        assert isinstance(expr, ast.Call)
        assert len(expr.args) == 2

    def test_new_scalar(self):
        expr = self.body_expr("new node")
        assert isinstance(expr, ast.New)
        assert expr.count is None

    def test_new_array_with_expression_count(self):
        expr = self.body_expr("new int[a + 1]")
        assert isinstance(expr, ast.New)
        assert isinstance(expr.count, ast.Binary)

    def test_address_of(self):
        expr = self.body_expr("&p->data")
        assert isinstance(expr, ast.AddressOf)

    def test_null_true_false(self):
        assert isinstance(self.body_expr("null"), ast.NullLiteral)
        assert self.body_expr("true").value == 1
        assert self.body_expr("false").value == 0

    def test_hex_literal(self):
        assert self.body_expr("0x10").value == 16

    def test_dangling_operator(self):
        with pytest.raises(ParseError):
            parse("fn f() { var x: int = 1 + ; }")
