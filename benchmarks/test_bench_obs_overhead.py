"""TRACELINK overhead benchmark.

The paper's dilation discipline, applied to our own observability: a
fully *traced* pipeline run -- live :class:`~repro.telemetry.Telemetry`
with a trace context attached, every span stamped with trace/span ids
and wall-clock endpoints, and one structured event emitted per stage
exit into the bounded ring -- must stay within 10% of the untraced
:class:`~repro.telemetry.NullTelemetry` baseline.  If tracing ever
costs more than that, it stops being something we can leave on for the
scaling experiments, and every later PR's Table 1 numbers inherit the
skew.

Methodology matches ``test_bench_telemetry_overhead.py``: best-of-N
wall times for both configurations, ratio recorded in ``extra_info``.
The traced configuration pays the whole TRACELINK path, including
:func:`~repro.obs.start_tracing` / :func:`~repro.obs.finish_tracing`
(context setup, event-log construction, trace-document assembly).
"""

import time

from repro.obs import finish_tracing, set_current, start_tracing
from repro.profilers.leap import LeapProfiler
from repro.profilers.whomp import WhompProfiler
from repro.telemetry import Telemetry
from repro.workloads.registry import create

#: The acceptance bound: traced vs untraced wall time.  Span stamping
#: is O(spans) and event emission O(stage exits), both dwarfed by the
#: per-access profiling work, so 10% is generous headroom, not a goal.
MAX_TRACED_DILATION = 1.10

ROUNDS = 5


def _micro_trace():
    return create("micro.array", scale=2.0).trace()


def _best_of(function, rounds=ROUNDS):
    timings = []
    for __ in range(rounds):
        start = time.perf_counter()
        function()
        timings.append(time.perf_counter() - start)
    return min(timings)


def _traced_run(profiler_class, trace):
    telemetry = Telemetry()
    context, events = start_tracing(telemetry)
    try:
        profiler_class(telemetry=telemetry).profile(trace)
        finish_tracing(telemetry, context, events)
    finally:
        set_current(None)  # never leak ambient state between rounds


def _measure(benchmark, profiler_class):
    trace = _micro_trace()
    profiler_class().profile(trace)  # warm
    null_seconds = _best_of(lambda: profiler_class().profile(trace))
    _traced_run(profiler_class, trace)  # warm
    benchmark.pedantic(
        lambda: _traced_run(profiler_class, trace), rounds=3, iterations=1
    )
    traced_seconds = _best_of(lambda: _traced_run(profiler_class, trace))
    dilation = traced_seconds / null_seconds
    benchmark.extra_info["null_seconds"] = null_seconds
    benchmark.extra_info["traced_seconds"] = traced_seconds
    benchmark.extra_info["tracing_dilation"] = dilation
    assert dilation < MAX_TRACED_DILATION


def test_whomp_tracing_dilation(benchmark):
    _measure(benchmark, WhompProfiler)


def test_leap_tracing_dilation(benchmark):
    _measure(benchmark, LeapProfiler)
