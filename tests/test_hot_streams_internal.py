"""Deeper tests of hot-stream grammar accounting."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.sequitur import compress
from repro.core.events import AccessKind
from repro.core.tuples import ObjectRelativeAccess
from repro.postprocess.hot_streams import (
    HotStream,
    _expansions,
    _rule_occurrences,
    extract_hot_streams,
)


def access(group, serial, time):
    return ObjectRelativeAccess(0, group, serial, 0, time, 8, AccessKind.LOAD)


class TestRuleOccurrences:
    def test_paper_grammar(self):
        # "abcbcabcbc": S -> AA, A -> aBB, B -> bc
        grammar = compress("abcbcabcbc")
        counts = _rule_occurrences(grammar)
        expansions = _expansions(grammar)
        # every rule's occurrences * length summed over terminals equals
        # the input length when weighted by expansion containment; the
        # direct check: occurrences of A is 2 and of B is 4
        by_length = {len(expansions[rid]): counts[rid] for rid in counts}
        assert by_length[10] == 1  # start rule
        assert by_length[5] == 2  # A expands to abcbc
        assert by_length[2] == 4  # B expands to bc

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.integers(0, 4), max_size=200))
    def test_occurrence_times_length_bounded_by_input(self, tokens):
        grammar = compress(tokens)
        counts = _rule_occurrences(grammar)
        expansions = _expansions(grammar)
        for rule in grammar.rules():
            if rule is grammar.start:
                continue
            heat = counts[rule.id] * len(expansions[rule.id])
            # a rule's expansions are disjoint substrings of the input
            assert heat <= len(tokens)

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.integers(0, 4), max_size=200))
    def test_occurrences_reconstruct_terminal_counts(self, tokens):
        """Summing (rule occurrences x terminal multiplicity in the
        rule's direct RHS) over all rules equals the input length."""
        grammar = compress(tokens)
        counts = _rule_occurrences(grammar)
        total = 0
        for rule in grammar.rules():
            direct_terminals = sum(
                1 for s in rule.symbols() if not s.is_nonterminal
            )
            total += counts[rule.id] * direct_terminals
        assert total == len(tokens)


class TestExtraction:
    def test_duplicate_collapse(self):
        # three field accesses to each object = one visit each
        stream = []
        time = 0
        for __ in range(6):
            for serial in (0, 1, 2):
                for __field in range(3):
                    stream.append(access(0, serial, time))
                    time += 1
        hot = extract_hot_streams(stream, top=3)
        assert hot
        assert hot[0].references == ((0, 0), (0, 1), (0, 2))
        assert hot[0].occurrences >= 5

    def test_length_filters(self):
        stream = [access(0, s % 4, t) for t, s in enumerate(range(400))]
        short_only = extract_hot_streams(stream, min_length=2, max_length=2)
        for hs in short_only:
            assert hs.length == 2

    def test_hotstream_dataclass(self):
        hs = HotStream(((0, 1), (0, 2)), 10)
        assert hs.length == 2
        assert hs.heat == 20
