"""Address-range index for live objects.

Section 3.1: "To speed up the lookup process in the OMC, the profiler
uses an auxiliary B-tree-like data structure which stores the range of
addresses that each object takes up.  When the program de-allocates an
object, the profiler removes elements from this tree."

This module provides that structure.  :class:`BTreeMap` is a classic
in-memory B-tree (CLRS-style, minimum degree ``t``) with insert, delete,
exact and *floor* lookup; :class:`IntervalIndex` layers the live-object
semantics on top: non-overlapping ``[start, end)`` ranges keyed by start
address, where resolving an address means a floor lookup followed by a
range check.
"""

from __future__ import annotations

from typing import Any, Generic, Iterator, List, Optional, Tuple, TypeVar

V = TypeVar("V")


class _Node:
    """One B-tree node; ``children is None`` marks a leaf."""

    __slots__ = ("keys", "values", "children")

    def __init__(self, leaf: bool) -> None:
        self.keys: List[int] = []
        self.values: List[Any] = []
        self.children: Optional[List["_Node"]] = None if leaf else []

    @property
    def leaf(self) -> bool:
        return self.children is None


class BTreeMap(Generic[V]):
    """An integer-keyed ordered map backed by a B-tree.

    Supports the three operations the OMC needs -- :meth:`insert`,
    :meth:`delete`, and :meth:`floor_item` (greatest key ``<=`` query) --
    plus ordered iteration for diagnostics.

    ``min_degree`` is the CLRS ``t``: every node except the root holds
    between ``t-1`` and ``2t-1`` keys.
    """

    def __init__(self, min_degree: int = 16) -> None:
        if min_degree < 2:
            raise ValueError("B-tree minimum degree must be >= 2")
        self._t = min_degree
        self._root = _Node(leaf=True)
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __contains__(self, key: int) -> bool:
        return self._has_key(key)

    # -- lookup ---------------------------------------------------------

    def get(self, key: int, default: Optional[V] = None) -> Optional[V]:
        node = self._root
        while True:
            index = _lower_bound(node.keys, key)
            if index < len(node.keys) and node.keys[index] == key:
                return node.values[index]
            if node.leaf:
                return default
            node = node.children[index]

    def _has_key(self, key: int) -> bool:
        sentinel = object()
        return self.get(key, sentinel) is not sentinel  # type: ignore[arg-type]

    def floor_item(self, key: int) -> Optional[Tuple[int, V]]:
        """Return the ``(k, value)`` pair with the greatest ``k <= key``."""
        node = self._root
        best: Optional[Tuple[int, V]] = None
        while True:
            index = _lower_bound(node.keys, key)
            if index < len(node.keys) and node.keys[index] == key:
                return key, node.values[index]
            if index > 0:
                best = (node.keys[index - 1], node.values[index - 1])
            if node.leaf:
                return best
            node = node.children[index]

    def items(self) -> Iterator[Tuple[int, V]]:
        """All pairs in ascending key order."""
        yield from self._walk(self._root)

    def _walk(self, node: _Node) -> Iterator[Tuple[int, V]]:
        if node.leaf:
            yield from zip(node.keys, node.values)
            return
        for index, key in enumerate(node.keys):
            yield from self._walk(node.children[index])
            yield key, node.values[index]
        yield from self._walk(node.children[-1])

    # -- insertion --------------------------------------------------------

    def insert(self, key: int, value: V) -> None:
        """Insert or overwrite ``key``."""
        root = self._root
        if len(root.keys) == 2 * self._t - 1:
            new_root = _Node(leaf=False)
            new_root.children.append(root)
            self._split_child(new_root, 0)
            self._root = new_root
        self._insert_nonfull(self._root, key, value)

    def _split_child(self, parent: _Node, index: int) -> None:
        t = self._t
        child = parent.children[index]
        sibling = _Node(leaf=child.leaf)
        sibling.keys = child.keys[t:]
        sibling.values = child.values[t:]
        if not child.leaf:
            sibling.children = child.children[t:]
            child.children = child.children[:t]
        parent.keys.insert(index, child.keys[t - 1])
        parent.values.insert(index, child.values[t - 1])
        parent.children.insert(index + 1, sibling)
        child.keys = child.keys[: t - 1]
        child.values = child.values[: t - 1]

    def _insert_nonfull(self, node: _Node, key: int, value: V) -> None:
        while True:
            index = _lower_bound(node.keys, key)
            if index < len(node.keys) and node.keys[index] == key:
                node.values[index] = value
                return
            if node.leaf:
                node.keys.insert(index, key)
                node.values.insert(index, value)
                self._size += 1
                return
            if len(node.children[index].keys) == 2 * self._t - 1:
                self._split_child(node, index)
                if key == node.keys[index]:
                    node.values[index] = value
                    return
                if key > node.keys[index]:
                    index += 1
            node = node.children[index]

    # -- deletion -----------------------------------------------------------

    def delete(self, key: int) -> V:
        """Remove ``key`` and return its value; raise ``KeyError`` if absent."""
        value = self._delete(self._root, key)
        if not self._root.keys and not self._root.leaf:
            self._root = self._root.children[0]
        self._size -= 1
        return value

    def _delete(self, node: _Node, key: int) -> V:
        t = self._t
        index = _lower_bound(node.keys, key)
        if index < len(node.keys) and node.keys[index] == key:
            if node.leaf:
                node.keys.pop(index)
                return node.values.pop(index)
            return self._delete_internal(node, index)
        if node.leaf:
            raise KeyError(key)
        child = node.children[index]
        if len(child.keys) == t - 1:
            index = self._grow_child(node, index)
            # After merging, the key may now live in this node.
            new_index = _lower_bound(node.keys, key)
            if new_index < len(node.keys) and node.keys[new_index] == key:
                return self._delete_internal(node, new_index)
            child = node.children[new_index]
        else:
            child = node.children[index]
        return self._delete(child, key)

    def _delete_internal(self, node: _Node, index: int) -> V:
        """Delete ``node.keys[index]`` when ``node`` is internal."""
        t = self._t
        value = node.values[index]
        left, right = node.children[index], node.children[index + 1]
        if len(left.keys) >= t:
            pred_key, pred_value = self._max_item(left)
            node.keys[index] = pred_key
            node.values[index] = pred_value
            self._delete(left, pred_key)
        elif len(right.keys) >= t:
            succ_key, succ_value = self._min_item(right)
            node.keys[index] = succ_key
            node.values[index] = succ_value
            self._delete(right, succ_key)
        else:
            # Both children are minimal: merge them around the key, then
            # delete the key from the merged child.
            merged_key = node.keys[index]
            self._merge_children(node, index)
            self._delete(left, merged_key)
        return value

    def _merge_children(self, node: _Node, index: int) -> None:
        """Merge children ``index`` and ``index+1`` around key ``index``."""
        left, right = node.children[index], node.children[index + 1]
        left.keys.append(node.keys.pop(index))
        left.values.append(node.values.pop(index))
        left.keys.extend(right.keys)
        left.values.extend(right.values)
        if not left.leaf:
            left.children.extend(right.children)
        node.children.pop(index + 1)

    def _grow_child(self, node: _Node, index: int) -> int:
        """Ensure ``node.children[index]`` has >= t keys before descending.

        Returns the (possibly shifted) child index to descend into.
        """
        t = self._t
        child = node.children[index]
        if index > 0 and len(node.children[index - 1].keys) >= t:
            # Borrow from the left sibling through the parent.
            left = node.children[index - 1]
            child.keys.insert(0, node.keys[index - 1])
            child.values.insert(0, node.values[index - 1])
            node.keys[index - 1] = left.keys.pop()
            node.values[index - 1] = left.values.pop()
            if not child.leaf:
                child.children.insert(0, left.children.pop())
            return index
        if index < len(node.children) - 1 and len(node.children[index + 1].keys) >= t:
            # Borrow from the right sibling through the parent.
            right = node.children[index + 1]
            child.keys.append(node.keys[index])
            child.values.append(node.values[index])
            node.keys[index] = right.keys.pop(0)
            node.values[index] = right.values.pop(0)
            if not child.leaf:
                child.children.append(right.children.pop(0))
            return index
        # Merge with a sibling.
        if index < len(node.children) - 1:
            self._merge_children(node, index)
            return index
        self._merge_children(node, index - 1)
        return index - 1

    def _max_item(self, node: _Node) -> Tuple[int, V]:
        while not node.leaf:
            node = node.children[-1]
        return node.keys[-1], node.values[-1]

    def _min_item(self, node: _Node) -> Tuple[int, V]:
        while not node.leaf:
            node = node.children[0]
        return node.keys[0], node.values[0]

    # -- invariant checking (used by property tests) ------------------------

    def check_invariants(self) -> None:
        """Assert structural B-tree invariants; raises AssertionError."""
        keys = [k for k, __ in self.items()]
        assert keys == sorted(keys), "keys out of order"
        assert len(keys) == self._size, "size mismatch"
        self._check_node(self._root, is_root=True)

    def _check_node(self, node: _Node, is_root: bool) -> int:
        t = self._t
        if not is_root:
            assert len(node.keys) >= t - 1, "underfull node"
        assert len(node.keys) <= 2 * t - 1, "overfull node"
        if node.leaf:
            return 1
        assert len(node.children) == len(node.keys) + 1, "child count mismatch"
        depths = {self._check_node(child, is_root=False) for child in node.children}
        assert len(depths) == 1, "leaves at different depths"
        return depths.pop() + 1


def _lower_bound(keys: List[int], key: int) -> int:
    """First index whose key is >= ``key`` (binary search)."""
    low, high = 0, len(keys)
    while low < high:
        mid = (low + high) // 2
        if keys[mid] < key:
            low = mid + 1
        else:
            high = mid
    return low


class IntervalIndex(Generic[V]):
    """Live-object index: non-overlapping ``[start, end)`` -> payload.

    The OMC inserts a range at every object creation, removes it at
    destruction, and resolves raw addresses with :meth:`resolve`.
    Overlap with a live range is rejected -- two live objects cannot
    share bytes, so an overlap means the allocator substrate and the
    probe stream disagree.
    """

    def __init__(self, min_degree: int = 16) -> None:
        self._tree: BTreeMap[Tuple[int, V]] = BTreeMap(min_degree)

    def __len__(self) -> int:
        return len(self._tree)

    def insert(self, start: int, end: int, payload: V) -> None:
        if end <= start:
            raise ValueError(f"empty interval [{start:#x}, {end:#x})")
        hit = self._tree.floor_item(end - 1)
        if hit is not None:
            hit_start, (hit_end, __) = hit
            if hit_end > start and hit_start < end:
                raise ValueError(
                    f"interval [{start:#x}, {end:#x}) overlaps live "
                    f"[{hit_start:#x}, {hit_end:#x})"
                )
        self._tree.insert(start, (end, payload))

    def remove(self, start: int) -> V:
        """Remove the interval starting at ``start``; return its payload."""
        end_payload = self._tree.get(start)
        if end_payload is None:
            raise KeyError(f"no live interval starts at {start:#x}")
        self._tree.delete(start)
        return end_payload[1]

    def resolve(self, address: int) -> Optional[Tuple[int, int, V]]:
        """Find the live interval containing ``address``.

        Returns ``(start, end, payload)`` or ``None``.
        """
        hit = self._tree.floor_item(address)
        if hit is None:
            return None
        start, (end, payload) = hit
        if address < end:
            return start, end, payload
        return None

    def items(self) -> Iterator[Tuple[int, int, V]]:
        for start, (end, payload) in self._tree.items():
            yield start, end, payload
