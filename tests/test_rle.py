"""Tests for the delta + run-length codec."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.rle import DeltaRleCodec, Run, compress


class TestEncoding:
    def test_empty(self):
        codec = compress([])
        assert codec.size() == 0
        assert codec.expand() == []

    def test_single(self):
        codec = compress([7])
        assert codec.expand() == [7]
        assert codec.size() == 1

    def test_arithmetic_run(self):
        codec = compress([0, 8, 16, 24, 32])
        assert codec.size() == 1
        assert codec._all_runs()[0] == Run(0, 8, 5)

    def test_constant_run(self):
        codec = compress([5] * 100)
        assert codec.size() == 1
        assert codec._all_runs()[0] == Run(5, 0, 100)

    def test_delta_change_splits(self):
        codec = compress([0, 8, 16, 17, 18])
        assert codec.size() == 2

    def test_negative_deltas(self):
        codec = compress([100, 90, 80, 70])
        assert codec._all_runs()[0] == Run(100, -10, 4)

    def test_rejects_non_integers(self):
        codec = DeltaRleCodec()
        with pytest.raises(TypeError):
            codec.feed("a")
        with pytest.raises(TypeError):
            codec.feed(True)

    def test_tokens_fed(self):
        codec = compress([1, 2, 3])
        assert codec.tokens_fed == 3


class TestSizes:
    def test_fixed_width(self):
        codec = compress([0, 8, 16, 100])
        assert codec.size_bytes(4) == codec.size() * 12

    def test_varint_smaller_for_small_values(self):
        small = compress(list(range(0, 80, 8)) + [3])
        large = compress([v + (1 << 40) for v in range(0, 80, 8)] + [3])
        assert small.size_bytes_varint() < large.size_bytes_varint()

    def test_strided_stream_much_smaller_than_input(self):
        codec = compress(list(range(0, 80000, 8)))
        assert codec.size_bytes_varint() < 20


class TestRoundTrip:
    @pytest.mark.parametrize(
        "tokens",
        [
            [0, 8, 16, 24, 5, 5, 5],
            [1, -1, 1, -1],
            [0],
            list(range(100)) + list(range(100, 0, -1)),
        ],
    )
    def test_examples(self, tokens):
        assert compress(tokens).expand() == tokens

    @settings(max_examples=150, deadline=None)
    @given(st.lists(st.integers(-10**9, 10**9), max_size=200))
    def test_property_roundtrip(self, tokens):
        codec = compress(tokens)
        assert codec.expand() == tokens
        assert codec.size() <= max(1, len(tokens))


class TestVsSequitur:
    def test_rle_wins_on_pure_strides(self):
        from repro.compression.sequitur import compress as seq_compress

        tokens = list(range(0, 8000, 8))
        assert (
            compress(tokens).size_bytes_varint()
            < seq_compress(tokens).size_bytes_varint()
        )

    def test_sequitur_wins_on_composite_repeats(self):
        from repro.compression.sequitur import compress as seq_compress

        motif = [0, 5, 17, 3, 99, 4, 62, 8]
        tokens = motif * 200
        assert (
            seq_compress(tokens).size_bytes_varint()
            < compress(tokens).size_bytes_varint()
        )


class TestAsWhompBackend:
    def test_lossless_whomp(self, list_trace):
        from repro.profilers.whomp import WhompProfiler

        profile = WhompProfiler(compressor=DeltaRleCodec).profile(list_trace)
        raw = [(e.instruction_id, e.address) for e in list_trace.accesses()]
        assert profile.reconstruct_accesses() == raw
