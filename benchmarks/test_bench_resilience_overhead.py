"""No-fault overhead of the resilience layer.

The resilience machinery (chunk deadlines, retry bookkeeping, the
degraded-mode quarantine) must be dormant when nothing is failing: a
clean run pays for the *capability*, not the recovery.  This benchmark
times the fault-free paths against their pre-resilience equivalents and
records the dilation in ``extra_info`` so future PRs can watch it.
"""

import time

from repro.parallel import ParallelExecutor, fork_available
from repro.profilers.whomp import WhompProfiler
from repro.resilience import Quarantine
from repro.workloads.registry import create

#: Degraded mode adds one ``malformation()`` check per tuple; the pool
#: path adds one ``get(timeout)`` per chunk.  Both are per-item-cheap
#: but not free; they must stay well under the cost of the work itself.
MAX_DILATION = 2.0


def _micro_trace():
    return create("micro.array", scale=2.0).trace()


def _best_of(function, *args, rounds=3):
    timings = []
    for __ in range(rounds):
        start = time.perf_counter()
        function(*args)
        timings.append(time.perf_counter() - start)
    return min(timings)


def test_quarantine_overhead_on_clean_trace(benchmark):
    trace = _micro_trace()
    plain = WhompProfiler()

    def degraded():
        return WhompProfiler(quarantine=Quarantine()).profile(trace)

    plain.profile(trace)  # warm
    plain_seconds = _best_of(plain.profile, trace)
    benchmark.pedantic(degraded, rounds=3, iterations=1)
    degraded_seconds = _best_of(degraded)
    dilation = degraded_seconds / plain_seconds
    benchmark.extra_info["plain_seconds"] = plain_seconds
    benchmark.extra_info["degraded_seconds"] = degraded_seconds
    benchmark.extra_info["quarantine_dilation"] = dilation
    assert dilation < MAX_DILATION


def _busy(value):
    total = 0
    for i in range(20_000):
        total += (value * i) % 7
    return total


def test_pool_deadline_overhead(benchmark):
    if not fork_available():
        import pytest

        pytest.skip("platform lacks the fork start method")
    tasks = list(range(64))
    unbounded = ParallelExecutor(jobs=2, timeout=None)
    bounded = ParallelExecutor(jobs=2, timeout=120.0, retries=2)

    unbounded.map(_busy, tasks)  # warm the fork machinery
    unbounded_seconds = _best_of(unbounded.map, _busy, tasks)
    benchmark.pedantic(bounded.map, args=(_busy, tasks), rounds=3, iterations=1)
    bounded_seconds = _best_of(bounded.map, _busy, tasks)
    dilation = bounded_seconds / unbounded_seconds
    benchmark.extra_info["unbounded_seconds"] = unbounded_seconds
    benchmark.extra_info["bounded_seconds"] = bounded_seconds
    benchmark.extra_info["deadline_dilation"] = dilation
    assert dilation < MAX_DILATION
