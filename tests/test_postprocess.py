"""Tests for the LEAP post-processors (MDF and strides)."""

import pytest

from repro.baselines.dependence_lossless import LosslessDependenceProfiler
from repro.baselines.stride_lossless import LosslessStrideProfiler
from repro.core.events import AccessKind
from repro.postprocess.dependence import (
    _union_size,
    analyze_dependences,
    format_pairs,
)
from repro.postprocess.strides import (
    LeapStrideAnalyzer,
    dominant_strides,
    stride_score,
)
from repro.profilers.leap import LeapProfiler
from repro.runtime.process import Process
from repro.workloads.micro import LinkedListTraversal, MatrixTraversal


class TestUnionSize:
    def test_empty(self):
        assert _union_size([], 100, 1000) == 0

    def test_single(self):
        assert _union_size([(0, 1, 10)], 100, 1000) == 10

    def test_single_clipped_to_universe(self):
        assert _union_size([(0, 1, 200)], 100, 1000) == 100

    def test_disjoint(self):
        assert _union_size([(0, 2, 5), (1, 2, 5)], 100, 1000) == 10

    def test_overlapping(self):
        assert _union_size([(0, 1, 10), (5, 1, 10)], 100, 1000) == 15

    def test_identical(self):
        assert _union_size([(0, 1, 10), (0, 1, 10)], 100, 1000) == 10

    def test_step_zero_is_single_value(self):
        assert _union_size([(7, 0, 1), (7, 0, 1)], 100, 1000) == 1

    def test_capped_approximation(self):
        size = _union_size([(0, 1, 10), (0, 1, 10)], 15, cap=5)
        assert size == 15  # capped sum min(20, 15)


class TestMdfExactCases:
    def test_strided_rmw_exact(self):
        """Fully captured store/load pair: MDF must be exact."""
        process = Process()
        st = process.instruction("st", AccessKind.STORE)
        ld = process.instruction("ld", AccessKind.LOAD)
        block = process.malloc("s", 512)
        for offset in range(0, 512, 8):
            process.store(st, block + offset)
            process.load(ld, block + offset)
        process.finish()

        estimated = analyze_dependences(LeapProfiler().profile(process.trace))
        truth = LosslessDependenceProfiler().profile(process.trace)
        pair = (0, 1)
        assert truth.frequency(*pair) == 1.0
        assert estimated.frequency(*pair) == pytest.approx(1.0)

    def test_independent_streams_no_pairs(self):
        process = Process()
        st = process.instruction("st", AccessKind.STORE)
        ld = process.instruction("ld", AccessKind.LOAD)
        a = process.malloc("s", 256)
        b = process.malloc("s", 256)
        for offset in range(0, 256, 8):
            process.store(st, a + offset)
            process.load(ld, b + offset)
        process.finish()
        estimated = analyze_dependences(LeapProfiler().profile(process.trace))
        assert estimated.dependent_pairs() == {}

    def test_load_before_store_not_dependent(self):
        process = Process()
        ld = process.instruction("ld", AccessKind.LOAD)
        st = process.instruction("st", AccessKind.STORE)
        block = process.malloc("s", 512)
        for offset in range(0, 512, 8):
            process.load(ld, block + offset)
        for offset in range(0, 512, 8):
            process.store(st, block + offset)
        process.finish()
        estimated = analyze_dependences(LeapProfiler().profile(process.trace))
        assert estimated.dependent_pairs() == {}

    def test_partial_dependence_fraction(self):
        """Load reads written half and unwritten half: MDF ~= 0.5."""
        process = Process()
        st = process.instruction("st", AccessKind.STORE)
        ld = process.instruction("ld", AccessKind.LOAD)
        block = process.malloc("s", 1024)
        for offset in range(0, 512, 8):
            process.store(st, block + offset)
        for offset in range(0, 1024, 8):
            process.load(ld, block + offset)
        process.finish()
        estimated = analyze_dependences(LeapProfiler().profile(process.trace))
        assert estimated.frequency(0, 1) == pytest.approx(0.5)

    def test_matches_truth_on_list_workload(self):
        trace = LinkedListTraversal(nodes=25, sweeps=4).trace()
        estimated = analyze_dependences(LeapProfiler().profile(trace))
        truth = LosslessDependenceProfiler().profile(trace)
        for pair, frequency in truth.dependent_pairs().items():
            assert estimated.frequency(*pair) == pytest.approx(
                frequency, abs=0.15
            )

    def test_format_pairs(self):
        trace = LinkedListTraversal(nodes=10, sweeps=2).trace()
        table = analyze_dependences(LeapProfiler().profile(trace))
        lines = list(format_pairs(table, {}, limit=5))
        assert all(line.startswith("(") for line in lines)


class TestStridePostprocess:
    def test_matrix_strides_identified(self, matrix_trace):
        leap = LeapProfiler().profile(matrix_trace)
        identified = LeapStrideAnalyzer().strongly_strided(leap)
        real = LosslessStrideProfiler().profile(matrix_trace).strongly_strided()
        assert stride_score(identified, real) == 1.0

    def test_dominant_strides_values(self, matrix_trace):
        leap = LeapProfiler().profile(matrix_trace)
        strides = dominant_strides(leap)
        # row-major store: stride 8; column-major load: stride 8*cols
        assert 8 in strides.values()
        assert any(value > 8 for value in strides.values())

    def test_cross_object_strides_excluded(self):
        """An instruction striding across adjacent objects is invisible
        to the within-object rule (the paper's Figure 9 misses)."""
        process = Process(allocator="bump")
        ld = process.instruction("walk", AccessKind.LOAD)
        blocks = [process.malloc("s", 32) for __ in range(30)]
        for block in blocks:
            process.load(ld, block)
        process.finish()
        real = LosslessStrideProfiler().profile(process.trace).strongly_strided()
        leap = LeapProfiler().profile(process.trace)
        identified = LeapStrideAnalyzer().strongly_strided(leap)
        assert 0 in real  # raw addresses are perfectly strided
        assert 0 not in identified  # but it crosses objects
        assert stride_score(identified, real) == 0.0

    def test_stride_score_empty_real_set(self):
        assert stride_score({1, 2}, set()) is None

    def test_single_element_lmads_contribute_nothing(self):
        process = Process()
        ld = process.instruction("probe", AccessKind.LOAD)
        block = process.malloc("s", 8192)
        # quadratic offsets: every LMAD has at most 2 elements
        for i in range(30):
            process.load(ld, block + (i * i * 8) % 8192)
        process.finish()
        leap = LeapProfiler().profile(process.trace)
        analyzed = LeapStrideAnalyzer().analyze(leap)
        assert analyzed.strongly_strided() == set()

    def test_analyze_preserves_exec_counts(self, matrix_trace):
        leap = LeapProfiler().profile(matrix_trace)
        analyzed = LeapStrideAnalyzer().analyze(leap)
        assert analyzed.exec_counts == leap.exec_counts
