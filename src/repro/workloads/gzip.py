"""164.gzip stand-in: sliding-window compression.

Mimics deflate's memory character: input consumed in fixed-size blocks
(heap objects, one per block, all from one allocation site), each
processed by a pipeline of branch-free loops --

* *scan*: input load, CRC scalar update, sliding-window store per word;
* *hash update*: head-table read/write at data-dependent buckets;
* *match probing*: fixed-length runs at data-dependent window offsets;
* *literal emission* and *output flush*: strided re-reads and writes.

Every syntactic access site is its own static instruction (a distinct
PC), control flow is deterministic, and the data-dependence lives in
the hash/match *addresses* -- the structure real compressors have.  The
block-per-object layout gives the cross-object offset repetition that
object-relative decomposition exposes, while the CRC scalars and window
stores provide the constant-location and long-affine runs LEAP's LMAD
budget can actually hold.
"""

from __future__ import annotations

from repro.core.events import AccessKind
from repro.runtime.process import Process
from repro.workloads.base import REGISTRY, Workload

WORD = 8


@REGISTRY.register
class GzipWorkload(Workload):
    name = "gzip"
    description = "sliding-window compressor: strided block scans + hash updates"

    def __init__(
        self,
        scale: float = 1.0,
        seed: int = 0,
        blocks: int = 40,
        block_words: int = 224,
        window_words: int = 4096,
        hash_buckets: int = 1024,
        probes_per_block: int = 16,
        match_length: int = 4,
    ) -> None:
        super().__init__(scale=scale, seed=seed)
        self.blocks = blocks
        self.block_words = block_words
        self.window_words = window_words
        self.hash_buckets = hash_buckets
        self.probes_per_block = probes_per_block
        self.match_length = match_length

    def run(self, process: Process) -> None:
        rng = self.rng()
        self.declare_cold_statics(process)
        process.declare_static("window", self.window_words * WORD, type_name="byte[]")
        process.declare_static("hash_head", self.hash_buckets * WORD, type_name="int[]")
        process.declare_static("globals", 8 * WORD, type_name="globals")
        window = process.static("window").address
        hash_head = process.static("hash_head").address
        crc = process.static("globals").address

        st_read = process.instruction("fill_window.store_input", AccessKind.STORE)
        ld_in = process.instruction("deflate.load_input", AccessKind.LOAD)
        ld_crc = process.instruction("deflate.load_crc", AccessKind.LOAD)
        st_crc = process.instruction("deflate.store_crc", AccessKind.STORE)
        st_window = process.instruction("deflate.store_window", AccessKind.STORE)
        ld_head = process.instruction("hash.load_head", AccessKind.LOAD)
        st_head = process.instruction("hash.store_head", AccessKind.STORE)
        ld_match = process.instruction("longest_match.load_window", AccessKind.LOAD)
        ld_lit = process.instruction("emit.load_input", AccessKind.LOAD)
        st_out = process.instruction("emit.store_output", AccessKind.STORE)
        ld_flush = process.instruction("flush.load_output", AccessKind.LOAD)

        self.run_startup(process, sites=4)
        window_pos = 0
        for __ in range(self.scaled(self.blocks)):
            block = process.malloc(
                "gzip.input_block", self.block_words * WORD, type_name="byte[]"
            )
            out = process.malloc(
                "gzip.output_block", self.block_words * WORD, type_name="byte[]"
            )

            # Read the next chunk of the input file into the block.
            for word in range(self.block_words):
                process.store(st_read, block + word * WORD)

            # Scan: input word + CRC scalar update + window copy.
            for word in range(self.block_words):
                process.load(ld_in, block + word * WORD)
                process.load(ld_crc, crc)
                process.store(st_crc, crc)
                process.store(st_window, window + window_pos * WORD)
                window_pos = (window_pos + 1) % self.window_words

            # Hash update pass: head table at data-dependent buckets.
            for word in range(self.block_words):
                bucket = rng.randrange(self.hash_buckets)
                process.load(ld_head, hash_head + bucket * WORD)
                process.store(st_head, hash_head + bucket * WORD)

            # Match probing: fixed-length runs at random distances.
            for __ in range(self.probes_per_block):
                start = rng.randrange(self.window_words)
                for k in range(self.match_length):
                    process.load(
                        ld_match,
                        window + ((start + k) % self.window_words) * WORD,
                    )

            # Literal emission: re-read input, write output, strided.
            for word in range(self.block_words):
                process.load(ld_lit, block + word * WORD)
                process.store(st_out, out + word * WORD)

            # Flush: sequential read-back of the output block.
            for word in range(self.block_words):
                process.load(ld_flush, out + word * WORD)

            process.free(block)
            process.free(out)
        self.run_shutdown(process, sites=3)
