"""Figure 9 bench: stride score for LEAP.

Regenerates the figure and asserts its shape: a high average fraction
of strongly-strided instructions correctly identified (paper: 88%),
with the misses explained by cross-object strides.
"""

from conftest import once

from repro.experiments import fig9


def test_fig9_stride_scores(benchmark, context):
    results = once(benchmark, fig9.run, context)
    print()
    print(fig9.render(results))

    assert results["average_score"] > 0.75
    for row in results["rows"]:
        if row["score"] is not None:
            assert row["score"] >= 0.5


def test_fig9_stride_postprocess_throughput(benchmark, context):
    """Kernel benchmark: the 'trivial post-process' of Section 4.2.2."""
    from repro.postprocess.strides import LeapStrideAnalyzer

    leap = context.leap("bzip2")
    identified = once(benchmark, LeapStrideAnalyzer().strongly_strided, leap)
    assert identified
