"""Tests for the LEAP lossy profiler."""

import pytest

from repro.core.events import AccessKind
from repro.profilers.leap import LeapProfiler
from repro.runtime.process import Process
from repro.workloads.micro import ArraySweep, HashProbe, LinkedListTraversal


def strided_process(blocks=3, words=64):
    process = Process()
    st = process.instruction("fill", AccessKind.STORE)
    ld = process.instruction("scan", AccessKind.LOAD)
    for __ in range(blocks):
        block = process.malloc("site", words * 8)
        for w in range(words):
            process.store(st, block + w * 8)
        for w in range(words):
            process.load(ld, block + w * 8)
    process.finish()
    return process


class TestProfileStructure:
    def test_entries_keyed_by_instruction_group(self):
        process = strided_process()
        profile = LeapProfiler().profile(process.trace)
        groups = {g for (__, g) in profile.entries}
        instrs = {i for (i, __) in profile.entries}
        assert instrs == {0, 1}
        assert groups == {0}

    def test_kinds_and_exec_counts(self):
        process = strided_process(blocks=2, words=16)
        profile = LeapProfiler().profile(process.trace)
        assert profile.kinds[0] is AccessKind.STORE
        assert profile.kinds[1] is AccessKind.LOAD
        assert profile.exec_counts[0] == 32
        assert profile.loads() == [1]
        assert profile.stores() == [0]

    def test_entries_for_instruction(self):
        process = strided_process()
        profile = LeapProfiler().profile(process.trace)
        entries = profile.entries_for_instruction(0)
        assert list(entries) == [0]
        assert profile.groups_of(0) == [0]

    def test_lifetimes_included(self):
        process = strided_process(blocks=2)
        profile = LeapProfiler().profile(process.trace)
        assert len(profile.lifetimes) == 2


class TestCaptureMetrics:
    def test_fully_strided_is_fully_captured(self):
        trace = ArraySweep(elements=64, sweeps=4).trace()
        profile = LeapProfiler().profile(trace)
        assert profile.accesses_captured() == 1.0
        assert profile.instructions_captured() == 1.0

    def test_random_probes_capture_poorly(self):
        trace = HashProbe(buckets=1024, probes=3000).trace()
        profile = LeapProfiler().profile(trace)
        assert profile.accesses_captured() < 0.2

    def test_budget_monotonicity(self):
        trace = LinkedListTraversal(nodes=40, sweeps=6).trace()
        small = LeapProfiler(budget=2).profile(trace)
        large = LeapProfiler(budget=64).profile(trace)
        assert small.accesses_captured() <= large.accesses_captured()
        assert small.size_bytes() <= large.size_bytes()

    def test_empty_trace(self):
        from repro.core.events import Trace

        profile = LeapProfiler().profile(Trace())
        assert profile.accesses_captured() == 1.0
        assert profile.instructions_captured() == 1.0
        assert profile.size_bytes() == 0

    def test_compression_ratio(self):
        trace = ArraySweep(elements=256, sweeps=8).trace()
        profile = LeapProfiler().profile(trace)
        ratio = profile.compression_ratio(trace.raw_size_bytes())
        assert ratio > 10  # strided traffic compresses heavily


class TestOnlineSession:
    def test_online_equals_offline(self):
        workload = LinkedListTraversal(nodes=30, sweeps=4)
        offline = LeapProfiler().profile(workload.trace())

        process = Process(record_trace=False)
        session = LeapProfiler().attach(process.bus)
        workload.run(process)
        process.finish()
        online = session.finish()

        assert online.entries == offline.entries
        assert online.exec_counts == offline.exec_counts
        assert online.access_count == offline.access_count

    def test_session_detaches_on_finish(self):
        process = Process(record_trace=False)
        session = LeapProfiler().attach(process.bus)
        assert process.bus.instrumented
        session.finish()
        assert not process.bus.instrumented


class TestLMADShapes:
    def test_constant_location_scalar_is_one_lmad(self):
        process = Process()
        process.declare_static("counter", 8)
        address = process.static("counter").address
        ld = process.instruction("ld", AccessKind.LOAD)
        st = process.instruction("st", AccessKind.STORE)
        for __ in range(200):
            process.load(ld, address)
            process.store(st, address)
        process.finish()
        profile = LeapProfiler().profile(process.trace)
        for entry in profile.entries.values():
            assert len(entry.lmads) == 1
            assert entry.complete

    def test_object_dimension_tracks_serials(self):
        """One access per object, same offset: the object dimension
        strides while the offset stays constant -- the cross-object
        pattern vertical decomposition exposes."""
        process = Process(allocator="bump")
        ld = process.instruction("peek", AccessKind.LOAD)
        for __ in range(50):
            block = process.malloc("site", 32)
            process.load(ld, block + 8)
        process.finish()
        profile = LeapProfiler().profile(process.trace)
        entry = profile.entries[(0, 0)]
        assert len(entry.lmads) == 1
        lmad = entry.lmads[0]
        assert lmad.stride[0] == 1  # object serial += 1
        assert lmad.stride[1] == 0  # offset constant
        assert lmad.count == 50
