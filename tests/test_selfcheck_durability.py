"""REPROLINT durability invariants (RL131-RL132)."""

import textwrap

from repro.selfcheck.engine import analyze_modules
from repro.selfcheck.loader import scan_source


def codes(source, path="inline.py"):
    module = scan_source(path, textwrap.dedent(source))
    return [f.code for f in analyze_modules([module])]


class TestRL131NonAtomicWrites:
    def test_write_mode_open(self):
        assert codes('def save(p, t):\n    open(p, "w").write(t)\n') == [
            "RL131"
        ]

    def test_append_and_exclusive_modes_count(self):
        assert codes('def save(p):\n    open(p, "a")\n') == ["RL131"]
        assert codes('def save(p):\n    open(p, "xb")\n') == ["RL131"]

    def test_read_mode_is_fine(self):
        assert codes("def load(p):\n    return open(p).read()\n") == []
        assert codes('def load(p):\n    return open(p, "rb")\n') == []

    def test_path_write_text(self):
        assert codes("def save(p, t):\n    p.write_text(t)\n") == ["RL131"]

    def test_os_open_without_excl(self):
        source = """\
        import os


        def save(p):
            return os.open(p, os.O_WRONLY | os.O_CREAT)
        """
        assert codes(source) == ["RL131"]

    def test_os_open_create_exclusive_is_atomic(self):
        # the fault-ledger idiom: O_EXCL either fully creates or fails
        source = """\
        import os


        def claim(p):
            return os.open(p, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        """
        assert codes(source) == []

    def test_devnull_is_exempt(self):
        source = """\
        import os


        def sink():
            return os.open(os.devnull, os.O_WRONLY)
        """
        assert codes(source) == []
        assert codes(
            'import os\n\n\ndef sink():\n    return open(os.devnull, "w")\n'
        ) == []

    def test_durable_primitive_module_is_exempt(self):
        source = """\
        # repro: durable-primitive
        import os


        def atomic(p, t):
            open(p + ".tmp", "w").write(t)
            os.replace(p + ".tmp", p)
        """
        assert codes(source) == []


class TestRL132BareRename:
    def test_os_replace(self):
        source = "import os\n\n\ndef swap(a, b):\n    os.replace(a, b)\n"
        assert codes(source) == ["RL132"]

    def test_os_rename(self):
        source = "import os\n\n\ndef swap(a, b):\n    os.rename(a, b)\n"
        assert codes(source) == ["RL132"]
