"""Simulated linker for statically allocated data.

WHOMP "uses the exported symbol table from the gcc compiler to determine
the size and group of statically-allocated objects" (Section 3.1).  This
module is that symbol table's producer: it lays out static objects in the
static segment and exports a :class:`SymbolTable` the OMC consumes.

It also reproduces the paper's third artifact: "the insertion of probes
could change the code segment size and thus the linker data layout of
static data".  The ``probe_padding`` knob grows the code segment, which
shifts every static address while leaving the object-relative view
untouched.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro.runtime.memory import AddressSpace, MemoryError_, align_up


@dataclass(frozen=True)
class StaticObject:
    """Declaration of one statically allocated object (a global)."""

    name: str
    size: int
    align: int = 8

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"static object {self.name!r} has size {self.size}")
        if self.align <= 0 or self.align & (self.align - 1):
            raise ValueError(f"alignment of {self.name!r} must be a power of two")


@dataclass(frozen=True)
class Symbol:
    """One resolved entry of the exported symbol table."""

    name: str
    address: int
    size: int

    @property
    def limit(self) -> int:
        return self.address + self.size

    def contains(self, address: int) -> bool:
        return self.address <= address < self.limit


@dataclass
class SymbolTable:
    """The exported symbol table: name-indexed resolved static objects."""

    symbols: Dict[str, Symbol] = field(default_factory=dict)

    def __iter__(self) -> Iterator[Symbol]:
        return iter(self.symbols.values())

    def __len__(self) -> int:
        return len(self.symbols)

    def __getitem__(self, name: str) -> Symbol:
        return self.symbols[name]

    def __contains__(self, name: str) -> bool:
        return name in self.symbols

    def resolve(self, address: int) -> Optional[Symbol]:
        """Find the symbol containing ``address`` (linear scan is fine:
        symbol tables are small and this is only used in error paths --
        the OMC keeps its own range index)."""
        for symbol in self.symbols.values():
            if symbol.contains(address):
                return symbol
        return None


class Linker:
    """Assigns static-segment addresses to declared static objects.

    Objects are laid out in declaration order, aligned, with an optional
    inter-object gap -- matching how a simple linker emits ``.data``.

    >>> space = AddressSpace()
    >>> linker = Linker(space)
    >>> linker.declare(StaticObject("table", 4096))
    >>> table = linker.link()["table"]
    >>> table.size
    4096
    """

    def __init__(self, space: AddressSpace, probe_padding: int = 0) -> None:
        if probe_padding < 0:
            raise ValueError("probe_padding must be non-negative")
        self.space = space
        self.probe_padding = probe_padding
        self._declared: List[StaticObject] = []
        self._linked: Optional[SymbolTable] = None

    def declare(self, obj: StaticObject) -> None:
        """Register a static object; must happen before :meth:`link`."""
        if self._linked is not None:
            raise MemoryError_("cannot declare statics after linking")
        if any(existing.name == obj.name for existing in self._declared):
            raise MemoryError_(f"duplicate static object {obj.name!r}")
        self._declared.append(obj)

    def link(self) -> SymbolTable:
        """Lay out all declared objects and export the symbol table."""
        if self._linked is not None:
            return self._linked
        # Probe insertion grows code; static data starts after it.
        cursor = self.space.static.base + align_up(self.probe_padding, 16)
        table = SymbolTable()
        for obj in self._declared:
            cursor = align_up(cursor, obj.align)
            if cursor + obj.size > self.space.static.limit:
                raise MemoryError_(
                    f"static segment overflow while placing {obj.name!r}"
                )
            table.symbols[obj.name] = Symbol(obj.name, cursor, obj.size)
            cursor += obj.size
        self._linked = table
        return table

    @property
    def symbol_table(self) -> SymbolTable:
        if self._linked is None:
            raise MemoryError_("program not linked yet")
        return self._linked
