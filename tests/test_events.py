"""Tests for the trace event model and serialization."""

import io

from repro.core.events import AccessEvent, AccessKind, AllocEvent, FreeEvent, Trace


def build_trace():
    trace = Trace()
    trace.record_alloc(0x1000, 64, "site.a", "node")
    trace.record_access(0, 0x1000, 8, AccessKind.STORE)
    trace.record_access(1, 0x1008, 8, AccessKind.LOAD)
    trace.record_free(0x1000)
    return trace


class TestRecording:
    def test_time_counts_accesses_only(self):
        trace = build_trace()
        events = list(trace)
        assert isinstance(events[0], AllocEvent) and events[0].time == 0
        assert isinstance(events[1], AccessEvent) and events[1].time == 0
        assert events[2].time == 1
        assert isinstance(events[3], FreeEvent) and events[3].time == 2

    def test_access_count(self):
        trace = build_trace()
        assert trace.access_count == 2
        assert len(trace) == 4

    def test_accesses_iterator(self):
        trace = build_trace()
        accesses = list(trace.accesses())
        assert [a.instruction_id for a in accesses] == [0, 1]

    def test_object_events_iterator(self):
        trace = build_trace()
        events = list(trace.object_events())
        assert len(events) == 2

    def test_raw_address_stream(self):
        trace = build_trace()
        assert trace.raw_address_stream() == [0x1000, 0x1008]

    def test_raw_size_bytes(self):
        trace = build_trace()
        assert trace.raw_size_bytes() == 2 * 12

    def test_indexing(self):
        trace = build_trace()
        assert isinstance(trace[0], AllocEvent)
        assert isinstance(trace[-1], FreeEvent)


class TestSerialization:
    def test_round_trip(self):
        trace = build_trace()
        buffer = io.StringIO()
        trace.dump(buffer)
        buffer.seek(0)
        loaded = Trace.load(buffer)
        assert list(loaded) == list(trace)
        assert loaded.access_count == trace.access_count

    def test_round_trip_empty(self):
        buffer = io.StringIO()
        Trace().dump(buffer)
        buffer.seek(0)
        loaded = Trace.load(buffer)
        assert len(loaded) == 0

    def test_blank_lines_ignored(self):
        trace = build_trace()
        buffer = io.StringIO()
        trace.dump(buffer)
        text = buffer.getvalue() + "\n\n"
        loaded = Trace.load(io.StringIO(text))
        assert len(loaded) == len(trace)

    def test_unknown_tag_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            Trace.load(io.StringIO('["X", 1]\n'))

    def test_workload_trace_round_trip(self, list_trace):
        buffer = io.StringIO()
        list_trace.dump(buffer)
        buffer.seek(0)
        loaded = Trace.load(buffer)
        assert loaded.access_count == list_trace.access_count
        assert list(loaded) == list(list_trace)


class TestFromEvents:
    def test_preserves_counts(self):
        trace = build_trace()
        rebuilt = Trace.from_events(list(trace))
        assert rebuilt.access_count == trace.access_count
        assert list(rebuilt) == list(trace)
