"""Ablation bench: allocator sensitivity.

The paper's motivation (Section 1): raw-address profiles change when
the allocator library changes, object-relative profiles do not.  This
ablation runs one workload under every allocator policy and compares
profile stability: the OMSG streams are bit-identical while the raw
address streams differ.
"""

from conftest import once

from repro.core.tuples import DIMENSIONS
from repro.profilers.whomp import WhompProfiler
from repro.runtime.allocator import ALL_POLICIES
from repro.workloads.registry import create

WORKLOAD = "micro.list"


def test_allocator_sensitivity(benchmark, context):
    def measure():
        streams = {}
        raw = {}
        for policy in ALL_POLICIES:
            workload = create(WORKLOAD, scale=1.0)
            trace = workload.trace(allocator=policy)
            profile = WhompProfiler().profile(trace)
            streams[policy] = tuple(
                tuple(profile.grammars[name].expand()) for name in DIMENSIONS
            )
            raw[policy] = tuple(trace.raw_address_stream())
        return streams, raw

    streams, raw = once(benchmark, measure)
    print()
    print(f"object-relative stream variants: {len(set(streams.values()))} "
          f"across {len(ALL_POLICIES)} allocators")
    print(f"raw address stream variants:     {len(set(raw.values()))}")

    # the paper's claim, verbatim
    assert len(set(streams.values())) == 1
    assert len(set(raw.values())) > 1


def test_grammar_sizes_stable_across_allocators(context):
    """OMSG *size* is also layout-invariant (same streams, same grammar)."""
    sizes = set()
    for policy in ALL_POLICIES:
        trace = create(WORKLOAD, scale=0.5).trace(allocator=policy)
        sizes.add(WhompProfiler().profile(trace).size())
    assert len(sizes) == 1
