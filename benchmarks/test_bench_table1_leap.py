"""Table 1 bench: LEAP profile size, speed, and sample quality.

Regenerates the table and asserts its shape: strong compression on
every benchmark with mcf the most compressible (its chase traffic
collapses into summaries), measurable instrumentation dilation, and
per-benchmark capture fractions in the paper's bands -- including the
paper's closing observation that application-level accuracy (Figures
6-9) exceeds the raw capture fractions.
"""

from conftest import once

from repro.experiments import table1


def test_table1_size_speed_quality(benchmark, context):
    results = once(benchmark, table1.run, context, measure_speed=True)
    print()
    print(table1.render(results))

    rows = {row["benchmark"]: row for row in results["rows"]}
    # compression: at least an order of magnitude everywhere
    for row in rows.values():
        assert row["compression"] > 10
    # dilation: instrumentation costs real time on every benchmark
    for row in rows.values():
        assert row["dilation"] > 1.5
    # sample quality shape: mcf is the least-captured benchmark...
    least = min(rows.values(), key=lambda r: r["accesses_captured"])
    assert least["benchmark"] == "mcf"
    # ...parser has the access/instruction inversion the paper calls out
    assert rows["parser"]["accesses_captured"] > 0.5
    assert rows["parser"]["instructions_captured"] < 0.25
    # averages land in the paper's bands
    averages = results["averages"]
    assert 0.30 < averages["accesses_captured"] < 0.65
    assert 0.25 < averages["instructions_captured"] < 0.60


def test_table1_leap_profiling_throughput(benchmark, context):
    """Kernel benchmark: offline LEAP profiling of the largest trace."""
    from repro.profilers.leap import LeapProfiler

    trace = context.trace("bzip2")
    profile = once(benchmark, LeapProfiler().profile, trace)
    assert profile.access_count == trace.access_count
