"""Finding records and the stable REPROLINT code registry.

Every finding carries a stable code (``RL101``...), a severity, an
exact source position, and a *fingerprint* -- a content hash of the
code, file, enclosing symbol, and detail key that survives unrelated
line churn, so baseline files keep matching while the file above a
finding is edited.  Codes are stable API: CI scripts and baselines
match on them, so they are never renumbered.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

#: severity levels, ordered
ERROR = "error"
WARNING = "warning"

#: code -> (severity, short title); stable, never renumbered
CODES: Dict[str, Tuple[str, str]] = {
    # lockset / thread-shared state
    "RL101": (ERROR, "unguarded mutation of thread-shared attribute"),
    "RL102": (WARNING, "torn multi-attribute read outside the lock"),
    "RL103": (WARNING, "blocking I/O while holding a state lock"),
    "RL104": (ERROR, "unsynchronized call into externally-guarded object"),
    "RL105": (ERROR, "thread-shared class mutates state but owns no lock"),
    # fork safety
    "RL121": (ERROR, "closure or lambda crosses the fork boundary"),
    "RL122": (ERROR, "worker captures a process-global lock/file/socket"),
    "RL123": (ERROR, "worker default argument captures unshareable state"),
    "RL124": (ERROR, "worker mutates module-global state across the fork"),
    "RL125": (ERROR, "worker leaks a live trace activation"),
    # durability
    "RL131": (ERROR, "non-atomic write on a durable path"),
    "RL132": (ERROR, "bare rename outside the atomic-write primitive"),
    # determinism / event schema
    "RL141": (ERROR, "wall-clock read in a seed-deterministic capture path"),
    "RL142": (ERROR, "unseeded randomness"),
    "RL143": (ERROR, "event kind not declared in the event schema"),
    "RL144": (ERROR, "event fields violate the declared schema"),
}


@dataclass(frozen=True)
class Finding:
    """One analyzer finding, pointing at an exact source position.

    ``symbol`` is the enclosing dotted scope (``Class.method`` or a
    function name), ``detail`` a short stable key for what was
    convicted (an attribute name, a called function) -- both feed the
    fingerprint so baselines survive line drift.
    """

    code: str
    path: str
    line: int
    column: int
    message: str
    symbol: str = ""
    detail: str = ""

    @property
    def severity(self) -> str:
        return CODES.get(self.code, (ERROR, ""))[0]

    @property
    def fingerprint(self) -> str:
        text = "|".join((self.code, self.path, self.symbol, self.detail))
        return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.column}: "
            f"{self.severity}: {self.message} [{self.code}]"
        )

    def to_dict(self) -> dict:
        return {
            "code": self.code,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "symbol": self.symbol,
            "detail": self.detail,
            "message": self.message,
            "fingerprint": self.fingerprint,
        }


@dataclass
class FindingSink:
    """Collects findings, applying per-line ``# repro: allow(...)``."""

    suppressions: Dict[int, frozenset] = field(default_factory=dict)
    path: str = "<source>"
    findings: List[Finding] = field(default_factory=list)

    def report(
        self,
        code: str,
        line: int,
        column: int,
        message: str,
        symbol: str = "",
        detail: str = "",
    ) -> None:
        if code not in CODES:
            raise ValueError(f"unknown REPROLINT code {code!r}")
        allowed = self.suppressions.get(line, frozenset())
        if code in allowed or "all" in allowed:
            return
        finding = Finding(
            code, self.path, line, column, message, symbol, detail
        )
        if finding not in self.findings:
            self.findings.append(finding)


def sort_findings(findings: List[Finding]) -> List[Finding]:
    return sorted(
        findings, key=lambda f: (f.path, f.line, f.column, f.code)
    )
