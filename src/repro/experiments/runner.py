"""Experiment runner CLI.

Regenerates every figure and table of the paper's evaluation::

    repro-experiments --all
    repro-experiments fig5 fig8 --scale 0.5
    python -m repro.experiments.runner table1

Results print as paper-style text tables and histograms; ``--json``
writes the structured results (plus per-experiment elapsed seconds and
a ``status`` of ``ok`` / ``retried`` / ``degraded`` / ``failed``) to a
file as well -- a partially failed sweep still produces valid JSON
instead of dying on the first failure.  ``--telemetry
[report|json|prom]`` self-profiles the suite with one span per
experiment, ``--heartbeat SECS`` emits a progress line to stderr while
a long experiment runs, and ``--jobs N`` fans whole experiments out to
worker processes (results identical to the serial run).

Resilience switches: ``--checkpoint-dir DIR`` persists each completed
experiment atomically and resumes an interrupted sweep from where it
stopped; ``--inject-faults SPEC`` runs the whole sweep under the fault
harness (see :mod:`repro.resilience.faults` for the clause grammar).
An interrupted run -- real Ctrl-C or an injected ``abort-after=N`` --
exits with code 130, the checkpoints already on disk.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys
import threading
import time
from typing import Dict, List, Optional

from repro.experiments import (
    fig3,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    staticvs,
    storereg,
    table1,
)
from repro.experiments.context import SuiteContext
from repro.telemetry import MODES, NULL_TELEMETRY, Telemetry, emit

EXPERIMENTS = {
    "fig3": (fig3.run, fig3.render),
    "fig5": (fig5.run, fig5.render),
    "fig6": (fig6.run, fig6.render),
    "fig7": (fig7.run, fig7.render),
    "fig8": (fig8.run, fig8.render),
    "fig9": (fig9.run, fig9.render),
    "table1": (table1.run, table1.render),
    "staticvs": (staticvs.run, staticvs.render),
    "storereg": (storereg.run, storereg.render),
}


def _jsonable(value: object) -> object:
    """Strip non-serializable objects (profiles, distributions) down to
    plain data for --json output."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, float) and not math.isfinite(value):
        # json.dump would emit bare NaN/Infinity literals, which are not
        # JSON; null is the honest portable encoding.
        return None
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    fractions = getattr(value, "fractions", None)
    if callable(fractions):
        return {
            "fractions": _jsonable(fractions()),
            "total_pairs": _jsonable(getattr(value, "total_pairs", None)),
        }
    return repr(value)


class _Heartbeat:
    """Background progress line for long-running experiments.

    Prints ``[heartbeat] <name> running (12s)`` to stderr every
    ``interval`` seconds until the guarded block exits.  A zero or
    negative interval disables it entirely.
    """

    def __init__(self, name: str, interval: float) -> None:
        self._name = name
        self._interval = interval
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def __enter__(self) -> "_Heartbeat":
        if self._interval > 0:
            self._thread = threading.Thread(target=self._beat, daemon=True)
            self._thread.start()
        return self

    def __exit__(self, *exc_info) -> bool:
        self._stop.set()
        if self._thread is not None:
            self._thread.join()
        return False

    def _beat(self) -> None:
        started = time.perf_counter()
        while not self._stop.wait(self._interval):
            elapsed = time.perf_counter() - started
            print(
                f"[heartbeat] {self._name} running ({elapsed:.0f}s)",
                file=sys.stderr,
                flush=True,
            )


class _SimulatedInterrupt(Exception):
    """An injected ``abort-after=N`` fired mid-sweep: stop exactly as a
    Ctrl-C would, with checkpoints for everything already completed."""


class _Sweep:
    """Book-keeping shared by the serial and parallel sweep paths:
    per-experiment status records, checkpoint persistence and restore,
    and the simulated-interrupt countdown.

    A record is ``{status, elapsed_seconds, results[, error]}`` with
    ``status`` one of ``ok`` (clean), ``retried`` (clean results, but
    the pool needed resubmissions or a serial fallback), ``degraded``
    (faults landed in the data; results reflect a reduced capture) or
    ``failed`` (the experiment raised; ``error`` has the text).  The
    records dict is exactly what ``--json`` serializes.
    """

    def __init__(self, store, abort_after: Optional[int], telemetry) -> None:
        self.store = store
        self.abort_after = abort_after
        self.telemetry = telemetry
        self.records: Dict[str, Dict[str, object]] = {}
        self._newly_completed = 0

    def restore(self, name: str) -> bool:
        """Adopt ``name``'s checkpoint if one is loadable: record
        restored, saved span tree grafted back under the live root."""
        if self.store is None:
            return False
        saved = self.store.load(name)
        if saved is None:
            return False
        record: Dict[str, object] = {
            "status": saved.get("status", "ok"),
            "elapsed_seconds": saved.get("elapsed_seconds", 0.0),
            "results": saved.get("results"),
        }
        if saved.get("error"):
            record["error"] = saved["error"]
        self.records[name] = record
        span_data = saved.get("span")
        if span_data and self.telemetry.enabled:
            self.telemetry.root.absorb_plain(span_data)
        return True

    def record(
        self,
        name: str,
        status: str,
        elapsed: float,
        results: object,
        error: Optional[str] = None,
        span_data=None,
    ) -> None:
        """Record one completed experiment (checkpointing it if a store
        is attached), then fire the simulated interrupt when the
        ``abort-after`` countdown hits zero."""
        record: Dict[str, object] = {
            "status": status,
            "elapsed_seconds": elapsed,
            "results": _jsonable(results) if results is not None else None,
        }
        if error:
            record["error"] = error
        self.records[name] = record
        if self.store is not None:
            payload = dict(record)
            if span_data is not None:
                payload["span"] = span_data
            self.store.save(name, payload)
        self._newly_completed += 1
        if (
            self.abort_after is not None
            and self._newly_completed >= self.abort_after
        ):
            raise _SimulatedInterrupt(name)

    @property
    def any_failed(self) -> bool:
        return any(
            record["status"] == "failed" for record in self.records.values()
        )


def _run_parallel(
    names: List[str],
    args: argparse.Namespace,
    telemetry,
    sweep: _Sweep,
    ledger_dir: Optional[str],
) -> None:
    """Fan whole experiments out to worker processes.

    Each worker builds its own :class:`SuiteContext` (traces are cheap
    relative to the experiments and cannot be shared across processes),
    runs one experiment, and reports its status, results, wall-clock,
    and span tree back; the parent grafts each worker's spans under its
    own root so ``--telemetry`` still shows one span per experiment.
    Results print in request order as they complete, and each is
    checkpointed the moment it exists -- an interrupt mid-sweep loses
    only the experiments still in flight.
    """
    from repro.parallel import ParallelExecutor
    from repro.parallel.workers import run_experiment

    injector = None
    if args.inject_faults:
        from repro.resilience import FaultInjector, parse_fault_spec

        injector = FaultInjector(parse_fault_spec(args.inject_faults), ledger_dir)
    executor = ParallelExecutor(
        jobs=args.jobs, telemetry=telemetry, fault_injector=injector
    )
    workers = executor.effective_jobs(len(names))
    print(
        f"running {len(names)} experiments in up to {workers} workers ...",
        flush=True,
    )
    tasks = [
        (
            name,
            args.scale,
            args.seed,
            not args.no_speed,
            telemetry.enabled,
            args.inject_faults,
            ledger_dir,
        )
        for name in names
    ]

    def progress(index: int, outcome) -> None:
        name = names[index]
        if outcome.error is not None:
            # The worker function itself crashed (not the experiment's
            # own guarded failure path) -- still just one failed row.
            print(f"[{name} FAILED: {outcome.error}]\n")
            sweep.record(name, "failed", 0.0, None, error=str(outcome.error))
            return
        name, status, results, elapsed, span_data, error = outcome.value
        if status == "ok" and (outcome.attempts > 1 or outcome.fallback):
            status = "retried"
        if span_data is not None:
            telemetry.root.absorb_plain(span_data)
        if status == "failed":
            headline = (error or "unknown error").splitlines()[0]
            print(f"[{name} FAILED: {headline}]\n")
        else:
            __, render = EXPERIMENTS[name]
            print(render(results))
            print(f"[{name} completed in {elapsed:.1f}s, status {status}]\n")
        sweep.record(
            name, status, elapsed, results, error=error, span_data=span_data
        )

    with _Heartbeat("experiments", args.heartbeat):
        executor.map_outcomes(
            run_experiment, tasks, label="experiments", progress=progress
        )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's figures and tables.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="EXPERIMENT",
        help=f"which experiments to run: {', '.join(EXPERIMENTS)}, all "
        "(default: all)",
    )
    parser.add_argument("--all", action="store_true", help="run every experiment")
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="workload scale factor (default 1.0 = paper-shape calibration)",
    )
    parser.add_argument("--seed", type=int, default=0, help="workload seed")
    parser.add_argument(
        "--no-speed",
        action="store_true",
        help="skip the wall-clock dilation measurement in table1",
    )
    parser.add_argument("--json", metavar="PATH", help="also write results as JSON")
    parser.add_argument(
        "--telemetry",
        choices=MODES,
        help="self-profile the suite (one span per experiment) and print "
        "spans/metrics in the chosen format",
    )
    parser.add_argument(
        "--telemetry-out",
        metavar="PATH",
        help="write the telemetry output to PATH instead of stdout",
    )
    parser.add_argument(
        "--trace-out",
        metavar="PATH",
        help="trace the sweep (TRACELINK) and write its structured "
        "events as JSONL to PATH; implies telemetry collection",
    )
    parser.add_argument(
        "--heartbeat",
        type=float,
        default=0.0,
        metavar="SECS",
        help="print a progress line to stderr every SECS seconds while an "
        "experiment runs (0 disables)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="run up to N whole experiments concurrently in worker "
        "processes (0 = all CPUs; 1 = serial; falls back to serial "
        "when the platform lacks fork)",
    )
    parser.add_argument(
        "--inject-faults",
        metavar="SPEC",
        help="run the sweep under the fault harness; SPEC is a "
        "';'-joined clause list, e.g. "
        "'seed=7;corrupt-events=0.01;kill-task=2;timeout=30'",
    )
    parser.add_argument(
        "--checkpoint-dir",
        metavar="DIR",
        help="persist each completed experiment atomically under DIR "
        "and resume an interrupted sweep from what is already there",
    )
    args = parser.parse_args(argv)

    names = list(args.experiments)
    unknown = [n for n in names if n not in EXPERIMENTS and n != "all"]
    if unknown:
        parser.error(
            f"unknown experiment(s) {', '.join(unknown)}; "
            f"choose from {', '.join(EXPERIMENTS)} or all"
        )
    if args.all or "all" in names or not names:
        names = list(EXPERIMENTS)

    plan = None
    if args.inject_faults:
        from repro.resilience import parse_fault_spec

        try:
            plan = parse_fault_spec(args.inject_faults)
        except ValueError as exc:
            parser.error(str(exc))

    store = None
    ledger_dir = None
    if args.checkpoint_dir:
        from repro.resilience import CheckpointStore

        store = CheckpointStore(args.checkpoint_dir)
        # Kill-fault at-most-once state shares the checkpoint directory
        # so a resumed drill remembers which faults already fired.
        ledger_dir = os.path.join(args.checkpoint_dir, "fault-ledger")

    telemetry = (
        Telemetry() if (args.telemetry or args.trace_out) else NULL_TELEMETRY
    )
    obs_state = None
    if args.trace_out:
        from repro.obs import start_tracing

        obs_state = start_tracing(telemetry, trace_out=args.trace_out)
    sweep = _Sweep(
        store, plan.abort_after if plan is not None else None, telemetry
    )
    pending: List[str] = []
    for name in names:
        if sweep.restore(name):
            print(
                f"[resume] {name} restored from checkpoint "
                f"(status {sweep.records[name]['status']})",
                flush=True,
            )
        else:
            pending.append(name)

    from repro.parallel import resolve_jobs

    interrupted = False
    try:
        if resolve_jobs(args.jobs) > 1 and len(pending) > 1:
            _run_parallel(pending, args, telemetry, sweep, ledger_dir)
        else:
            _run_serial(pending, args, telemetry, sweep, plan, ledger_dir)
    except (_SimulatedInterrupt, KeyboardInterrupt) as exc:
        interrupted = True
        cause = (
            f"abort-after fired at {exc}"
            if isinstance(exc, _SimulatedInterrupt)
            else "keyboard interrupt"
        )
        print(
            f"[sweep interrupted ({cause}); "
            f"{len(sweep.records)} checkpointed result(s) preserved]",
            file=sys.stderr,
            flush=True,
        )

    if args.json:
        from repro.core.fsutil import atomic_write_text

        atomic_write_text(args.json, json.dumps(sweep.records, indent=2))
        print(f"JSON results written to {args.json}")
    if obs_state is not None:
        from repro.obs import finish_tracing

        context, events = obs_state
        finish_tracing(
            telemetry, context, events,
            meta={"command": "repro-experiments", "experiments": names},
        )
        print(f"trace {context.trace_id}")
    emit(telemetry, args.telemetry, args.telemetry_out)
    if interrupted:
        return 130
    return 1 if sweep.any_failed else 0


def _run_serial(
    names: List[str],
    args: argparse.Namespace,
    telemetry,
    sweep: _Sweep,
    plan,
    ledger_dir: Optional[str],
) -> None:
    """The in-process sweep: one shared :class:`SuiteContext`, each
    experiment guarded so a failure becomes a ``failed`` record instead
    of aborting the remainder."""
    import traceback

    injector = None
    if plan is not None:
        from repro.resilience import FaultInjector

        injector = FaultInjector(plan, ledger_dir)
    context = SuiteContext(
        scale=args.scale,
        seed=args.seed,
        telemetry=telemetry if telemetry.enabled else None,
        fault_injector=injector,
    )
    for index, name in enumerate(names, start=1):
        run, render = EXPERIMENTS[name]
        print(f"[{index}/{len(names)}] running {name} ...", flush=True)
        start = time.perf_counter()
        results = None
        error = None
        with _Heartbeat(name, args.heartbeat), telemetry.span(name) as span:
            try:
                if name == "table1":
                    results = run(context, measure_speed=not args.no_speed)
                else:
                    results = run(context)
                status = "degraded" if context.fault_activity() else "ok"
            except KeyboardInterrupt:
                raise
            except Exception as exc:  # noqa: BLE001 - contain, report
                status = "failed"
                error = f"{type(exc).__name__}: {exc}\n{traceback.format_exc()}"
        elapsed = time.perf_counter() - start
        if status == "failed":
            assert error is not None
            print(f"[{name} FAILED: {error.splitlines()[0]}]\n")
        else:
            print(render(results))
            print(f"[{name} completed in {elapsed:.1f}s, status {status}]\n")
        sweep.record(
            name,
            status,
            elapsed,
            results,
            error=error,
            span_data=span.to_plain() if telemetry.enabled else None,
        )


if __name__ == "__main__":
    sys.exit(main())
