"""Tests for static LMAD inference over the mini-IR."""

import pytest

from repro.lang import parse
from repro.lang.analysis import (
    PROVED_INDEPENDENT,
    PROVED_REGULAR,
    UNKNOWN_CLASS,
    StaticLmadAnalyzer,
    analyze_source,
)
from repro.lang.analysis.static_lmad import REGULAR_CLASSES
from repro.lang.analysis.affine import Affine


def instruction(result, fragment):
    matches = [
        i for i in result.instructions.values() if fragment in i.name
    ]
    assert matches, f"no instruction matching {fragment!r}"
    assert len(matches) == 1, f"ambiguous fragment {fragment!r}"
    return matches[0]


class TestAffine:
    def test_arithmetic(self):
        a = Affine.symbol("i", 3).add_const(2)
        b = Affine.symbol("j", 5)
        total = a.add(b)
        assert total.const == 2
        assert total.coeff("i") == 3 and total.coeff("j") == 5
        assert total.sub(b) == a

    def test_mul_requires_constant_side(self):
        i = Affine.symbol("i")
        assert i.mul(Affine.constant(4)) == Affine.symbol("i", 4)
        assert i.mul(Affine.symbol("j")) is None

    def test_zero_coefficients_normalize_away(self):
        assert Affine.symbol("i", 0) == Affine.constant(0)
        assert Affine.symbol("i").sub(Affine.symbol("i")).is_const


class TestSimpleLoops:
    def test_unit_stride_fill(self):
        result = analyze_source(
            """
            fn main(): int {
              var a: int* = new int[10];
              for (var i: int = 0; i < 10; i = i + 1) { a[i] = i; }
              delete a;
              return 0;
            }
            """
        )
        store = instruction(result, "store:[]")
        assert store.classification in REGULAR_CLASSES
        assert store.exec_count == 10
        points = result.points(store.node_key, store.sites[0])
        assert points == [(0, offset) for offset in range(0, 80, 8)]

    def test_strided_and_offset_access(self):
        result = analyze_source(
            """
            fn main(): int {
              var a: int* = new int[64];
              for (var i: int = 0; i < 8; i = i + 1) { a[i * 4 + 1] = i; }
              delete a;
              return 0;
            }
            """
        )
        store = instruction(result, "store:[]")
        points = result.points(store.node_key, store.sites[0])
        assert points == [(0, 8 + 32 * i) for i in range(8)]

    def test_nested_loops_row_major(self):
        result = analyze_source(
            """
            fn main(): int {
              var a: int* = new int[12];
              for (var r: int = 0; r < 3; r = r + 1) {
                for (var c: int = 0; c < 4; c = c + 1) {
                  a[r * 4 + c] = r;
                }
              }
              delete a;
              return 0;
            }
            """
        )
        store = instruction(result, "store:[]")
        assert store.exec_count == 12
        points = result.points(store.node_key, store.sites[0])
        # row-major: execution order is offset order
        assert points == [(0, 8 * k) for k in range(12)]

    def test_downward_loop(self):
        result = analyze_source(
            """
            fn main(): int {
              var a: int* = new int[8];
              for (var i: int = 7; i >= 0; i = i - 1) { a[i] = i; }
              delete a;
              return 0;
            }
            """
        )
        store = instruction(result, "store:[]")
        assert store.classification in REGULAR_CLASSES
        points = result.points(store.node_key, store.sites[0])
        assert points == [(0, 8 * i) for i in range(7, -1, -1)]

    def test_zero_trip_loop_records_nothing(self):
        result = analyze_source(
            """
            fn main(): int {
              var a: int* = new int[4];
              for (var i: int = 0; i < 0; i = i + 1) { a[i] = i; }
              delete a;
              return 0;
            }
            """
        )
        assert not any(
            "store:[]" in i.name for i in result.instructions.values()
        )


class TestAllocationSerials:
    def test_per_iteration_allocations_get_serial_stride(self):
        result = analyze_source(
            """
            struct node { int data; node* next; }
            fn main(): int {
              for (var i: int = 0; i < 5; i = i + 1) {
                var fresh: node* = new node;
                fresh->data = i;
              }
              return 0;
            }
            """
        )
        store = instruction(result, "store:->data")
        assert store.classification in REGULAR_CLASSES
        points = result.points(store.node_key, store.sites[0])
        # serial advances with the loop, offset stays at field 0
        assert points == [(serial, 0) for serial in range(5)]


class TestIrregularity:
    def test_pointer_chase_is_unknown(self):
        result = analyze_source(
            """
            struct node { int data; node* next; }
            fn main(): int {
              var head: node* = null;
              for (var i: int = 0; i < 4; i = i + 1) {
                var fresh: node* = new node;
                fresh->next = head;
                head = fresh;
              }
              var total: int = 0;
              var p: node* = head;
              while (p != null) {
                total = total + p->data;
                p = p->next;
              }
              return total;
            }
            """
        )
        load = instruction(result, "load:->data")
        assert load.classification == UNKNOWN_CLASS

    def test_data_dependent_index_is_unknown(self):
        result = analyze_source(
            """
            global int k;
            fn main(): int {
              var a: int* = new int[16];
              for (var i: int = 0; i < 4; i = i + 1) {
                a[k] = i;
                k = k + i;
              }
              delete a;
              return 0;
            }
            """
        )
        store = instruction(result, "store:[]")
        assert store.classification == UNKNOWN_CLASS

    def test_loop_rewriting_its_bound_is_unknown(self):
        result = analyze_source(
            """
            global int n;
            fn main(): int {
              n = 8;
              var a: int* = new int[64];
              for (var i: int = 0; i < n; i = i + 1) {
                a[i] = i;
                n = n - 1;
              }
              delete a;
              return 0;
            }
            """
        )
        store = instruction(result, "store:[]")
        assert store.classification == UNKNOWN_CLASS


class TestGlobalScalars:
    def test_global_bound_recognized(self):
        result = analyze_source(
            """
            global int n;
            fn main(): int {
              n = 6;
              var a: int* = new int[6];
              for (var i: int = 0; i < n; i = i + 1) { a[i] = i; }
              delete a;
              return 0;
            }
            """
        )
        store = instruction(result, "store:[]")
        assert store.classification in REGULAR_CLASSES
        assert store.exec_count == 6

    def test_condition_load_counts_trips_plus_one(self):
        result = analyze_source(
            """
            global int n;
            fn main(): int {
              n = 6;
              var a: int* = new int[6];
              for (var i: int = 0; i < n; i = i + 1) { a[i] = i; }
              delete a;
              return 0;
            }
            """
        )
        # `n` is loaded once per condition check: trips + 1 times.
        loads = [
            i for i in result.instructions.values()
            if i.verb == "load" and "load:n" in i.name
        ]
        assert loads and loads[0].exec_count == 7


class TestDependences:
    def test_overlapping_store_load_conflict(self):
        result = analyze_source(
            """
            fn main(): int {
              var a: int* = new int[8];
              for (var i: int = 0; i < 8; i = i + 1) { a[i] = i; }
              var total: int = 0;
              for (var j: int = 0; j < 8; j = j + 1) { total = total + a[j]; }
              delete a;
              return total;
            }
            """
        )
        store = instruction(result, "store:[]")
        load = instruction(result, "load:[]")
        pairs = {
            (w, r) for w, r, __ in result.dependences()
        }
        assert (store.node_key, load.node_key) in pairs

    def test_disjoint_halves_proved_independent(self):
        result = analyze_source(
            """
            fn main(): int {
              var a: int* = new int[8];
              for (var i: int = 0; i < 4; i = i + 1) { a[i] = i; }
              var total: int = 0;
              for (var j: int = 4; j < 8; j = j + 1) { total = total + a[j]; }
              delete a;
              return total;
            }
            """
        )
        load = instruction(result, "load:[]")
        assert load.classification == PROVED_INDEPENDENT
        pairs = {(w, r) for w, r, __ in result.dependences()}
        store = instruction(result, "store:[]")
        assert (store.node_key, load.node_key) not in pairs


class TestEntryArguments:
    def test_entry_args_bind_parameters(self):
        program = parse(
            """
            fn main(count: int): int {
              var a: int* = new int[16];
              for (var i: int = 0; i < count; i = i + 1) { a[i] = i; }
              delete a;
              return 0;
            }
            """
        )
        result = StaticLmadAnalyzer(program, args=(3,)).run()
        store = instruction(result, "store:[]")
        assert store.exec_count == 3
