"""Tests for the footnote-2 custom-pool parameterization: pools as
single objects vs. instrumented carve points."""

import pytest

from repro.core.cdc import translate_trace, translate_trace_list
from repro.core.events import AccessKind, AllocEvent
from repro.core.omc import ObjectManager
from repro.profilers.whomp import WhompProfiler
from repro.runtime.process import Process
from repro.workloads.registry import create


class TestProcessPoolApi:
    def test_untracked_malloc_fires_no_probe(self):
        process = Process()
        before = len(list(process.trace.object_events()))
        process.malloc("pool", 4096, track=False)
        after = len(
            [e for e in process.trace.object_events() if isinstance(e, AllocEvent)]
        )
        assert after == before == 0 or after == before  # no new alloc events

    def test_untracked_free_fires_no_probe(self):
        process = Process()
        address = process.malloc("pool", 4096, track=False)
        process.free(address)
        from repro.core.events import FreeEvent

        frees = [e for e in process.trace if isinstance(e, FreeEvent)]
        assert frees == []

    def test_mark_and_unmark_fire_probes(self):
        process = Process()
        pool = process.malloc("pool", 4096, track=False)
        process.mark_object(pool + 64, 32, "carve", type_name="node")
        process.unmark_object(pool + 64)
        allocs = [e for e in process.trace if isinstance(e, AllocEvent)]
        assert len(allocs) == 1
        assert allocs[0].site == "carve"
        assert allocs[0].size == 32

    def test_mark_outside_memory_rejected(self):
        from repro.runtime.memory import MemoryError_

        process = Process()
        process.link()
        with pytest.raises(MemoryError_):
            process.mark_object(0, 8, "carve")

    def test_carved_accesses_translate_to_carved_objects(self):
        process = Process()
        pool = process.malloc("pool", 4096, track=False)
        ld = process.instruction("ld", AccessKind.LOAD)
        process.mark_object(pool + 128, 32, "carve")
        process.load(ld, pool + 136)
        process.finish()
        access = translate_trace_list(process.trace)[0]
        assert not access.wild
        assert access.offset == 8  # relative to the carved node

    def test_access_outside_carves_is_wild(self):
        process = Process()
        pool = process.malloc("pool", 4096, track=False)
        ld = process.instruction("ld", AccessKind.LOAD)
        process.load(ld, pool)  # pool is untracked, nothing carved here
        process.finish()
        assert translate_trace_list(process.trace)[0].wild


class TestParserVariants:
    @pytest.fixture(scope="class")
    def traces(self):
        return {
            name: create(name, scale=0.2).trace()
            for name in ("parser", "parser.carved")
        }

    def test_same_access_stream_lengths(self, traces):
        assert (
            traces["parser"].access_count
            == traces["parser.carved"].access_count
        )

    def test_carving_multiplies_objects(self, traces):
        def object_count(trace):
            omc = ObjectManager()
            list(translate_trace(trace, omc))
            return len(omc.objects())

        assert object_count(traces["parser"]) < 10
        assert object_count(traces["parser.carved"]) > 100

    def test_carved_offsets_are_node_relative(self, traces):
        carved = translate_trace_list(traces["parser.carved"])
        node_accesses = [
            a for a in carved if not a.wild and a.object_serial > 10
        ]
        # every carved-node access is within a 4-word node
        assert node_accesses
        assert all(0 <= a.offset < 32 for a in node_accesses)

    def test_flat_offsets_span_the_arena(self, traces):
        flat = translate_trace_list(traces["parser"])
        arena_offsets = {a.offset for a in flat if not a.wild}
        assert max(arena_offsets) > 32  # offsets span the whole pool

    def test_both_remain_whomp_lossless(self, traces):
        for trace in traces.values():
            profile = WhompProfiler().profile(trace)
            raw = [(e.instruction_id, e.address) for e in trace.accesses()]
            assert profile.reconstruct_accesses() == raw

    def test_no_wild_accesses_in_either(self, traces):
        for trace in traces.values():
            assert not any(a.wild for a in translate_trace_list(trace))


class TestOnlineWhomp:
    def test_online_equals_offline(self):
        from repro.workloads.micro import MatrixTraversal

        workload = MatrixTraversal(rows=15, cols=15)
        process = Process()
        session = WhompProfiler().attach(process.bus)
        workload.run(process)
        process.finish()
        online = session.finish()
        offline = WhompProfiler().profile(process.trace)
        assert online.access_count == offline.access_count
        for name in online.grammars:
            assert (
                online.grammars[name].expand()
                == offline.grammars[name].expand()
            )
        assert online.base_addresses == offline.base_addresses
