"""Field reordering from the offset dimension of the profile.

Section 3.2: "the offset-level grammar can be used for optimizations
like field-reordering.  A frequently repeated offset sequence, say
(0, 36)*, along with the object lifetime information ... may reveal
field-reordering opportunity to the compiler to take advantage of
spatial locality."

For each group, the offsets accessed within its objects are ranked by
a combination of access frequency and pairwise temporal affinity; hot
fields are packed first so they share cache lines.  The proposed
per-group offset permutation is evaluated by replaying the trace with
remapped intra-object offsets through the cache simulator.

Only word-aligned offsets are permuted (the workloads' access
granularity); groups whose objects are smaller than a cache line are
skipped -- reordering inside one line cannot change miss counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

from repro.core.cdc import translate_trace
from repro.core.events import Trace
from repro.core.omc import ObjectManager
from repro.core.tuples import ObjectRelativeAccess
from repro.runtime.cache import CacheConfig, SimulationComparison, simulate

WORD = 8


@dataclass
class FieldOrder:
    """Proposed field layout for one group: old offset -> new offset."""

    group: int
    remap: Dict[int, int]

    def apply(self, offset: int) -> int:
        return self.remap.get(offset, offset)


def field_statistics(
    stream: Iterable[ObjectRelativeAccess], window: int = 4
) -> Tuple[Dict[int, Dict[int, int]], Dict[int, Dict[Tuple[int, int], int]]]:
    """Per-group offset frequencies and pairwise offset affinities."""
    frequency: Dict[int, Dict[int, int]] = {}
    affinity: Dict[int, Dict[Tuple[int, int], int]] = {}
    recent: List[ObjectRelativeAccess] = []
    for access in stream:
        if access.wild:
            continue
        group_frequency = frequency.setdefault(access.group, {})
        group_frequency[access.offset] = group_frequency.get(access.offset, 0) + 1
        for other in recent:
            if (
                other.group == access.group
                and other.object_serial == access.object_serial
                and other.offset != access.offset
            ):
                pair = (
                    min(access.offset, other.offset),
                    max(access.offset, other.offset),
                )
                group_affinity = affinity.setdefault(access.group, {})
                group_affinity[pair] = group_affinity.get(pair, 0) + 1
        recent.append(access)
        if len(recent) > window:
            recent.pop(0)
    return frequency, affinity


def propose_orders(
    frequency: Dict[int, Dict[int, int]],
    affinity: Dict[int, Dict[Tuple[int, int], int]],
    object_sizes: Dict[int, int],
    line_bytes: int = 64,
) -> Dict[int, FieldOrder]:
    """Greedy layout per group: hottest field first, then repeatedly the
    field most affine to those already placed (frequency as the
    tie-breaker), packed at consecutive word offsets."""
    orders: Dict[int, FieldOrder] = {}
    for group, group_frequency in frequency.items():
        if object_sizes.get(group, 0) <= line_bytes:
            continue  # already fits one line; reordering is a no-op
        offsets = sorted(group_frequency)
        if len(offsets) < 2:
            continue
        group_affinity = affinity.get(group, {})
        placed: List[int] = [max(offsets, key=lambda o: group_frequency[o])]
        remaining = set(offsets) - set(placed)
        while remaining:
            def score(candidate: int) -> Tuple[int, int]:
                bond = sum(
                    group_affinity.get(
                        (min(candidate, p), max(candidate, p)), 0
                    )
                    for p in placed
                )
                return (bond, group_frequency[candidate])

            best = max(remaining, key=score)
            placed.append(best)
            remaining.discard(best)
        remap = {old: index * WORD for index, old in enumerate(placed)}
        if any(old != new for old, new in remap.items()):
            orders[group] = FieldOrder(group, remap)
    return orders


class FieldReorderer:
    """End-to-end field-reordering evaluation over one trace."""

    def __init__(self, window: int = 4, line_bytes: int = 64) -> None:
        self.window = window
        self.line_bytes = line_bytes

    def propose(self, trace: Trace) -> Dict[int, FieldOrder]:
        omc = ObjectManager()
        stream = list(translate_trace(trace, omc))
        frequency, affinity = field_statistics(stream, window=self.window)
        sizes: Dict[int, int] = {}
        for record in omc.objects():
            sizes[record.group_id] = max(
                sizes.get(record.group_id, 0), record.size
            )
        return propose_orders(frequency, affinity, sizes, self.line_bytes)

    def evaluate(
        self, trace: Trace, config: CacheConfig = CacheConfig()
    ) -> SimulationComparison:
        orders = self.propose(trace)
        omc = ObjectManager()
        baseline: List[int] = []
        optimized: List[int] = []
        events = list(trace.accesses())
        for event, access in zip(events, translate_trace(trace, omc)):
            baseline.append(event.address)
            order = orders.get(access.group)
            if order is None or access.wild:
                optimized.append(event.address)
            else:
                base = event.address - access.offset
                optimized.append(base + order.apply(access.offset))
        return SimulationComparison(
            baseline=simulate(baseline, config),
            optimized=simulate(optimized, config),
            label="field reordering",
            extra={"groups_reordered": len(orders)},
        )
