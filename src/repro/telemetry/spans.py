"""Nestable timing spans and the telemetry facade.

A :class:`Span` is one named stage of the pipeline -- trace-collection,
translation, decomposition, compression -- timed with the wall clock and
annotated with a throughput item count (accesses, symbols).  Spans nest:
entering a span while another is open makes it a child, so a profiled
run yields a span *tree* mirroring the paper's Figure 4 pipeline.
Re-entering the same name under the same parent merges into one node
(``calls`` increments and wall time accumulates), which keeps loops from
exploding the tree.

:class:`Telemetry` bundles a span tree with a
:class:`~repro.telemetry.registry.Registry` and is what gets threaded
through the pipeline.  :class:`NullTelemetry` is the disabled fast
path: every operation is a no-op against shared singletons, and
instrumented components check ``telemetry.enabled`` once at
construction time so uninstrumented runs keep the seed hot paths
byte-for-byte identical.
"""

from __future__ import annotations

import os
import time
from typing import Callable, Dict, Iterator, List, Optional, Tuple, Union

from repro.telemetry.registry import Counter, Gauge, Histogram, Registry


class Span:
    """One node of the span tree: accumulated wall time plus counts.

    Beyond the duration accounting, every span carries its position on
    a *shared timeline*: ``start_ts`` / ``end_ts`` are absolute
    wall-clock stamps (first entry, last exit; 0.0 = never entered), so
    span trees absorbed from pool workers or remote daemons order
    correctly against the parent's own spans.  When the owning
    :class:`Telemetry` has a trace id attached (see
    :mod:`repro.obs.context`), spans are stamped with it plus a fresh
    64-bit span id on first entry -- the TRACELINK linkage.
    """

    __slots__ = ("name", "parent", "children", "calls", "seconds", "items",
                 "unit", "trace_id", "span_id", "start_ts", "end_ts")

    def __init__(self, name: str, parent: Optional["Span"] = None) -> None:
        self.name = name
        self.parent = parent
        self.children: Dict[str, "Span"] = {}
        self.calls = 0
        self.seconds = 0.0
        self.items = 0
        self.unit = "items"
        self.trace_id: Optional[str] = None
        self.span_id: Optional[str] = None
        self.start_ts = 0.0
        self.end_ts = 0.0

    def child(self, name: str) -> "Span":
        """Get-or-create the named child (same-name spans merge)."""
        span = self.children.get(name)
        if span is None:
            span = Span(name, parent=self)
            self.children[name] = span
        return span

    def add_items(self, count: int, unit: Optional[str] = None) -> None:
        """Attribute ``count`` processed items to this span; the
        exporters derive per-stage throughput (items/sec) from it."""
        self.items += count
        if unit is not None:
            self.unit = unit

    @property
    def throughput(self) -> float:
        """Items per second over the accumulated wall time."""
        if self.seconds <= 0.0 or not self.items:
            return 0.0
        return self.items / self.seconds

    @property
    def path(self) -> str:
        """Slash-joined path from the root, e.g. ``whomp/compression``."""
        parts: List[str] = []
        node: Optional[Span] = self
        while node is not None and node.name:
            parts.append(node.name)
            node = node.parent
        return "/".join(reversed(parts))

    def walk(self, depth: int = 0) -> Iterator[Tuple[int, "Span"]]:
        """Depth-first (depth, span) pairs, children in creation order."""
        yield depth, self
        for child in self.children.values():
            yield from child.walk(depth + 1)

    def to_plain(self) -> Dict[str, object]:
        """This subtree as plain data -- the cross-process span wire
        format used when pool workers report their timings back."""
        return {
            "name": self.name,
            "calls": self.calls,
            "seconds": self.seconds,
            "items": self.items,
            "unit": self.unit,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "start_ts": self.start_ts,
            "end_ts": self.end_ts,
            "children": [child.to_plain() for child in self.children.values()],
        }

    def absorb_plain(self, data: Dict[str, object]) -> "Span":
        """Merge a :meth:`to_plain` tree (usually from a worker process)
        under this span, accumulating into same-name children exactly
        like re-entering a live span would.

        Timeline fields merge like a re-entry: the earliest non-zero
        ``start_ts`` and the latest ``end_ts`` win, so a span absorbed
        from several workers spans their combined wall-clock window.
        Trace/span ids are adopted only when the live node has none --
        a node the parent already stamped keeps its identity.
        """
        node = self.child(str(data["name"]))
        node.calls += int(data.get("calls", 0))
        node.seconds += float(data.get("seconds", 0.0))
        node.items += int(data.get("items", 0))
        unit = data.get("unit")
        if unit is not None:
            node.unit = str(unit)
        start_ts = float(data.get("start_ts") or 0.0)
        if start_ts > 0.0 and (node.start_ts == 0.0 or start_ts < node.start_ts):
            node.start_ts = start_ts
        end_ts = float(data.get("end_ts") or 0.0)
        if end_ts > node.end_ts:
            node.end_ts = end_ts
        if node.trace_id is None and data.get("trace_id") is not None:
            node.trace_id = str(data["trace_id"])
        if node.span_id is None and data.get("span_id") is not None:
            node.span_id = str(data["span_id"])
        for child in data.get("children", ()):
            node.absorb_plain(child)
        return node

    def __repr__(self) -> str:
        return (
            f"Span({self.path or '<root>'}: {self.seconds * 1e3:.2f}ms, "
            f"{self.calls} calls, {self.items} {self.unit})"
        )


class _SpanContext:
    """Context manager driving one enter/exit of a span."""

    __slots__ = ("_telemetry", "_span", "_start", "_items_at_enter")

    def __init__(self, telemetry: "Telemetry", span: Span) -> None:
        self._telemetry = telemetry
        self._span = span
        self._start = 0.0
        self._items_at_enter = 0

    def __enter__(self) -> Span:
        telemetry = self._telemetry
        span = self._span
        telemetry._stack.append(span)
        span.calls += 1
        if telemetry.trace_id is not None and span.trace_id is None:
            span.trace_id = telemetry.trace_id
            span.span_id = os.urandom(8).hex()
        now = time.time()
        if span.start_ts == 0.0 or now < span.start_ts:
            span.start_ts = now
        self._items_at_enter = span.items
        self._start = telemetry._clock()
        return span

    def __exit__(self, *exc_info) -> bool:
        telemetry = self._telemetry
        span = self._span
        elapsed = telemetry._clock() - self._start
        span.seconds += elapsed
        span.end_ts = max(span.end_ts, time.time())
        telemetry._stack.pop()
        events = telemetry.events
        if events is not None:
            # One structured record per stage exit; ``seconds``/``items``
            # are this entry's own share, so summing stage events
            # reconstructs the span totals.
            events.emit(
                "stage",
                trace=span.trace_id,
                span=span.span_id,
                path=span.path,
                seconds=elapsed,
                items=span.items - self._items_at_enter,
                unit=span.unit,
            )
        return False


class Telemetry:
    """The live observability facade threaded through the pipeline.

    >>> telemetry = Telemetry()
    >>> with telemetry.span("compression") as span:
    ...     telemetry.counter("symbols").inc(4)
    ...     span.add_items(4, "symbols")
    >>> telemetry.registry.value("symbols")
    4
    """

    enabled = True

    def __init__(
        self,
        registry: Optional[Registry] = None,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self.registry = registry if registry is not None else Registry()
        self.root = Span("")
        self._stack: List[Span] = [self.root]
        self._clock = clock
        #: when set (a 32-hex trace id, see :mod:`repro.obs.context`),
        #: spans are stamped with it plus fresh span ids on first entry
        self.trace_id: Optional[str] = None
        #: an optional event sink (duck-typed ``emit(kind, **fields)``,
        #: usually a :class:`repro.obs.events.EventLog`); span exits
        #: emit one ``stage`` record each when attached
        self.events = None

    # -- spans ---------------------------------------------------------

    def span(self, name: str) -> _SpanContext:
        """Open (or re-enter) the named span under the current one."""
        return _SpanContext(self, self._stack[-1].child(name))

    @property
    def current_span(self) -> Span:
        return self._stack[-1]

    def spans(self) -> List[Span]:
        """The top-level spans, in creation order."""
        return list(self.root.children.values())

    def find_span(self, path: str) -> Optional[Span]:
        """Look a span up by its slash path (``whomp/compression``)."""
        node = self.root
        for part in path.split("/"):
            node = node.children.get(part)  # type: ignore[assignment]
            if node is None:
                return None
        return node

    # -- metrics (registry delegates) ----------------------------------

    def counter(self, name: str, help: str = "") -> Counter:
        return self.registry.counter(name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self.registry.gauge(name, help)

    def histogram(self, name: str, help: str = "", **kwargs) -> Histogram:
        return self.registry.histogram(name, help, **kwargs)


class _NullMetric:
    """Accepts every metric operation and records nothing."""

    __slots__ = ()

    name = "null"
    value = 0

    def inc(self, amount: int = 1) -> None:
        pass

    def set(self, value: Union[int, float]) -> None:
        pass

    def add(self, delta: Union[int, float]) -> None:
        pass

    def set_max(self, value: Union[int, float]) -> None:
        pass

    def observe(self, value: Union[int, float]) -> None:
        pass


class _NullSpan(Span):
    """A span that swallows item attribution."""

    __slots__ = ()

    def __init__(self) -> None:
        super().__init__("null")

    def add_items(self, count: int, unit: Optional[str] = None) -> None:
        pass


class _NullSpanContext:
    """Shared no-op context manager for disabled telemetry."""

    __slots__ = ("_span",)

    def __init__(self, span: _NullSpan) -> None:
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, *exc_info) -> bool:
        return False


class NullTelemetry(Telemetry):
    """Disabled telemetry: every call is a no-op on shared singletons.

    Components consult ``telemetry.enabled`` once, at construction, and
    leave their hot paths untouched when it is False -- so a run under
    :data:`NULL_TELEMETRY` (the default everywhere) pays no per-event
    cost.  The registry stays empty and the span tree stays bare.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__()
        self._null_metric = _NullMetric()
        self._null_context = _NullSpanContext(_NullSpan())

    def span(self, name: str) -> _NullSpanContext:  # type: ignore[override]
        return self._null_context

    def counter(self, name: str, help: str = "") -> Counter:  # type: ignore[override]
        return self._null_metric  # type: ignore[return-value]

    def gauge(self, name: str, help: str = "") -> Gauge:  # type: ignore[override]
        return self._null_metric  # type: ignore[return-value]

    def histogram(self, name: str, help: str = "", **kwargs) -> Histogram:  # type: ignore[override]
        return self._null_metric  # type: ignore[return-value]


#: Process-wide disabled-telemetry singleton; the default for every
#: instrumented component.
NULL_TELEMETRY = NullTelemetry()


def coalesce(telemetry: Optional[Telemetry]) -> Telemetry:
    """``telemetry`` if given, else the null singleton."""
    return telemetry if telemetry is not None else NULL_TELEMETRY
