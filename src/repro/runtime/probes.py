"""Instrumentation probes.

Section 2.3 of the paper: "The program is instrumented by inserting
instruction and object probes into the target program.  The instruction
probes are inserted next to every load and store instruction...  Object
probes are introduced at object creation and destruction points."

Here instrumentation is a bus between the simulated process and any
number of probe sinks.  A sink is anything implementing the three
``on_*`` callbacks: a :class:`TraceRecorder` for offline profiling, or a
profiler's CDC directly for online profiling (the paper's
thread-to-thread communication, minus the threads).
"""

from __future__ import annotations

from typing import List, Optional, Protocol

from repro.core.events import AccessKind, Trace
from repro.telemetry.spans import Telemetry, coalesce


class ProbeSink(Protocol):
    """The consumer side of the probe bus."""

    def on_access(
        self, instruction_id: int, address: int, size: int, kind: AccessKind
    ) -> None:
        """Called by an instruction probe for every executed load/store."""

    def on_alloc(
        self, address: int, size: int, site: str, type_name: Optional[str]
    ) -> None:
        """Called by an object probe at object creation."""

    def on_free(self, address: int) -> None:
        """Called by an object probe at object destruction."""


class ProbeBus:
    """Fans probe firings out to every attached sink.

    With no sinks attached the bus models the *uninstrumented* program:
    :meth:`fire_access` degenerates to a cheap no-op, which is what the
    dilation-factor measurements of Table 1 compare against.

    Passing an enabled :class:`~repro.telemetry.spans.Telemetry` counts
    every probe firing (``probe.accesses`` / ``probe.allocs`` /
    ``probe.frees``); the counting variants are swapped in at
    construction so the default null-telemetry path is unchanged.
    """

    def __init__(self, telemetry: Optional[Telemetry] = None) -> None:
        self._sinks: List[ProbeSink] = []
        telemetry = coalesce(telemetry)
        if telemetry.enabled:
            self._access_counter = telemetry.counter(
                "probe.accesses", "load/store instruction probes fired"
            )
            self._alloc_counter = telemetry.counter(
                "probe.allocs", "object creation probes fired"
            )
            self._free_counter = telemetry.counter(
                "probe.frees", "object destruction probes fired"
            )
            self.fire_access = self._fire_access_counted  # type: ignore[method-assign]
            self.fire_alloc = self._fire_alloc_counted  # type: ignore[method-assign]
            self.fire_free = self._fire_free_counted  # type: ignore[method-assign]

    def attach(self, sink: ProbeSink) -> None:
        self._sinks.append(sink)

    def detach(self, sink: ProbeSink) -> None:
        """Detach a sink; detaching one that is not attached is a no-op
        (profiler sessions may be finished more than once)."""
        try:
            self._sinks.remove(sink)
        except ValueError:
            pass

    @property
    def instrumented(self) -> bool:
        return bool(self._sinks)

    def fire_access(
        self, instruction_id: int, address: int, size: int, kind: AccessKind
    ) -> None:
        for sink in self._sinks:
            sink.on_access(instruction_id, address, size, kind)

    def fire_alloc(
        self, address: int, size: int, site: str, type_name: Optional[str]
    ) -> None:
        for sink in self._sinks:
            sink.on_alloc(address, size, site, type_name)

    def fire_free(self, address: int) -> None:
        for sink in self._sinks:
            sink.on_free(address)

    # -- telemetry-counting variants (swapped in when enabled) ---------

    def _fire_access_counted(
        self, instruction_id: int, address: int, size: int, kind: AccessKind
    ) -> None:
        self._access_counter.inc()
        for sink in self._sinks:
            sink.on_access(instruction_id, address, size, kind)

    def _fire_alloc_counted(
        self, address: int, size: int, site: str, type_name: Optional[str]
    ) -> None:
        self._alloc_counter.inc()
        for sink in self._sinks:
            sink.on_alloc(address, size, site, type_name)

    def _fire_free_counted(self, address: int) -> None:
        self._free_counter.inc()
        for sink in self._sinks:
            sink.on_free(address)


class FilteredSink:
    """A sink interposer: every access firing passes through a filter
    before reaching the wrapped sink.

    The filter receives ``(instruction_id, address, size, kind)`` and
    returns either a (possibly rewritten) 4-tuple to forward or
    ``None`` to drop the firing.  Object events forward untouched.
    This is the seam the fault harness uses to damage a live event
    stream (:meth:`repro.resilience.faults.FaultInjector.wrap_sink`)
    without the bus or the profilers knowing.
    """

    def __init__(self, sink: ProbeSink, access_filter) -> None:
        self._sink = sink
        self._filter = access_filter

    def on_access(
        self, instruction_id: int, address: int, size: int, kind: AccessKind
    ) -> None:
        record = self._filter(instruction_id, address, size, kind)
        if record is not None:
            self._sink.on_access(*record)

    def on_alloc(
        self, address: int, size: int, site: str, type_name: Optional[str]
    ) -> None:
        self._sink.on_alloc(address, size, site, type_name)

    def on_free(self, address: int) -> None:
        self._sink.on_free(address)


class TraceRecorder:
    """Probe sink that appends every firing to a :class:`Trace`.

    This is the offline-profiling path: record once, then feed the same
    trace to WHOMP, LEAP, and every baseline.
    """

    def __init__(self, trace: Optional[Trace] = None) -> None:
        self.trace = trace if trace is not None else Trace()

    def on_access(
        self, instruction_id: int, address: int, size: int, kind: AccessKind
    ) -> None:
        self.trace.record_access(instruction_id, address, size, kind)

    def on_alloc(
        self, address: int, size: int, site: str, type_name: Optional[str]
    ) -> None:
        self.trace.record_alloc(address, size, site, type_name)

    def on_free(self, address: int) -> None:
        self.trace.record_free(address)
