"""The paper's two object-relative profilers."""

from repro.profilers.leap import LeapProfile, LeapProfiler, OnlineLeapSession
from repro.profilers.whomp import OnlineWhompSession, WhompProfile, WhompProfiler

__all__ = [
    "LeapProfile", "LeapProfiler", "OnlineLeapSession", "OnlineWhompSession",
    "WhompProfile", "WhompProfiler",
]
