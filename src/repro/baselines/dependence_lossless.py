"""Lossless raw-address memory-dependence profiler (ground truth).

Section 4.2.1's baseline: "We used a lossless raw-address based profiler
which records the dependence information of all the memory operations in
a program...  Such a profiler is extremely slow and produces huge
profiles."  It defines the *true* memory dependence frequency (MDF):

    a (st, ld) pair conflicts when st accesses location A at time t1 and
    ld accesses A at a later time t2;
    MDF(st, ld) = #conflicting executions of ld / total executions of ld

Location identity is the accessed address (workloads in this repo issue
aligned, non-straddling accesses, so address equality and range overlap
coincide; the same convention is used by every profiler compared, which
keeps the comparison apples-to-apples).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Set, Tuple

from repro.core.events import AccessKind, Trace

#: (store instruction id, load instruction id)
Pair = Tuple[int, int]


@dataclass
class DependenceProfile:
    """Conflict counts and execution totals for all (st, ld) pairs."""

    #: (st, ld) -> number of ld executions that read a location some
    #: earlier execution of st wrote
    conflicts: Dict[Pair, int] = field(default_factory=dict)
    #: load instruction id -> total dynamic executions
    load_counts: Dict[int, int] = field(default_factory=dict)
    #: store instruction id -> total dynamic executions
    store_counts: Dict[int, int] = field(default_factory=dict)

    def frequency(self, store_id: int, load_id: int) -> float:
        """The MDF for one pair; 0.0 when they never conflict."""
        total = self.load_counts.get(load_id, 0)
        if not total:
            return 0.0
        return self.conflicts.get((store_id, load_id), 0) / total

    def dependent_pairs(self) -> Dict[Pair, float]:
        """All pairs with non-zero MDF, mapped to their frequency."""
        return {
            pair: self.conflicts[pair] / self.load_counts[pair[1]]
            for pair in self.conflicts
            if self.load_counts.get(pair[1])
        }


class LosslessDependenceProfiler:
    """Exact read-after-write dependence profiling over a raw trace.

    For every address, the set of store instructions that have ever
    written it is maintained; each load execution then conflicts with
    every member of that set.  This is O(writers) per load -- the
    "extremely slow" exactness the paper describes -- but writer sets
    are bounded by the static store count.
    """

    def profile(self, trace: Trace) -> DependenceProfile:
        writers: Dict[int, Set[int]] = {}
        profile = DependenceProfile()
        for event in trace.accesses():
            if event.kind is AccessKind.STORE:
                profile.store_counts[event.instruction_id] = (
                    profile.store_counts.get(event.instruction_id, 0) + 1
                )
                writers.setdefault(event.address, set()).add(event.instruction_id)
            else:
                profile.load_counts[event.instruction_id] = (
                    profile.load_counts.get(event.instruction_id, 0) + 1
                )
                for store_id in writers.get(event.address, ()):
                    pair = (store_id, event.instruction_id)
                    profile.conflicts[pair] = profile.conflicts.get(pair, 0) + 1
        return profile
