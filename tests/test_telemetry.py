"""Unit tests for the telemetry subsystem: registry, spans, exporters."""

import json
import re

import pytest

from repro.telemetry import (
    NULL_TELEMETRY,
    NullTelemetry,
    Registry,
    Telemetry,
    coalesce,
    render,
    render_json,
    render_prometheus,
    render_report,
    telemetry_to_dict,
)
from repro.telemetry.registry import Counter, Gauge, Histogram
from repro.telemetry.spans import Span


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        counter = Counter("c")
        assert counter.value == 0
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_rejects_decrease(self):
        with pytest.raises(ValueError):
            Counter("c").inc(-1)


class TestGauge:
    def test_set_add_and_peak(self):
        gauge = Gauge("g")
        gauge.set(10)
        gauge.add(-3)
        assert gauge.value == 7
        gauge.set_max(5)
        assert gauge.value == 7  # max keeps the larger value
        gauge.set_max(20)
        assert gauge.value == 20


class TestHistogram:
    def test_count_sum_min_max_mean(self):
        histogram = Histogram("h", bounds=(1, 10, 100))
        for value in (1, 5, 50, 500):
            histogram.observe(value)
        assert histogram.count == 4
        assert histogram.sum == 556
        assert histogram.minimum == 1
        assert histogram.maximum == 500
        assert histogram.mean == 139

    def test_cumulative_buckets(self):
        histogram = Histogram("h", bounds=(1, 10, 100))
        for value in (1, 5, 50, 500):
            histogram.observe(value)
        buckets = dict(histogram.cumulative_buckets())
        assert buckets[1] == 1
        assert buckets[10] == 2
        assert buckets[100] == 3
        assert buckets[float("inf")] == 4


class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        registry = Registry()
        first = registry.counter("probe.accesses")
        second = registry.counter("probe.accesses")
        assert first is second

    def test_kind_conflict_raises(self):
        registry = Registry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")

    def test_iteration_is_name_sorted(self):
        registry = Registry()
        registry.counter("zz")
        registry.gauge("aa")
        assert [m.name for m in registry] == ["aa", "zz"]

    def test_value_shortcut(self):
        registry = Registry()
        registry.counter("c").inc(3)
        assert registry.value("c") == 3
        assert registry.value("missing") is None


class TestSpans:
    def test_nesting_builds_a_tree(self):
        telemetry = Telemetry()
        with telemetry.span("outer"):
            with telemetry.span("inner"):
                pass
            with telemetry.span("inner2"):
                pass
        (outer,) = telemetry.spans()
        assert outer.name == "outer"
        assert list(outer.children) == ["inner", "inner2"]
        assert outer.children["inner"].path == "outer/inner"

    def test_same_name_spans_merge(self):
        telemetry = Telemetry()
        for __ in range(3):
            with telemetry.span("stage"):
                pass
        (stage,) = telemetry.spans()
        assert stage.calls == 3

    def test_seconds_accumulate_and_cover_children(self):
        clock_value = [0.0]

        def clock():
            clock_value[0] += 1.0
            return clock_value[0]

        telemetry = Telemetry(clock=clock)
        with telemetry.span("outer"):
            with telemetry.span("inner"):
                pass
        (outer,) = telemetry.spans()
        inner = outer.children["inner"]
        assert inner.seconds > 0
        assert outer.seconds >= inner.seconds

    def test_items_and_throughput(self):
        telemetry = Telemetry()
        with telemetry.span("stage") as span:
            span.add_items(500, "accesses")
        (stage,) = telemetry.spans()
        assert stage.items == 500
        assert stage.unit == "accesses"
        assert stage.throughput > 0

    def test_find_span_by_path(self):
        telemetry = Telemetry()
        with telemetry.span("a"):
            with telemetry.span("b"):
                pass
        assert telemetry.find_span("a/b") is not None
        assert telemetry.find_span("a/zz") is None

    def test_span_survives_exception(self):
        telemetry = Telemetry()
        with pytest.raises(RuntimeError):
            with telemetry.span("stage"):
                raise RuntimeError("boom")
        (stage,) = telemetry.spans()
        assert stage.calls == 1
        assert telemetry.current_span is telemetry.root

    def test_spans_sit_on_a_shared_timeline(self):
        telemetry = Telemetry()
        with telemetry.span("outer"):
            with telemetry.span("inner"):
                pass
        (outer,) = telemetry.spans()
        inner = outer.children["inner"]
        # wall-clock endpoints: first entry, last exit, properly nested
        assert 0.0 < outer.start_ts <= inner.start_ts
        assert inner.end_ts <= outer.end_ts

    def test_reentry_keeps_first_start_and_last_end(self):
        telemetry = Telemetry()
        with telemetry.span("stage"):
            pass
        (stage,) = telemetry.spans()
        first_start, first_end = stage.start_ts, stage.end_ts
        with telemetry.span("stage"):
            pass
        assert stage.start_ts == first_start
        assert stage.end_ts >= first_end

    def test_plain_form_round_trips_timeline_and_trace_fields(self):
        telemetry = Telemetry()
        telemetry.trace_id = "ab" * 16
        with telemetry.span("stage") as span:
            span.add_items(7, "accesses")
        plain = telemetry.spans()[0].to_plain()
        assert plain["trace_id"] == "ab" * 16
        assert len(plain["span_id"]) == 16
        assert plain["start_ts"] > 0.0
        assert plain["end_ts"] >= plain["start_ts"]
        absorbed = Span("").absorb_plain(plain)
        assert absorbed.trace_id == plain["trace_id"]
        assert absorbed.span_id == plain["span_id"]
        assert absorbed.start_ts == plain["start_ts"]
        assert absorbed.end_ts == plain["end_ts"]


class TestNullTelemetry:
    def test_is_disabled_and_records_nothing(self):
        null = NullTelemetry()
        assert not null.enabled
        with null.span("stage") as span:
            span.add_items(10)
            null.counter("c").inc()
            null.gauge("g").set(5)
            null.histogram("h").observe(1)
        assert null.spans() == []
        assert len(null.registry) == 0

    def test_coalesce(self):
        assert coalesce(None) is NULL_TELEMETRY
        telemetry = Telemetry()
        assert coalesce(telemetry) is telemetry


def _sample_telemetry():
    telemetry = Telemetry()
    with telemetry.span("pipeline"):
        with telemetry.span("compression") as span:
            span.add_items(100, "symbols")
    telemetry.counter("probe.accesses", "accesses fired").inc(100)
    telemetry.gauge("leap.capture_rate").set(0.85)
    histogram = telemetry.histogram("trace.alloc_size_bytes", bounds=(16, 256))
    histogram.observe(8)
    histogram.observe(1024)
    return telemetry


class TestReportExporter:
    def test_contains_spans_and_metrics(self):
        text = render_report(_sample_telemetry())
        assert "pipeline" in text
        assert "compression" in text
        assert "symbols/s" in text
        assert "probe.accesses" in text
        assert "leap.capture_rate" in text

    def test_empty_telemetry(self):
        assert "no spans" in render_report(Telemetry())


class TestJsonExporter:
    def test_round_trips_through_json(self):
        data = json.loads(render_json(_sample_telemetry()))
        assert data["counters"]["probe.accesses"] == 100
        assert data["gauges"]["leap.capture_rate"] == 0.85
        assert data["histograms"]["trace.alloc_size_bytes"]["count"] == 2
        (pipeline,) = data["spans"]
        assert pipeline["name"] == "pipeline"
        (compression,) = pipeline["children"]
        assert compression["items"] == 100

    def test_dict_form_has_all_sections(self):
        data = telemetry_to_dict(Telemetry())
        assert set(data) == {"spans", "counters", "gauges", "histograms"}


#: One Prometheus text-exposition sample line: name, optional labels,
#: then a number (or +Inf).
_PROM_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? (\+Inf|-?[0-9.e+-]+)$"
)


class TestPrometheusExporter:
    def test_every_line_is_parseable(self):
        text = render_prometheus(_sample_telemetry())
        lines = [l for l in text.splitlines() if l]
        assert lines
        for line in lines:
            if line.startswith("#"):
                assert line.startswith(("# HELP ", "# TYPE "))
            else:
                assert _PROM_LINE.match(line), line

    def test_names_are_sanitized_and_prefixed(self):
        text = render_prometheus(_sample_telemetry())
        assert "repro_probe_accesses 100" in text
        assert "probe.accesses" not in text

    def test_histogram_series(self):
        text = render_prometheus(_sample_telemetry())
        assert 'repro_trace_alloc_size_bytes_bucket{le="16"} 1' in text
        assert 'repro_trace_alloc_size_bytes_bucket{le="+Inf"} 2' in text
        assert "repro_trace_alloc_size_bytes_count 2" in text

    def test_span_series(self):
        text = render_prometheus(_sample_telemetry())
        assert 'repro_span_seconds_total{span="pipeline/compression"}' in text
        assert 'repro_span_items_total{span="pipeline/compression"} 100' in text


class TestRenderDispatch:
    def test_modes(self):
        telemetry = _sample_telemetry()
        assert render(telemetry, "report").startswith("== telemetry")
        json.loads(render(telemetry, "json"))
        assert render(telemetry, "prom").startswith("#")
        with pytest.raises(ValueError):
            render(telemetry, "xml")
