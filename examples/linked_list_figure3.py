"""The paper's running example (Figures 1 and 3), executed for real.

A linked-list traversal is written in the mini-IR language, interpreted
on the simulated process, and its access stream is shown in raw-address
form next to the object-relative form -- reproducing the table of
Figure 3, with the allocator artifacts of Figure 1 visible in the raw
column. Run with::

    python examples/linked_list_figure3.py
"""

from repro import translate_trace_list
from repro.lang.interp import run_source

#: The linked-list program: build scattered nodes (interleaved clutter
#: allocations scramble the heap as in Figure 1), then traverse.
SOURCE = """
struct node { int data; int pad; node* next; }

fn main(): int {
  // Build the list with clutter allocations in between, so consecutive
  // nodes land at non-consecutive heap addresses.
  var head: node* = null;
  for (var i: int = 0; i < 8; i = i + 1) {
    var fresh: node* = new node;
    var clutter: int* = new int[3 + i % 5];
    fresh->data = i * 10;
    fresh->next = head;
    head = fresh;
  }

  // The traversal of Figure 3: one load of data, one load of next.
  var total: int = 0;
  var p: node* = head;
  while (p != null) {
    total = total + p->data;
    p = p->next;
  }
  return total;
}
"""


def main() -> None:
    result, interpreter = run_source(SOURCE)
    print(f"program returned {result}")

    trace = interpreter.process.trace
    names = {
        i.instruction_id: n for n, i in interpreter.process.instructions.items()
    }
    translated = translate_trace_list(trace)
    accesses = list(trace.accesses())

    # Show the traversal portion only (the last 16 accesses: 2 per node).
    print("\n  the traversal stream, raw vs object-relative:")
    print(f"  {'instruction':<22} {'raw address':>12}   (group, object, offset)")
    for event, tuple_ in list(zip(accesses, translated))[-16:]:
        name = names[event.instruction_id].split(":")[-2:]
        label = ":".join(name)
        print(
            f"  {label:<22} {event.address:>#12x}   "
            f"({tuple_.group}, {tuple_.object_serial}, {tuple_.offset})"
        )

    print(
        "\nThe raw addresses jump around (allocator artifacts: the clutter"
        "\nallocations scattered the nodes), while the object-relative view"
        "\nshows the truth: one group, descending serials, and each"
        "\ninstruction always at its own fixed offset (data=0, next=16)."
    )


if __name__ == "__main__":
    main()
