"""Report formatting for experiment output.

Plain-text tables and ASCII histograms that mirror the layout of the
paper's figures and Table 1, so a terminal run of the experiment harness
reads side by side with the paper.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.analysis.metrics import BUCKET_CENTERS, ErrorDistribution


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render a fixed-width table."""
    cells = [[str(value) for value in row] for row in rows]
    widths = [
        max(len(headers[col]), *(len(row[col]) for row in cells)) if cells else len(headers[col])
        for col in range(len(headers))
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(value.ljust(w) for value, w in zip(row, widths)))
    return "\n".join(lines)


def format_histogram(
    distribution: ErrorDistribution,
    title: Optional[str] = None,
    width: int = 50,
) -> str:
    """ASCII rendering of an error distribution (Figures 6-8 style).

    One row per 10% bucket from -100% to +100%, bar length proportional
    to the bucket's fraction of pairs.
    """
    lines: List[str] = []
    if title:
        lines.append(title)
    fractions = distribution.fractions()
    peak = max(fractions) or 1.0
    for center, fraction in zip(BUCKET_CENTERS, fractions):
        bar = "#" * int(round(fraction / peak * width))
        lines.append(f"{center:+5.0%} | {bar} {fraction:6.1%}")
    lines.append(f"pairs: {distribution.total_pairs}")
    return "\n".join(lines)


def percent(value: float, digits: int = 1) -> str:
    return f"{value * 100:.{digits}f}%"


def ratio(value: float) -> str:
    if value >= 100:
        return f"{value:.0f}x"
    return f"{value:.1f}x"


def format_key_values(pairs: Dict[str, object], title: Optional[str] = None) -> str:
    lines: List[str] = []
    if title:
        lines.append(title)
    width = max(len(key) for key in pairs) if pairs else 0
    for key, value in pairs.items():
        lines.append(f"  {key.ljust(width)} : {value}")
    return "\n".join(lines)
