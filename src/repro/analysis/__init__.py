"""Metrics, the omega-test solver, phase detection, and report formatting."""

from repro.analysis.metrics import (
    BUCKET_CENTERS,
    ErrorDistribution,
    compression_improvement,
    error_distribution,
    geometric_mean,
)
from repro.analysis.omega import SolutionSet, extended_gcd, intersect_lmads, solve_equality
from repro.analysis.phases import PhaseDetector, PhasedLeapProfiler

__all__ = [
    "BUCKET_CENTERS", "ErrorDistribution", "PhaseDetector",
    "PhasedLeapProfiler", "SolutionSet", "compression_improvement",
    "error_distribution", "extended_gcd", "geometric_mean",
    "intersect_lmads", "solve_equality",
]
