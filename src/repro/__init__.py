"""Object-relative memory profiling (CGO 2004 reproduction).

A library reproduction of "Exposing Memory Access Regularities Using
Object-Relative Memory Profiling" (Wu, Pyatakov, Spiridonov, Raman,
Clark, August -- CGO 2004): the object-relative translation and
decomposition techniques, the WHOMP (lossless, Sequitur) and LEAP
(lossy, LMAD) profilers built on them, the baselines they are compared
against, a simulated process runtime to profile, and the experiment
harness that regenerates every figure and table of the paper.

Quickstart::

    from repro import LeapProfiler, WhompProfiler
    from repro.workloads.registry import create

    trace = create("gzip").trace()
    leap = LeapProfiler().profile(trace)
    print(leap.accesses_captured())
"""

from repro.core.cdc import OnlineCDC, translate_trace, translate_trace_list
from repro.core.decomposition import horizontal, recombine, vertical
from repro.core.events import AccessKind, Trace
from repro.core.omc import ObjectManager
from repro.core.tuples import DIMENSIONS, ObjectRelativeAccess
from repro.profilers.leap import LeapProfile, LeapProfiler
from repro.profilers.whomp import WhompProfile, WhompProfiler
from repro.runtime.process import Process

__version__ = "1.0.0"

__all__ = [
    "AccessKind",
    "DIMENSIONS",
    "LeapProfile",
    "LeapProfiler",
    "ObjectManager",
    "ObjectRelativeAccess",
    "OnlineCDC",
    "Process",
    "Trace",
    "WhompProfile",
    "WhompProfiler",
    "horizontal",
    "recombine",
    "translate_trace",
    "translate_trace_list",
    "vertical",
]
