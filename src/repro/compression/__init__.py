"""Stream compressors: lossless Sequitur (WHOMP) and lossy bounded-budget
LMAD linear compression (LEAP)."""

from repro.compression.lmad import (
    DEFAULT_BUDGET,
    LMAD,
    LMADCompressor,
    LMADProfileEntry,
    OverflowSummary,
)
from repro.compression.rle import DeltaRleCodec, Run
from repro.compression.rle import compress as rle_compress
from repro.compression.sequitur import Ref, Rule, SequiturGrammar
from repro.compression.sequitur import compress as sequitur_compress

__all__ = [
    "DEFAULT_BUDGET", "DeltaRleCodec", "LMAD", "LMADCompressor",
    "LMADProfileEntry", "OverflowSummary", "Ref", "Rule", "Run",
    "SequiturGrammar", "rle_compress", "sequitur_compress",
]
