"""The simulated instrumented process.

:class:`Process` is the stand-in for the paper's profiled SPEC binaries.
A workload drives it through the same surface a C program presents to an
instrumenting profiler:

* static objects declared up front and laid out by the :class:`Linker`;
* ``malloc``/``free`` backed by a real allocator policy;
* ``load``/``store`` calls naming a static instruction, which fire the
  adjacent instruction probe.

Everything observable by a profiler flows through the
:class:`~repro.runtime.probes.ProbeBus`, so the process itself knows
nothing about object-relativity -- exactly the separation the paper's
framework (Figure 4) draws between the target program and the profiler.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.events import AccessKind, Trace
from repro.runtime.allocator import Allocator, make_allocator
from repro.runtime.linker import Linker, StaticObject, Symbol, SymbolTable
from repro.runtime.memory import AddressSpace, MemoryError_
from repro.runtime.probes import ProbeBus, TraceRecorder

#: Allocation-site prefix used for static objects; the OMC treats each
#: static symbol as its own group, as WHOMP derives groups of statics
#: from the exported symbol table.
STATIC_SITE_PREFIX = "static:"


@dataclass(frozen=True)
class Instruction:
    """A static load or store instruction of the simulated program.

    The ``name`` is the human-readable program point (``"walk.next"``);
    the ``instruction_id`` is the dense integer the probes report, like a
    PC.  Profilers only ever see the id.
    """

    instruction_id: int
    name: str
    kind: AccessKind


class Process:
    """One simulated process run.

    Parameters mirror the artifact knobs described in DESIGN.md:

    ``allocator``
        Heap policy name (``bump``, ``first-fit``, ``best-fit``,
        ``segregated``).  Different policies scramble raw heap addresses
        differently while leaving program behaviour identical.
    ``probe_padding``
        Extra code-segment bytes from probe insertion; shifts all static
        data.
    ``os_offset``
        Page-aligned base offset, standing in for OS address-space
        randomization.
    ``record_trace``
        When true (default) a :class:`TraceRecorder` is attached so the
        run yields a :class:`Trace`.  When false the process runs
        uninstrumented -- the "native" baseline for dilation timing.
    ``telemetry``
        Optional :class:`~repro.telemetry.spans.Telemetry`; when enabled
        the probe bus counts firings and the recorded trace tracks its
        own footprint growth.
    """

    def __init__(
        self,
        allocator: str = "first-fit",
        probe_padding: int = 0,
        os_offset: int = 0,
        record_trace: bool = True,
        heap_size: int = 1 << 30,
        telemetry=None,
    ) -> None:
        self.space = AddressSpace(heap_size=heap_size, os_offset=os_offset)
        self.linker = Linker(self.space, probe_padding=probe_padding)
        self.heap: Allocator = make_allocator(allocator, self.space.heap)
        self.bus = ProbeBus(telemetry=telemetry)
        self._recorder: Optional[TraceRecorder] = None
        if record_trace:
            self._recorder = TraceRecorder(Trace(telemetry=telemetry))
            self.bus.attach(self._recorder)
        self._instructions: Dict[str, Instruction] = {}
        self._static_types: Dict[str, Optional[str]] = {}
        self._untracked: set = set()
        self._linked = False
        self._finished = False

    # -- static data ----------------------------------------------------

    def declare_static(
        self, name: str, size: int, align: int = 8, type_name: Optional[str] = None
    ) -> None:
        """Declare a global object; call before :meth:`link`."""
        self.linker.declare(StaticObject(name, size, align))
        self._static_types[name] = type_name

    def link(self) -> SymbolTable:
        """Lay out static data and fire creation probes for every static
        object ("at the beginning ... of the program for all statically
        allocated objects", Section 3.1)."""
        if self._linked:
            return self.linker.symbol_table
        table = self.linker.link()
        self._linked = True
        for symbol in table:
            self.bus.fire_alloc(
                symbol.address,
                symbol.size,
                STATIC_SITE_PREFIX + symbol.name,
                self._static_types.get(symbol.name),
            )
        return table

    def static(self, name: str) -> Symbol:
        """Resolve a declared static object (links lazily)."""
        if not self._linked:
            self.link()
        return self.linker.symbol_table[name]

    # -- instructions -----------------------------------------------------

    def instruction(self, name: str, kind: AccessKind) -> Instruction:
        """Intern a static instruction by name.

        Repeated calls with the same name return the same instruction;
        re-interning with a different kind is a workload bug.
        """
        existing = self._instructions.get(name)
        if existing is not None:
            if existing.kind is not kind:
                raise ValueError(
                    f"instruction {name!r} re-declared as {kind} "
                    f"(was {existing.kind})"
                )
            return existing
        instruction = Instruction(len(self._instructions), name, kind)
        self._instructions[name] = instruction
        return instruction

    @property
    def instructions(self) -> Dict[str, Instruction]:
        return dict(self._instructions)

    # -- heap ------------------------------------------------------------

    def malloc(
        self,
        site: str,
        size: int,
        type_name: Optional[str] = None,
        track: bool = True,
    ) -> int:
        """Allocate heap memory from the named static allocation site.

        ``track=False`` suppresses the object probe: the block exists
        but the profiler never learns of it.  This is half of the
        paper's footnote-2 parameterization for custom allocation
        pools -- the pool buffer itself goes untracked, and the
        program's carve/release points fire :meth:`mark_object` /
        :meth:`unmark_object` instead ("manually target the custom
        alloc/dealloc functions rather than the standard malloc/free").
        """
        if not self._linked:
            self.link()
        address = self.heap.malloc(size)
        if track:
            self.bus.fire_alloc(address, size, site, type_name)
        else:
            self._untracked.add(address)
        return address

    def free(self, address: int) -> None:
        self.heap.free(address)
        if address in self._untracked:
            self._untracked.discard(address)
        else:
            self.bus.fire_free(address)

    # -- custom allocation pools (footnote 2) --------------------------------

    def mark_object(
        self, address: int, size: int, site: str, type_name: Optional[str] = None
    ) -> None:
        """Fire an object-creation probe for a custom-pool carve.

        The range must lie inside memory the process owns (typically an
        untracked pool block); the OMC will treat it as a first-class
        object with its own group/serial identity.
        """
        self.space.check_access(address, size)
        self.bus.fire_alloc(address, size, site, type_name)

    def unmark_object(self, address: int) -> None:
        """Fire an object-destruction probe for a custom-pool release."""
        self.bus.fire_free(address)

    # -- accesses ----------------------------------------------------------

    def load(self, instruction: Instruction, address: int, size: int = 8) -> None:
        """Execute a load; fires the adjacent instruction probe."""
        if instruction.kind is not AccessKind.LOAD:
            raise MemoryError_(f"{instruction.name} is not a load")
        self.space.check_access(address, size)
        self.bus.fire_access(instruction.instruction_id, address, size, AccessKind.LOAD)

    def store(self, instruction: Instruction, address: int, size: int = 8) -> None:
        """Execute a store; fires the adjacent instruction probe."""
        if instruction.kind is not AccessKind.STORE:
            raise MemoryError_(f"{instruction.name} is not a store")
        self.space.check_access(address, size)
        self.bus.fire_access(
            instruction.instruction_id, address, size, AccessKind.STORE
        )

    # -- lifecycle ----------------------------------------------------------

    def finish(self) -> None:
        """End the run: fire destruction probes for statics (the paper
        places static object probes at program begin *and end*)."""
        if self._finished:
            return
        self._finished = True
        if self._linked:
            for symbol in self.linker.symbol_table:
                self.bus.fire_free(symbol.address)

    @property
    def trace(self) -> Trace:
        """The recorded trace (only when ``record_trace=True``)."""
        if self._recorder is None:
            raise MemoryError_("process was run without trace recording")
        return self._recorder.trace

    def instruction_name(self, instruction_id: int) -> str:
        """Reverse-map an instruction id to its program-point name."""
        for instruction in self._instructions.values():
            if instruction.instruction_id == instruction_id:
                return instruction.name
        raise KeyError(instruction_id)
