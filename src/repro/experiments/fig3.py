"""Figure 3: the linked-list representation table, regenerated.

The paper's Figure 3 shows one table with several representations of
the same traversal: the raw address stream, the object-relative tuple
stream, the horizontally decomposed dimension streams, and the vertical
decomposition by instruction.  This experiment executes the linked-list
program of Figures 1/3 in the mini-IR (through a real allocator, with
clutter allocations scattering the nodes) and renders the same table
from the recorded trace.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.cdc import translate_trace_list
from repro.core.decomposition import horizontal, vertical
from repro.core.tuples import DIMENSIONS
from repro.lang.interp import run_source

#: the traversal program; 6 nodes keeps the table figure-sized
SOURCE = """
struct node { int data; int pad; node* next; }

fn main(): int {
  var head: node* = null;
  for (var i: int = 0; i < 6; i = i + 1) {
    var fresh: node* = new node;
    var clutter: int* = new int[2 + i % 3];
    fresh->data = i;
    fresh->next = head;
    head = fresh;
  }
  var total: int = 0;
  var p: node* = head;
  while (p != null) {
    total = total + p->data;
    p = p->next;
  }
  return total;
}
"""


def run(context=None) -> Dict[str, object]:
    result, interpreter = run_source(SOURCE)
    trace = interpreter.process.trace
    names = {
        i.instruction_id: n for n, i in interpreter.process.instructions.items()
    }
    translated = translate_trace_list(trace)
    events = list(trace.accesses())
    # the traversal is the final 12 accesses (2 per node, 6 nodes)
    tail = 12
    rows: List[Dict[str, object]] = []
    for event, access in list(zip(events, translated))[-tail:]:
        rows.append(
            {
                "instruction": names[event.instruction_id],
                "raw_address": event.address,
                "tuple": (
                    access.instruction_id,
                    access.group,
                    access.object_serial,
                    access.offset,
                ),
                "time": access.time,
            }
        )
    traversal = translated[-tail:]
    return {
        "figure": "3",
        "program_result": result,
        "rows": rows,
        "horizontal": horizontal(traversal),
        "vertical": {
            instruction: [(a.object_serial, a.offset, a.time) for a in sub]
            for instruction, sub in vertical(traversal, "instruction").items()
        },
        "instruction_names": names,
    }


def render(results: Dict[str, object]) -> str:
    lines = [
        "Figure 3: representations of the linked-list traversal",
        "",
        f"{'instruction':<24} {'raw address':>12}  (instr, group, object, offset)",
    ]
    for row in results["rows"]:
        lines.append(
            f"{row['instruction'].split(':')[-2] + ':' + row['instruction'].split(':')[-1]:<24} "
            f"{row['raw_address']:>#12x}  {row['tuple']}"
        )
    lines.append("")
    lines.append("horizontal decomposition (one stream per dimension):")
    for name in DIMENSIONS:
        values = " ".join(str(v) for v in results["horizontal"][name])
        lines.append(f"  {name:<12} {values}")
    lines.append("")
    lines.append("vertical decomposition by instruction -> (object, offset, time):")
    names = results["instruction_names"]
    for instruction, triples in sorted(results["vertical"].items()):
        label = names.get(instruction, instruction)
        shown = " ".join(str(t) for t in triples[:6])
        lines.append(f"  {label}: {shown} ...")
    return "\n".join(lines)


def main() -> None:
    print(render(run()))


if __name__ == "__main__":
    main()
