"""``repro-serve``: the profile store's command-line front-end.

Subcommands::

    repro-serve ingest --root DIR [--workloads W1,W2|all] [--jobs N]
        Profile workloads (in up to N worker processes) and ingest the
        documents; or ingest existing files with --profiles.
        ``--format binary`` serializes BINCAP binary documents;
        ``--stream --url URL`` profiles serially and streams each
        document to the daemon's ``/ingest/stream`` over one chunked
        request as soon as it is captured.

    repro-serve query --root DIR [--workload W] [--kind K] [...]
        List matching runs, or per-(instruction, group) entries with
        --entries.

    repro-serve diff --root DIR A B [--json]
        Structurally diff two runs; exit 1 when regressions are
        detected.

    repro-serve gc --root DIR
        Drop blobs no manifest entry references.

    repro-serve serve --root DIR [--port N] [...]
        Run the HTTP daemon in the foreground.

Run selectors (``A``/``B`` above) are run ids, digest prefixes, or
``workload@kind[~N]`` (``gzip@leap~1`` = the run before the latest).
``--workloads all`` means the paper's seven SPEC stand-ins plus
``micro.array`` -- the suite's eight bundled workloads.

``ingest --inject-faults SPEC`` is the store's fault drill: each
serialized document is bit-flipped per the plan's ``flip-profile``
clause *before* ingest, demonstrating that corrupted payloads are
rejected at the door (exit 1) instead of poisoning the store.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.core.profile_io import SERIALIZATIONS, ProfileFormatError
from repro.store.diff import detect_regressions, diff_blobs, render_diff
from repro.store.query import QueryEngine
from repro.store.store import ProfileStore
from repro.telemetry import MODES, NULL_TELEMETRY, Telemetry, emit
from repro.workloads.registry import SPEC_BENCHMARKS

#: the bundled "eight workloads": the SPEC suite plus the micro kernel
DEFAULT_WORKLOADS = SPEC_BENCHMARKS + ("micro.array",)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Content-addressed profile store: ingest, query, "
        "diff, and serve object-relative profiles.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_root(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--root", required=True, metavar="DIR",
            help="store root directory (created if absent)",
        )

    ingest = sub.add_parser("ingest", help="profile workloads into the store")
    ingest.add_argument(
        "--root", metavar="DIR",
        help="store root directory (created if absent); optional when "
        "--url posts to a daemon instead",
    )
    ingest.add_argument(
        "--url", metavar="URL",
        help="POST documents to a running daemon (http://host:port) "
        "instead of / in addition to the local store",
    )
    ingest.add_argument(
        "--trace-out", metavar="PATH",
        help="mirror this run's structured events (JSONL) to PATH",
    )
    ingest.add_argument(
        "--workloads", default="all", metavar="W1,W2",
        help="comma-separated workload names, or 'all' for the bundled "
        "eight (default)",
    )
    ingest.add_argument(
        "--profiles", nargs="*", metavar="PATH",
        help="ingest existing profile files instead of running workloads",
    )
    ingest.add_argument("--scale", type=float, default=1.0)
    ingest.add_argument("--seed", type=int, default=0)
    ingest.add_argument(
        "--profiler", choices=("whomp", "leap", "both"), default="both"
    )
    ingest.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="profile up to N workloads in worker processes "
        "(0 = all CPUs; 1 = serial)",
    )
    ingest.add_argument(
        "--inject-faults", metavar="SPEC",
        help="fault drill: bit-flip each document per the plan's "
        "flip-profile clause before ingest",
    )
    ingest.add_argument(
        "--format", choices=SERIALIZATIONS, default="json", dest="fmt",
        help="profile document serialization (default: json)",
    )
    ingest.add_argument(
        "--stream", action="store_true",
        help="stream documents to --url over one chunked "
        "/ingest/stream request as each workload finishes (serial)",
    )

    query = sub.add_parser("query", help="list runs or entries")
    add_root(query)
    query.add_argument("--workload", help="filter by workload name")
    query.add_argument("--kind", help="filter by profile kind (whomp/leap)")
    query.add_argument(
        "--entries", action="store_true",
        help="list per-(instruction, group) LEAP entries instead of runs",
    )
    query.add_argument("--instruction", type=int, help="entry filter")
    query.add_argument("--group", type=int, help="entry filter")
    query.add_argument(
        "--stride", metavar="S1,S2,...",
        help="keep entries with an LMAD of exactly this stride vector",
    )
    query.add_argument(
        "--min-count", type=int, default=0,
        help="drop entries below this dynamic access total",
    )
    query.add_argument("--json", action="store_true", dest="as_json")

    diff = sub.add_parser("diff", help="structurally diff two runs")
    add_root(diff)
    diff.add_argument("a", help="baseline run selector")
    diff.add_argument("b", help="candidate run selector")
    diff.add_argument("--json", action="store_true", dest="as_json")

    gc = sub.add_parser("gc", help="drop unreferenced blobs")
    add_root(gc)

    serve = sub.add_parser("serve", help="run the HTTP daemon")
    add_root(serve)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8340)
    serve.add_argument(
        "--cache-size", type=int, default=32, metavar="N",
        help="decoded-profile LRU capacity",
    )
    serve.add_argument(
        "--max-concurrent", type=int, default=8, metavar="N",
        help="bound on concurrently served requests",
    )
    serve.add_argument(
        "--telemetry", choices=MODES,
        help="print spans/metrics in the chosen format on shutdown",
    )
    serve.add_argument("--telemetry-out", metavar="PATH")
    serve.add_argument(
        "--trace-out", metavar="PATH",
        help="mirror the access log (structured JSONL events) to PATH",
    )
    serve.add_argument(
        "--drain-deadline", type=float, default=5.0, metavar="SECS",
        help="on shutdown, wait up to SECS for in-flight requests "
        "before closing the socket",
    )
    return parser


def _post_document(url: str, data: bytes, workload: str):
    """POST one document to a daemon, under the ambient trace context.

    ``data`` is the serialized document -- JSON or BINCAP binary bytes
    travel the same way.  Returns the decoded JSON response; raises
    ``ValueError`` with the daemon's error text on a non-2xx answer.
    """
    import urllib.error
    import urllib.request

    from repro.obs.context import TRACE_HEADER, current_header

    request = urllib.request.Request(
        f"{url.rstrip('/')}/ingest?workload={workload}",
        data=data,
        method="POST",
    )
    header = current_header()
    if header is not None:
        request.add_header(TRACE_HEADER, header)
    try:
        with urllib.request.urlopen(request, timeout=60.0) as response:
            return json.loads(response.read().decode("utf-8"))
    except urllib.error.HTTPError as exc:
        detail = exc.read().decode("utf-8", errors="replace").strip()
        raise ValueError(f"daemon answered {exc.code}: {detail}") from None
    except urllib.error.URLError as exc:
        raise ValueError(f"daemon unreachable: {exc.reason}") from None


def _run_ingest(args: argparse.Namespace) -> int:
    from repro.obs import start_tracing

    if not args.root and not args.url:
        print("ingest requires --root and/or --url", file=sys.stderr)
        return 2
    store = ProfileStore(args.root) if args.root else None
    injector = None
    if args.inject_faults:
        from repro.resilience import FaultInjector, parse_fault_spec

        injector = FaultInjector(parse_fault_spec(args.inject_faults))

    # Every ingest run is traced: the context rides into the pool
    # workers and (as X-Repro-Trace) to the daemon, and the run closes
    # with a trace document tying all of it together.
    telemetry = Telemetry()
    context, events = start_tracing(telemetry, trace_out=args.trace_out)
    if injector is not None:
        injector.events = events

    def ingest_document(data: bytes, workload: str, meta) -> bool:
        if injector is not None:
            data = injector.corrupt_bytes(data)
        ok = True
        if store is not None:
            try:
                record = store.ingest_bytes(data, workload, meta=meta)
            except ProfileFormatError as exc:
                print(f"REJECTED {workload}: {exc}", file=sys.stderr)
                ok = False
            else:
                print(
                    f"ingested {record.run_id} {workload} ({record.kind}, "
                    f"{record.size_bytes} bytes, {record.digest[:12]})"
                )
        if args.url:
            with telemetry.span("post"):
                try:
                    answer = _post_document(args.url, data, workload)
                except ValueError as exc:
                    print(f"REJECTED {workload}: {exc}", file=sys.stderr)
                    ok = False
                else:
                    print(
                        f"posted {answer.get('run_id')} {workload} "
                        f"({answer.get('kind')}, "
                        f"{answer.get('size_bytes')} bytes)"
                    )
        events.emit(
            "ingest",
            trace=context.trace_id,
            span=context.span_id,
            workload=workload,
            ok=ok,
            bytes=len(data),
        )
        return ok

    rejected = 0
    if args.profiles:
        for path in args.profiles:
            try:
                with open(path, "rb") as handle:
                    data = handle.read()
            except OSError as exc:
                print(f"REJECTED {path}: {exc}", file=sys.stderr)
                rejected += 1
                continue
            import os

            workload = os.path.basename(path).split(".")[0]
            if not ingest_document(data, workload, {"source": path}):
                rejected += 1
        _close_ingest_trace(args, telemetry, context, events, store)
        return 1 if rejected else 0

    names = (
        list(DEFAULT_WORKLOADS)
        if args.workloads == "all"
        else [n for n in args.workloads.split(",") if n]
    )
    if args.stream:
        if not args.url:
            print("--stream requires --url", file=sys.stderr)
            return 2
        code = _stream_ingest(args, names, telemetry, context, events, injector)
        _close_ingest_trace(args, telemetry, context, events, store)
        return code
    from repro.parallel import ParallelExecutor
    from repro.parallel.workers import profile_workload_documents

    executor = ParallelExecutor(jobs=args.jobs, telemetry=telemetry)
    tasks = [
        (name, args.scale, args.seed, args.profiler, args.fmt)
        for name in names
    ]
    outcomes = executor.map_outcomes(
        profile_workload_documents, tasks, label="store-ingest"
    )
    for name, outcome in zip(names, outcomes):
        if outcome.error is not None:
            print(f"REJECTED {name}: {outcome.error}", file=sys.stderr)
            rejected += 1
            continue
        __, documents, meta = outcome.value
        span_data = meta.pop("span", None)
        if span_data is not None:
            telemetry.root.absorb_plain(span_data)
        for __, data in documents:
            if not ingest_document(data, name, meta):
                rejected += 1
    if store is not None:
        print(
            f"store now holds {store.stats()['runs']} run(s), "
            f"{store.stats()['blobs']} blob(s)"
        )
    _close_ingest_trace(args, telemetry, context, events, store)
    return 1 if rejected else 0


def _stream_ingest(args, names, telemetry, context, events, injector) -> int:
    """Profile serially, streaming each document as soon as it exists.

    One chunked ``POST /ingest/stream`` carries the whole session: the
    daemon validates and stores every document the moment its CRC
    verifies, so runs appear while later workloads are still being
    profiled -- the capture never sits complete on this side first.
    """
    import http.client
    from urllib.parse import quote, urlsplit

    from repro.core.binformat import StreamWriter
    from repro.obs.context import TRACE_HEADER, current_header
    from repro.parallel.workers import profile_workload_documents

    split = urlsplit(args.url)
    conn_cls = (
        http.client.HTTPSConnection
        if split.scheme == "https"
        else http.client.HTTPConnection
    )
    connection = conn_cls(split.netloc, timeout=120.0)
    sent = 0

    def body():
        nonlocal sent
        pending = []
        writer = StreamWriter(pending.append)
        writer.begin()
        for name in names:
            with telemetry.span(f"profile/{name}"):
                __, documents, meta = profile_workload_documents(
                    (name, args.scale, args.seed, args.profiler, args.fmt)
                )
            span_data = meta.pop("span", None)
            if span_data is not None:
                telemetry.root.absorb_plain(span_data)
            for __, data in documents:
                if injector is not None:
                    data = injector.corrupt_bytes(data)
                writer.send_document(name, data, meta=meta)
                sent += 1
                events.emit(
                    "ingest",
                    trace=context.trace_id,
                    span=context.span_id,
                    workload=name,
                    ok=True,
                    bytes=len(data),
                    streamed=True,
                )
            yield b"".join(pending)
            pending.clear()
        writer.close()
        yield b"".join(pending)

    headers = {"Transfer-Encoding": "chunked"}
    trace_header = current_header()
    if trace_header is not None:
        headers[TRACE_HEADER] = trace_header
    path = "/ingest/stream"
    if len(names) == 1:
        path += f"?workload={quote(names[0])}"
    try:
        connection.request(
            "POST", path, body=body(), headers=headers, encode_chunked=True
        )
        response = connection.getresponse()
        answer = json.loads(response.read().decode("utf-8"))
        status = response.status
    except (OSError, ValueError) as exc:
        print(f"stream failed: {exc}", file=sys.stderr)
        return 1
    finally:
        connection.close()
    for row in answer.get("ingested", ()):
        print(
            f"streamed {row.get('run_id')} ({row.get('kind')}, "
            f"{row.get('size_bytes')} bytes)"
        )
    for row in answer.get("rejected", ()):
        print(
            f"REJECTED {row.get('workload')}: {row.get('error')}",
            file=sys.stderr,
        )
    completeness = answer.get("capture_completeness")
    print(
        f"stream: sent {sent}, ingested {len(answer.get('ingested', ()))}, "
        f"rejected {len(answer.get('rejected', ()))}, "
        f"completeness {completeness}"
    )
    degraded = (
        status >= 400
        or answer.get("rejected")
        or not answer.get("complete", False)
    )
    return 1 if degraded else 0


def _close_ingest_trace(args, telemetry, context, events, store) -> None:
    """Finish the ingest run's trace and persist the document.

    Persistence follows the ``--trace-out`` opt-in: only runs the user
    asked to trace land a document in the local store (when one is
    open) and/or the daemon, under the reserved workload name
    ``trace`` -- a plain ingest must not grow the store beyond the
    profiles it was asked to ingest.  The trace id is printed either
    way so scripts can chase it through ``repro-obs`` and ``/tracez``.
    """
    from repro.core.profile_io import dumps
    from repro.obs import finish_tracing

    document = finish_tracing(
        telemetry, context, events, meta={"command": "ingest"}
    )
    if args.trace_out:
        text = dumps(document)
        if store is not None:
            store.ingest_text(text, "trace", meta={"source": "repro-serve"})
        if args.url:
            try:
                _post_document(args.url, text.encode("utf-8"), "trace")
            except ValueError as exc:
                print(f"trace document not posted: {exc}", file=sys.stderr)
    print(f"trace {context.trace_id}")


def _run_query(args: argparse.Namespace) -> int:
    engine = QueryEngine(ProfileStore(args.root))
    if args.entries:
        stride = None
        if args.stride:
            try:
                stride = tuple(int(p) for p in args.stride.split(","))
            except ValueError:
                print(f"bad --stride {args.stride!r}", file=sys.stderr)
                return 2
        rows = engine.find_entries(
            workload=args.workload,
            instruction=args.instruction,
            group=args.group,
            stride=stride,
            min_count=args.min_count,
        )
        if args.as_json:
            print(json.dumps({"entries": rows}, indent=2, sort_keys=True))
        else:
            for row in rows:
                print(
                    f"{row['run_id']} {row['workload']:<14} "
                    f"instr {row['instruction']:>4} ({row['kind']:<5}) "
                    f"group {row['group']:>3} [{row['group_label']}]: "
                    f"{row['lmads']} LMADs, "
                    f"{row['captured']}/{row['total']} captured"
                )
            print(f"{len(rows)} entr{'y' if len(rows) == 1 else 'ies'}")
        return 0
    rows = engine.find_runs(workload=args.workload, kind=args.kind)
    if args.as_json:
        print(json.dumps({"runs": rows}, indent=2, sort_keys=True))
    else:
        for row in rows:
            print(
                f"{row['run_id']} {row['workload']:<14} {row['kind']:<6} "
                f"{row['size_bytes']:>10} bytes  {row['digest'][:12]}"
            )
        print(f"{len(rows)} run(s)")
    return 0


def _run_diff(args: argparse.Namespace) -> int:
    store = ProfileStore(args.root)
    try:
        record_a = store.resolve(args.a)
        record_b = store.resolve(args.b)
        diff = diff_blobs(
            store.get_bytes(record_a.run_id),
            store.get_bytes(record_b.run_id),
            label_a=f"{record_a.run_id} ({record_a.workload})",
            label_b=f"{record_b.run_id} ({record_b.workload})",
        )
    except (KeyError, ProfileFormatError) as exc:
        print(str(exc).strip("'\""), file=sys.stderr)
        return 2
    regressions = detect_regressions(diff)
    if args.as_json:
        payload = diff.to_json()
        payload["regressions"] = [r.to_json() for r in regressions]
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(render_diff(diff, regressions))
    return 1 if regressions else 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.command == "ingest":
        return _run_ingest(args)
    if args.command == "query":
        return _run_query(args)
    if args.command == "diff":
        return _run_diff(args)
    if args.command == "gc":
        store = ProfileStore(args.root)
        stats = store.gc()
        print(
            f"gc: scanned {stats.scanned} blob(s), removed {stats.removed}, "
            f"freed {stats.freed_bytes} bytes"
        )
        return 0
    if args.command == "serve":
        import signal

        from repro.store.server import StoreServer

        telemetry = Telemetry() if args.telemetry else NULL_TELEMETRY
        store = ProfileStore(args.root, cache_size=args.cache_size)
        server = StoreServer(
            store,
            host=args.host,
            port=args.port,
            telemetry=telemetry,
            max_concurrent=args.max_concurrent,
            trace_out=args.trace_out,
        )
        host, port = server.address
        print(f"serving profile store {args.root} on {server.url}", flush=True)
        # The bound address on its own line: with --port 0 the kernel
        # picks the port, and supervisors parse this line to learn it.
        print(f"listening {host}:{port}", flush=True)

        class _Terminated(Exception):
            pass

        def _on_sigterm(signum, frame):
            raise _Terminated()

        previous = signal.signal(signal.SIGTERM, _on_sigterm)
        try:
            server.serve_forever()
        except (KeyboardInterrupt, _Terminated):
            pass
        finally:
            signal.signal(signal.SIGTERM, previous)
            # serve_forever already exited; drain in-flight handlers
            # first, then stop() closes the socket and flushes events
            server.drain(args.drain_deadline)
            server.stop()
            emit(telemetry, args.telemetry, args.telemetry_out)
        return 0
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":
    sys.exit(main())
