"""Ablation bench: the SCC's stream compressor choice.

Section 2.3 lists Sequitur, linear compression "and others" as
candidate SCC compressors.  This ablation swaps WHOMP's Sequitur for
the delta+RLE codec and measures the OMSG size under each: RLE devours
the strided components but cannot share composite repeated motifs
across occurrences, so Sequitur's grammars win overall -- quantifying
why the paper's WHOMP uses Sequitur.
"""

from conftest import once

from repro.compression.rle import DeltaRleCodec
from repro.profilers.whomp import WhompProfiler


def test_sequitur_vs_delta_rle(benchmark, context):
    def measure():
        rows = {}
        for name in ("gzip", "parser", "twolf"):
            trace = context.trace(name)
            sequitur_bytes = context.whomp(name).size_bytes_varint()
            rle_profile = WhompProfiler(compressor=DeltaRleCodec).profile(trace)
            # both stay lossless
            raw = [(e.instruction_id, e.address) for e in trace.accesses()]
            assert rle_profile.reconstruct_accesses() == raw
            rows[name] = (sequitur_bytes, rle_profile.size_bytes_varint())
        return rows

    rows = once(benchmark, measure)
    print()
    for name, (sequitur_bytes, rle_bytes) in rows.items():
        print(f"{name:8s} sequitur {sequitur_bytes:7d} B   "
              f"delta-rle {rle_bytes:7d} B")
    total_sequitur = sum(s for s, __ in rows.values())
    total_rle = sum(r for __, r in rows.values())
    assert total_sequitur < total_rle


def test_speculation_decisions_from_profiles(benchmark, context):
    """Consumer-level comparison (Chen's motivation for Section 4.2.1):
    profile-driven speculative-load-reordering schedules, scored by
    expected cost under the true frequencies.  LEAP's schedule should
    recover more of the oracle's benefit than the window baseline's."""
    from repro.postprocess.dependence import analyze_dependences
    from repro.postprocess.speculation import evaluate

    def measure():
        leap_cost = connors_cost = oracle_cost = 0.0
        for name in context.benchmarks:
            truth = context.truth_dependence(name)
            leap_table = analyze_dependences(context.leap(name))
            connors_table = context.connors(name)
            __, cost, oracle = evaluate(leap_table, truth)
            leap_cost += cost
            oracle_cost += oracle
            __, cost, __unused = evaluate(connors_table, truth)
            connors_cost += cost
        return leap_cost, connors_cost, oracle_cost

    leap_cost, connors_cost, oracle_cost = once(benchmark, measure)
    print(f"\nexpected schedule cost: LEAP {leap_cost:.0f}, "
          f"Connors {connors_cost:.0f}, oracle {oracle_cost:.0f}")
    assert oracle_cost <= leap_cost < connors_cost <= 0 or (
        oracle_cost <= leap_cost and leap_cost < connors_cost
    )
