"""REPROLINT bench: analyzer wall-clock over the whole source tree.

The selfcheck analyzer runs in CI on every push (twice: the fixture
self-test and the src/ sweep), so it must stay interactive-fast.  The
floor asserts one full sweep of ``src/`` -- parse, class model, all
four checker families -- completes in under 10 seconds, which keeps
the CI job's analysis step well under the test matrix's noise floor.
"""

import time

from conftest import once

from repro.selfcheck.engine import analyze_paths, fixture_selftest

BUDGET_SECONDS = 10.0


def test_selfcheck_sweep_wall_clock(benchmark):
    def sweep():
        start = time.perf_counter()
        findings = analyze_paths(["src/repro"])
        return findings, time.perf_counter() - start

    findings, seconds = once(benchmark, sweep)
    print()
    print(f"repro-lint src/repro: {len(findings)} finding(s) "
          f"in {seconds:.2f}s (budget {BUDGET_SECONDS:.0f}s)")
    assert findings == []
    assert seconds < BUDGET_SECONDS


def test_selfcheck_fixture_selftest_wall_clock(benchmark):
    def selftest():
        start = time.perf_counter()
        result = fixture_selftest()
        return result, time.perf_counter() - start

    result, seconds = once(benchmark, selftest)
    print()
    print(f"repro-lint --fixtures: {len(result.findings)} seeded finding(s) "
          f"in {seconds:.2f}s")
    assert result.ok
    assert seconds < BUDGET_SECONDS
