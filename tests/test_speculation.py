"""Tests for speculative load reordering decisions."""

import pytest

from repro.baselines.dependence_lossless import DependenceProfile
from repro.postprocess.speculation import (
    DEFAULT_THRESHOLD,
    Decision,
    compare_plans,
    evaluate,
    expected_cost,
    plan,
)


def profile_with(frequencies, load_count=100):
    """Build a DependenceProfile from {(st, ld): frequency}."""
    profile = DependenceProfile()
    for (store, load), frequency in frequencies.items():
        profile.conflicts[(store, load)] = int(frequency * load_count)
        profile.load_counts[load] = load_count
        profile.store_counts.setdefault(store, 10)
    return profile


class TestPlanning:
    def test_low_frequency_speculates(self):
        profile = profile_with({(0, 1): 0.01})
        decisions = plan(profile, [(0, 1)])
        assert decisions.decisions[(0, 1)] is Decision.SPECULATE

    def test_high_frequency_keeps_order(self):
        profile = profile_with({(0, 1): 0.9})
        decisions = plan(profile, [(0, 1)])
        assert decisions.decisions[(0, 1)] is Decision.KEEP_ORDER

    def test_unobserved_pair_speculates(self):
        profile = profile_with({})
        decisions = plan(profile, [(5, 6)])
        assert decisions.decisions[(5, 6)] is Decision.SPECULATE

    def test_threshold_boundary(self):
        profile = profile_with({(0, 1): DEFAULT_THRESHOLD})
        decisions = plan(profile, [(0, 1)])
        assert decisions.decisions[(0, 1)] is Decision.KEEP_ORDER

    def test_speculated_set(self):
        profile = profile_with({(0, 1): 0.9, (0, 2): 0.0})
        decisions = plan(profile, [(0, 1), (0, 2)])
        assert decisions.speculated() == {(0, 2)}


class TestComparison:
    def test_perfect_agreement(self):
        profile = profile_with({(0, 1): 0.9, (2, 3): 0.0})
        candidates = [(0, 1), (2, 3)]
        quality = compare_plans(
            plan(profile, candidates), plan(profile, candidates)
        )
        assert quality.agreement_rate == 1.0
        assert quality.disagreements == 0

    def test_unsafe_and_missed_classified(self):
        truth = profile_with({(0, 1): 0.5, (2, 3): 0.0})
        estimated = profile_with({(0, 1): 0.0, (2, 3): 0.5})
        candidates = [(0, 1), (2, 3)]
        quality = compare_plans(
            plan(estimated, candidates), plan(truth, candidates)
        )
        assert quality.unsafe_speculations == 1  # (0,1) wrongly hoisted
        assert quality.missed_speculations == 1  # (2,3) wrongly kept
        assert quality.agreement_rate == 0.0

    def test_empty_candidates(self):
        profile = profile_with({})
        quality = compare_plans(plan(profile, []), plan(profile, []))
        assert quality.agreement_rate == 1.0


class TestExpectedCost:
    def test_safe_speculation_is_profitable(self):
        truth = profile_with({(0, 1): 0.0})
        decisions = plan(truth, [(0, 1)])
        assert expected_cost(decisions, truth) < 0

    def test_unsafe_speculation_is_costly(self):
        truth = profile_with({(0, 1): 0.9})
        wrong = profile_with({(0, 1): 0.0})
        decisions = plan(wrong, [(0, 1)])
        assert expected_cost(decisions, truth) > 0

    def test_keep_order_costs_nothing(self):
        truth = profile_with({(0, 1): 0.9})
        decisions = plan(truth, [(0, 1)])
        assert expected_cost(decisions, truth) == 0.0


class TestEndToEnd:
    def test_leap_close_to_oracle_on_workload(self):
        from repro.baselines.dependence_lossless import (
            LosslessDependenceProfiler,
        )
        from repro.postprocess.dependence import analyze_dependences
        from repro.profilers.leap import LeapProfiler
        from repro.workloads.micro import LinkedListTraversal

        trace = LinkedListTraversal(nodes=40, sweeps=6).trace()
        truth = LosslessDependenceProfiler().profile(trace)
        estimated = analyze_dependences(LeapProfiler().profile(trace))
        quality, cost, oracle_cost = evaluate(estimated, truth)
        assert quality.agreement_rate > 0.9
        assert cost <= 0  # profile-driven schedule is a net win
        assert cost >= oracle_cost  # and never beats the oracle
