"""AST node definitions for the mini-IR language.

Every node carries its source line so the interpreter can name the
static instructions it emits after program points (``main:12``), the way
native instruction probes are named after PCs.  Nodes also carry the
source column so the static analyzer (:mod:`repro.lang.analysis`) can
point diagnostics at exact positions; both fields are excluded from
equality so structurally identical nodes still compare equal.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

# --------------------------------------------------------------------------
# type expressions (syntactic; resolved by repro.lang.typesys)
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class TypeExpr:
    """A syntactic type: ``int``, ``node*``, ``int[8]``..."""

    name: str  # "int" or a struct name
    pointer_depth: int = 0
    array_length: Optional[int] = None

    def __str__(self) -> str:
        text = self.name + "*" * self.pointer_depth
        if self.array_length is not None:
            text += f"[{self.array_length}]"
        return text


# --------------------------------------------------------------------------
# expressions
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class Expr:
    line: int = field(default=0, compare=False)
    column: int = field(default=0, compare=False)


@dataclass(frozen=True)
class IntLiteral(Expr):
    value: int = 0


@dataclass(frozen=True)
class NullLiteral(Expr):
    pass


@dataclass(frozen=True)
class VarRef(Expr):
    name: str = ""


@dataclass(frozen=True)
class Unary(Expr):
    op: str = ""
    operand: Expr = None  # type: ignore[assignment]


@dataclass(frozen=True)
class Binary(Expr):
    op: str = ""
    left: Expr = None  # type: ignore[assignment]
    right: Expr = None  # type: ignore[assignment]


@dataclass(frozen=True)
class Call(Expr):
    name: str = ""
    args: tuple = ()


@dataclass(frozen=True)
class New(Expr):
    """Heap allocation: ``new node`` or ``new int[32]``.

    The allocation site (function + line) becomes the object group.
    """

    type_expr: TypeExpr = None  # type: ignore[assignment]
    count: Optional[Expr] = None  # array element count, when given


@dataclass(frozen=True)
class FieldAccess(Expr):
    """``base.field`` (struct value) or ``base->field`` (via pointer)."""

    base: Expr = None  # type: ignore[assignment]
    field_name: str = ""
    through_pointer: bool = False


@dataclass(frozen=True)
class Index(Expr):
    """``base[index]`` -- base must be a pointer/array."""

    base: Expr = None  # type: ignore[assignment]
    index: Expr = None  # type: ignore[assignment]


@dataclass(frozen=True)
class AddressOf(Expr):
    """``&lvalue`` -- the simulated address of a memory location."""

    target: Expr = None  # type: ignore[assignment]


# --------------------------------------------------------------------------
# statements
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class Stmt:
    line: int = field(default=0, compare=False)
    column: int = field(default=0, compare=False)


@dataclass(frozen=True)
class VarDecl(Stmt):
    """Local register variable: not profiled (the paper skips stack)."""

    name: str = ""
    type_expr: TypeExpr = None  # type: ignore[assignment]
    initializer: Optional[Expr] = None


@dataclass(frozen=True)
class Assign(Stmt):
    """``lvalue = expr``; a memory lvalue emits a store instruction."""

    target: Expr = None  # type: ignore[assignment]
    value: Expr = None  # type: ignore[assignment]


@dataclass(frozen=True)
class ExprStmt(Stmt):
    expr: Expr = None  # type: ignore[assignment]


@dataclass(frozen=True)
class Delete(Stmt):
    pointer: Expr = None  # type: ignore[assignment]


@dataclass(frozen=True)
class If(Stmt):
    condition: Expr = None  # type: ignore[assignment]
    then_body: tuple = ()
    else_body: tuple = ()


@dataclass(frozen=True)
class While(Stmt):
    condition: Expr = None  # type: ignore[assignment]
    body: tuple = ()
    #: a for-loop's step statement; runs after the body even when the
    #: body ends with ``continue`` (C semantics)
    step: Optional["Stmt"] = None


@dataclass(frozen=True)
class Return(Stmt):
    value: Optional[Expr] = None


@dataclass(frozen=True)
class Break(Stmt):
    pass


@dataclass(frozen=True)
class Continue(Stmt):
    pass


# --------------------------------------------------------------------------
# declarations
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class FieldDecl:
    name: str
    type_expr: TypeExpr
    line: int = 0
    column: int = 0


@dataclass(frozen=True)
class StructDecl:
    name: str
    fields: tuple  # of FieldDecl
    line: int = 0
    column: int = 0


@dataclass(frozen=True)
class GlobalDecl:
    """Statically allocated object, laid out by the linker."""

    name: str
    type_expr: TypeExpr
    line: int = 0
    column: int = 0


@dataclass(frozen=True)
class Param:
    name: str
    type_expr: TypeExpr


@dataclass(frozen=True)
class FunctionDecl:
    name: str
    params: tuple  # of Param
    return_type: Optional[TypeExpr]
    body: tuple  # of Stmt
    line: int = 0
    column: int = 0


@dataclass(frozen=True)
class Program:
    structs: tuple  # of StructDecl
    globals: tuple  # of GlobalDecl
    functions: tuple  # of FunctionDecl

    def function(self, name: str) -> FunctionDecl:
        for fn in self.functions:
            if fn.name == name:
                return fn
        raise KeyError(name)
