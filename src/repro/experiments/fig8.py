"""Figure 8: LEAP vs Connors, average error distributions side by side.

The paper's comparison point: "note the 56% improvement in the number
of pairs detected completely correct or off by no more than 10%".
"""

from __future__ import annotations

from typing import Dict

from repro.analysis.metrics import ErrorDistribution
from repro.analysis.report import format_histogram, percent
from repro.experiments import fig6, fig7
from repro.experiments.context import SuiteContext

#: The paper's headline improvement of LEAP over Connors.
PAPER_IMPROVEMENT = 0.56


def run(context: SuiteContext) -> Dict[str, object]:
    leap_average = ErrorDistribution.average(
        list(fig6.distributions(context).values())
    )
    connors_average = ErrorDistribution.average(
        list(fig7.distributions(context).values())
    )
    leap_within = leap_average.within(0.10)
    connors_within = connors_average.within(0.10)
    improvement = (
        (leap_within - connors_within) / connors_within
        if connors_within
        else float("inf")
    )
    return {
        "figure": "8",
        "leap_average": leap_average,
        "connors_average": connors_average,
        "leap_within_10": leap_within,
        "connors_within_10": connors_within,
        "improvement": improvement,
        "paper_improvement": PAPER_IMPROVEMENT,
    }


def render(results: Dict[str, object]) -> str:
    parts = [
        "Figure 8: average error distributions, LEAP vs Connors",
        format_histogram(results["leap_average"], title="\nLEAP:"),
        format_histogram(results["connors_average"], title="\nConnors:"),
        (
            f"\nwithin 10%: LEAP {percent(results['leap_within_10'])} vs "
            f"Connors {percent(results['connors_within_10'])}"
        ),
        (
            f"improvement: {percent(results['improvement'], 0)} "
            f"(paper: {percent(results['paper_improvement'], 0)})"
        ),
    ]
    return "\n".join(parts)


def main() -> None:
    print(render(run(SuiteContext())))


if __name__ == "__main__":
    main()
