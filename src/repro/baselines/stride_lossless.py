"""Lossless stride profiler (the Wu PLDI'02 re-implementation).

Figure 9's ground truth: "We re-implement the stride profiling in [Wu]
with a setting to make it lossless and track all the strides for a given
instruction (which is extremely slow because of the huge amount of
stride information to be tracked)."

For every instruction the full histogram of strides -- deltas between
consecutive raw addresses accessed by that instruction -- is recorded.
An instruction is *strongly strided* when "one stride accounts for >=
70% of its total accesses" (the paper's adopted definition).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Set

from repro.core.events import Trace

#: The paper's strongly-strided threshold.
STRONG_THRESHOLD = 0.70

#: Minimum dynamic executions before an instruction is classified at
#: all; keeps one-shot instructions out of both the "real" set and the
#: identified set.
MIN_SAMPLES = 4


@dataclass
class StrideProfile:
    """Per-instruction stride histograms."""

    #: instruction id -> {stride -> occurrences}
    histograms: Dict[int, Dict[int, int]] = field(default_factory=dict)
    #: instruction id -> total dynamic executions
    exec_counts: Dict[int, int] = field(default_factory=dict)

    def dominant_stride(self, instruction_id: int) -> Optional[int]:
        histogram = self.histograms.get(instruction_id)
        if not histogram:
            return None
        return max(histogram, key=lambda stride: histogram[stride])

    def dominant_fraction(self, instruction_id: int) -> float:
        """Fraction of stride samples taken by the most common stride."""
        histogram = self.histograms.get(instruction_id)
        if not histogram:
            return 0.0
        total = sum(histogram.values())
        return max(histogram.values()) / total

    def strongly_strided(
        self,
        threshold: float = STRONG_THRESHOLD,
        min_samples: int = MIN_SAMPLES,
    ) -> Set[int]:
        """Instructions whose dominant stride covers >= ``threshold`` of
        their stride samples."""
        result: Set[int] = set()
        for instruction_id, histogram in self.histograms.items():
            if self.exec_counts.get(instruction_id, 0) < min_samples:
                continue
            total = sum(histogram.values())
            if total and max(histogram.values()) / total >= threshold:
                result.add(instruction_id)
        return result


class LosslessStrideProfiler:
    """Track every stride of every instruction over the raw trace."""

    def profile(self, trace: Trace) -> StrideProfile:
        profile = StrideProfile()
        last_address: Dict[int, int] = {}
        for event in trace.accesses():
            instruction = event.instruction_id
            profile.exec_counts[instruction] = (
                profile.exec_counts.get(instruction, 0) + 1
            )
            previous = last_address.get(instruction)
            if previous is not None:
                stride = event.address - previous
                histogram = profile.histograms.setdefault(instruction, {})
                histogram[stride] = histogram.get(stride, 0) + 1
            last_address[instruction] = event.address
        return profile
