"""Regression tests for the defects REPROLINT's first sweep surfaced.

Each test pins the *fixed* behavior of a finding the analyzer reported
against the real tree: the torn hit-rate read (RL102), event-log disk
writes under the state lock (RL103), the lock-free quarantine (RL105),
the server lifecycle race, and the manifest durability contract.
"""

import threading

import pytest

import repro.obs.events as events_module
from repro.obs.events import EventLog
from repro.store import LRUCache, ProfileStore
from repro.store.server import StoreServer


class TestCacheHitRateIsLocked:
    def test_hit_rate_blocks_while_lock_is_held(self):
        # pre-fix, hit_rate read hits/misses without the lock; now it
        # must wait for _lock holders, which this test observes directly
        cache = LRUCache(capacity=4)
        cache.get_or_load("k", lambda: 1)
        entered = threading.Event()
        release = threading.Event()
        result = {}

        def hold_lock():
            with cache._lock:
                entered.set()
                release.wait(timeout=5)

        def read_rate():
            result["rate"] = cache.hit_rate

        holder = threading.Thread(target=hold_lock)
        holder.start()
        assert entered.wait(timeout=5)
        reader = threading.Thread(target=read_rate)
        reader.start()
        reader.join(timeout=0.2)
        assert reader.is_alive(), "hit_rate returned without the lock"
        release.set()
        reader.join(timeout=5)
        holder.join(timeout=5)
        assert result["rate"] == 0.0  # one miss, zero hits


class TestEventLogFlushDiscipline:
    def test_disk_write_happens_outside_state_lock(self, tmp_path, monkeypatch):
        observed = {}
        log = EventLog(path=str(tmp_path / "events.jsonl"), flush_every=1)

        def spy(path, text):
            # the state lock must be free during the write...
            acquired = log._lock.acquire(blocking=False)
            if acquired:
                log._lock.release()
            observed["state_lock_free"] = acquired
            # ...and the sink lock must be held (serializing writers)
            observed["sink_lock_held"] = not log._sink_lock.acquire(
                blocking=False
            )
            if not observed["sink_lock_held"]:
                log._sink_lock.release()

        monkeypatch.setattr(events_module, "atomic_write_text", spy)
        log.emit("stage", path="trace.json", seconds=0.5)
        assert observed == {
            "state_lock_free": True,
            "sink_lock_held": True,
        }

    def test_flush_every_one_persists_each_emit(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(path=str(path), flush_every=1)
        log.emit("stage", path="a.json", seconds=0.1)
        first = path.read_text()
        log.emit("stage", path="b.json", seconds=0.2)
        second = path.read_text()
        assert "a.json" in first
        assert "b.json" in second


class TestServerLifecycle:
    def test_double_start_raises(self, tmp_path):
        server = StoreServer(ProfileStore(str(tmp_path)), port=0)
        server.start()
        try:
            with pytest.raises(RuntimeError, match="already started"):
                server.start()
        finally:
            server.stop()

    def test_stop_is_idempotent(self, tmp_path):
        server = StoreServer(ProfileStore(str(tmp_path)), port=0)
        server.start()
        server.stop()
        server.stop()  # must not raise or hang

    def test_server_restarts_after_stop(self, tmp_path):
        # stop() clears the thread handle, so a fresh server instance
        # pattern is not forced on embedders mid-process
        server = StoreServer(ProfileStore(str(tmp_path)), port=0)
        server.start()
        server.stop()
        server2 = StoreServer(ProfileStore(str(tmp_path)), port=0)
        server2.start()
        server2.stop()
