"""Figure 8 bench: LEAP vs Connors, averaged error distributions.

Regenerates the side-by-side comparison and asserts the headline shape:
LEAP identifies substantially more pairs correct-or-within-10% than the
window-based baseline (the paper reports a 56% improvement).
"""

from conftest import once

from repro.experiments import fig8


def test_fig8_leap_vs_connors(benchmark, context):
    results = once(benchmark, fig8.run, context)
    print()
    print(fig8.render(results))

    # shape: LEAP wins by a wide margin (paper: +56%)
    assert results["leap_within_10"] > results["connors_within_10"]
    assert results["improvement"] > 0.25
    # and LEAP's peak-at-zero dominates Connors' peak
    leap_peak = results["leap_average"].fractions()[10]
    connors_peak = results["connors_average"].fractions()[10]
    assert leap_peak > connors_peak
