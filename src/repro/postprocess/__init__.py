"""Optimization-specific post-processors over object-relative profiles:
the paper's two LEAP applications (memory-dependence frequency, stride
patterns) plus the profile-consuming optimizations its introduction
motivates (hot data streams, object clustering, stride prefetching,
field reordering), evaluated on the cache simulator."""

from repro.postprocess.clustering import ObjectClusterer, affinity_graph, cluster_order
from repro.postprocess.dependence import LeapDependenceAnalyzer, analyze_dependences
from repro.postprocess.field_reorder import FieldReorderer
from repro.postprocess.hot_streams import HotStream, extract_hot_streams
from repro.postprocess.prefetch import PrefetchPlan, evaluate_prefetching, plan_from_profile
from repro.postprocess.speculation import (
    Decision,
    SpeculationPlan,
    compare_plans,
    expected_cost,
)
from repro.postprocess.speculation import evaluate as evaluate_speculation
from repro.postprocess.speculation import plan as plan_speculation
from repro.postprocess.strides import (
    LeapStrideAnalyzer,
    dominant_strides,
    stride_score,
)

__all__ = [
    "Decision", "FieldReorderer", "HotStream", "LeapDependenceAnalyzer",
    "SpeculationPlan", "compare_plans", "evaluate_speculation",
    "expected_cost", "plan_speculation",
    "LeapStrideAnalyzer", "ObjectClusterer", "PrefetchPlan",
    "affinity_graph", "analyze_dependences", "cluster_order",
    "dominant_strides", "evaluate_prefetching", "extract_hot_streams",
    "plan_from_profile", "stride_score",
]
