"""Telemetry self-dilation benchmark.

Table 1's central observability claim is the *dilation factor*: how much
slower the program runs with the profiler attached.  This benchmark is
the repo's analogue for its own instrumentation -- it times the WHOMP
and LEAP pipelines under the default :class:`~repro.telemetry.NullTelemetry`
and under a live :class:`~repro.telemetry.Telemetry`, and records the
instrumented-vs-null ratio in ``extra_info`` so future PRs can track
whether the measurement substrate itself is getting heavier.

The null path is additionally asserted against a hand-rolled bare loop
(no telemetry plumbing at all) in
``tests/test_telemetry_integration.py``; here the interest is the
*enabled* cost.
"""

import time

from repro.profilers.leap import LeapProfiler
from repro.profilers.whomp import WhompProfiler
from repro.telemetry import Telemetry
from repro.workloads.registry import create

#: Enabled telemetry stages the pipeline (materializes the translated
#: stream to time each phase), so some dilation is expected; it must
#: stay bounded or our own Table 1 numbers become lies.
MAX_ENABLED_DILATION = 3.0


def _micro_trace():
    return create("micro.array", scale=2.0).trace()


def _best_of(function, *args, rounds=3):
    timings = []
    for __ in range(rounds):
        start = time.perf_counter()
        function(*args)
        timings.append(time.perf_counter() - start)
    return min(timings)


def test_whomp_telemetry_dilation(benchmark):
    trace = _micro_trace()
    null_profiler = WhompProfiler()

    def instrumented():
        return WhompProfiler(telemetry=Telemetry()).profile(trace)

    null_profiler.profile(trace)  # warm
    null_seconds = _best_of(null_profiler.profile, trace)
    benchmark.pedantic(instrumented, rounds=3, iterations=1)
    instrumented_seconds = _best_of(
        lambda: WhompProfiler(telemetry=Telemetry()).profile(trace)
    )
    dilation = instrumented_seconds / null_seconds
    benchmark.extra_info["null_seconds"] = null_seconds
    benchmark.extra_info["instrumented_seconds"] = instrumented_seconds
    benchmark.extra_info["telemetry_dilation"] = dilation
    assert dilation < MAX_ENABLED_DILATION


def test_leap_telemetry_dilation(benchmark):
    trace = _micro_trace()
    null_profiler = LeapProfiler()

    def instrumented():
        return LeapProfiler(telemetry=Telemetry()).profile(trace)

    null_profiler.profile(trace)  # warm
    null_seconds = _best_of(null_profiler.profile, trace)
    benchmark.pedantic(instrumented, rounds=3, iterations=1)
    instrumented_seconds = _best_of(
        lambda: LeapProfiler(telemetry=Telemetry()).profile(trace)
    )
    dilation = instrumented_seconds / null_seconds
    benchmark.extra_info["null_seconds"] = null_seconds
    benchmark.extra_info["instrumented_seconds"] = instrumented_seconds
    benchmark.extra_info["telemetry_dilation"] = dilation
    assert dilation < MAX_ENABLED_DILATION
