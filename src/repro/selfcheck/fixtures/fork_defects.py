# repro: fixture
# repro: workers
"""Seeded fork-safety defects: every RL12x checker must fire here.

The module is marked as a workers module, so each top-level function
is held to the fork-boundary rules; ``launch`` additionally hands a
lambda straight to a pool dispatch.
"""

import threading

from repro.obs.context import TraceContext, activate

_POOL_LOCK = threading.Lock()
_TOTAL = 0


def captured_lock_worker(chunk):
    """Captures a parent-process lock: may be snapshotted held."""
    with _POOL_LOCK:  # repro: expect(RL122)
        return sum(chunk)


def default_capture_worker(chunk, guard=threading.Lock()):  # repro: expect(RL123)
    """One parent-side lock object snapshotted into every child."""
    del guard
    return sum(chunk)


def global_mutating_worker(chunk):
    """Mutations after the fork never reach parent or siblings."""
    global _TOTAL  # repro: expect(RL124)
    _TOTAL = sum(chunk)
    return _TOTAL


def leaky_trace_worker(chunk):
    """Opens an activation it can never reliably close."""
    context = TraceContext.new()
    activate(context)  # repro: expect(RL125)
    return sum(chunk)


def safe_trace_worker(chunk):
    """The sanctioned shape: scope the activation with ``with``."""
    with activate(TraceContext.new()):
        return sum(chunk)


def launch(pool, chunks):
    """Dispatches a lambda, which cannot pickle by reference."""
    return pool.map(lambda chunk: sum(chunk), chunks)  # repro: expect(RL121)
