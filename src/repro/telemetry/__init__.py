"""Pipeline-wide telemetry: spans, counters, and self-profiling.

The paper's Table 1 measures the profilers themselves -- dilation
factors, profile sizes, capture rates.  This package is the repo's own
measurement substrate: a dependency-free registry of named metrics, a
nestable span tree timing each pipeline stage, and exporters rendering
the lot as a human report, JSON, or Prometheus text.

Usage::

    from repro.telemetry import Telemetry

    telemetry = Telemetry()
    profile = WhompProfiler(telemetry=telemetry).profile(trace)
    print(render_report(telemetry))

Every instrumented component defaults to :data:`NULL_TELEMETRY`, whose
operations are no-ops and which components detect once at construction
-- uninstrumented runs keep the seed hot paths unchanged.
"""

from repro.telemetry.export import (
    MODES,
    emit,
    render,
    render_json,
    render_prometheus,
    render_report,
    telemetry_to_dict,
)
from repro.telemetry.registry import (
    Counter,
    Gauge,
    Histogram,
    Registry,
)
from repro.telemetry.spans import (
    NULL_TELEMETRY,
    NullTelemetry,
    Span,
    Telemetry,
    coalesce,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MODES",
    "NULL_TELEMETRY",
    "NullTelemetry",
    "Registry",
    "Span",
    "Telemetry",
    "coalesce",
    "emit",
    "render",
    "render_json",
    "render_prometheus",
    "render_report",
    "telemetry_to_dict",
]
