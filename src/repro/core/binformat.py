"""BINCAP -- the compact binary profile format and its stream protocol.

JSON stays the readable, diffable document form; this module is the
*wire and archive* form: a framed, varint/delta-encoded binary encoding
of the same WHOMP / LEAP / dependence documents, typically several
times smaller and faster to decode (the store-ingest hot path is one
full decode per document).

Layout of one binary document::

    MAGIC (8 bytes)                  \x89 R P B \r \n \x1a \n
    frame*                           tag byte, uvarint length, payload
    END frame                        CRC32 of every preceding byte

The PNG-style magic catches text-mode mangling as well as mistaking a
JSON document for a binary one; :func:`sniff_kind` peeks it (plus the
header frame) without decoding the body.  Every frame is
length-prefixed, so a reader can skip, buffer, or stream frames without
understanding their payloads, and the trailing CRC detects a truncated
or bit-flipped file: decode either returns a valid document or raises
:class:`BinaryFormatError`, mirroring the robustness contract of
:mod:`repro.core.profile_io` (which wraps these errors in
``ProfileFormatError``).

Integers are LEB128 varints, zigzag-coded where negative values occur
(offsets, wild-group terminals).  Repeated rows are delta-coded against
the previous row -- object serials and base addresses in the OMC
tables, allocation/free timestamps in lifetime rows, LMAD start vectors
within an entry -- which is what makes object-relative streams so
compressible: consecutive rows differ by small amounts by construction.

The same frame layer carries the **stream protocol** used by
``repro-serve ingest --stream``: a :class:`StreamWriter` emits
documents incrementally (``DOC_BEGIN``, raw-byte ``CHUNK`` frames, a
``DOC_END`` carrying length + CRC32, and a final ``STREAM_END`` with
the document count) over a pipe or socket, and the daemon feeds the
bytes to a :class:`StreamReader` as they arrive, assembling and
validating complete documents *while* the workload is still being
profiled.  A torn tail (the producer died mid-document) is detected --
the completed prefix is kept, the partial document is discarded, and
:meth:`StreamReader.summary` reports the degraded completeness instead
of anything crashing.
"""

from __future__ import annotations

import json
import struct
import zlib
from typing import Callable, Dict, Iterator, List, Optional, Tuple

#: binary document magic: \x89 catches 7-bit strips, RPB names the
#: format, \r\n\x1a\n catches newline translation (the PNG trick)
MAGIC = b"\x89RPB\r\n\x1a\n"

#: bumped when the frame vocabulary or payload encodings change
BINARY_VERSION = 1

#: bumped when the stream protocol changes
STREAM_VERSION = 1

# -- frame tags ---------------------------------------------------------------

FRAME_HEADER = 0x01  # uvarint version, token kind
FRAME_META = 0x02  # kind-specific scalars
FRAME_GRAMMAR = 0x03  # one WHOMP dimension grammar
FRAME_BASES = 0x04  # (group, serial) -> base address rows
FRAME_LIFETIMES = 0x05  # (group, serial, alloc, free, size) rows
FRAME_LABELS = 0x06  # group id -> label rows
FRAME_ENTRY = 0x07  # one LEAP (instruction, group) entry
FRAME_KINDS = 0x08  # LEAP instruction -> load/store rows
FRAME_EXECS = 0x09  # LEAP instruction -> exec count rows
FRAME_CONFLICTS = 0x0A  # dependence (store, load, count) rows
FRAME_COUNTS = 0x0B  # dependence load/store count rows
FRAME_END = 0x0F  # 4-byte LE CRC32 of everything before this frame

FRAME_STREAM_BEGIN = 0x10  # uvarint stream version
FRAME_DOC_BEGIN = 0x11  # token workload, token meta (JSON text or "")
FRAME_CHUNK = 0x12  # raw document bytes
FRAME_DOC_END = 0x13  # uvarint byte length, 4-byte LE CRC32
FRAME_STREAM_END = 0x14  # uvarint document count

#: kinds this codec can encode (trace documents stay JSON-only)
BINARY_KINDS = ("whomp", "leap", "dependence")


class BinaryFormatError(ValueError):
    """Raised when binary profile bytes cannot be decoded.

    A ``ValueError`` subclass so generic "bad input" handlers (the
    daemon's 400 path) catch it without naming it;
    :mod:`repro.core.profile_io` re-raises it as ``ProfileFormatError``
    so path-level callers see one exception type for both formats.
    """


# -- varint primitives --------------------------------------------------------


def _encode_uvarint(value: int) -> bytes:
    if value < 0:
        raise BinaryFormatError(f"uvarint cannot encode negative {value}")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


#: one-byte fast path for the overwhelmingly common small values
_UVARINT_CACHE: List[bytes] = [_encode_uvarint(i) for i in range(1 << 14)]


def write_uvarint(out: bytearray, value: int) -> None:
    if 0 <= value < 16384:
        out += _UVARINT_CACHE[value]
    else:
        out += _encode_uvarint(value)


def write_svarint(out: bytearray, value: int) -> None:
    """Zigzag-coded signed varint."""
    zigzag = value << 1 if value >= 0 else (-value << 1) - 1
    if zigzag < 16384:
        out += _UVARINT_CACHE[zigzag]
    else:
        out += _encode_uvarint(zigzag)


def read_uvarint(data: bytes, pos: int) -> Tuple[int, int]:
    """Decode one uvarint at ``pos``; returns (value, next position)."""
    try:
        byte = data[pos]
    except IndexError:
        raise BinaryFormatError("truncated varint") from None
    pos += 1
    if byte < 0x80:
        return byte, pos
    result = byte & 0x7F
    shift = 7
    while True:
        try:
            byte = data[pos]
        except IndexError:
            raise BinaryFormatError("truncated varint") from None
        pos += 1
        if byte < 0x80:
            return result | (byte << shift), pos
        result |= (byte & 0x7F) << shift
        shift += 7
        if shift > 70:
            raise BinaryFormatError("varint longer than 10 bytes")


def read_svarint(data: bytes, pos: int) -> Tuple[int, int]:
    zigzag, pos = read_uvarint(data, pos)
    return (zigzag >> 1) ^ -(zigzag & 1), pos


def write_token(out: bytearray, text: str) -> None:
    """A length-prefixed UTF-8 string."""
    raw = text.encode("utf-8")
    write_uvarint(out, len(raw))
    out += raw


def read_token(data: bytes, pos: int, limit: int = 1 << 20) -> Tuple[str, int]:
    length, pos = read_uvarint(data, pos)
    if length > limit:
        raise BinaryFormatError(f"token of {length} bytes exceeds limit")
    raw = data[pos : pos + length]
    if len(raw) != length:
        raise BinaryFormatError("truncated token")
    try:
        return raw.decode("utf-8"), pos + length
    except UnicodeDecodeError as exc:
        raise BinaryFormatError(f"token is not UTF-8: {exc}") from exc


def _read_double(data: bytes, pos: int) -> Tuple[float, int]:
    raw = data[pos : pos + 8]
    if len(raw) != 8:
        raise BinaryFormatError("truncated double")
    return struct.unpack("<d", raw)[0], pos + 8


def _read_varint_block(data: bytes, pos: int = 0) -> List[int]:
    """Decode a frame payload that is varints wall to wall into a flat
    int list with one tight loop.

    Row decoders then interpret the list positionally -- an order of
    magnitude cheaper than a function call per varint, which is what
    makes pure-Python binary decode competitive with the C JSON parser.
    """
    values: List[int] = []
    append = values.append
    size = len(data)
    try:
        while pos < size:
            byte = data[pos]
            pos += 1
            if byte < 0x80:
                append(byte)
                continue
            result = byte & 0x7F
            shift = 7
            while True:
                byte = data[pos]
                pos += 1
                if byte < 0x80:
                    append(result | (byte << shift))
                    break
                result |= (byte & 0x7F) << shift
                shift += 7
                if shift > 70:
                    raise BinaryFormatError("varint longer than 10 bytes")
    except IndexError:
        raise BinaryFormatError("truncated varint") from None
    return values


# -- frame layer --------------------------------------------------------------


def write_frame(out: bytearray, tag: int, payload: bytes) -> None:
    out.append(tag)
    write_uvarint(out, len(payload))
    out += payload


class FrameParser:
    """Incremental frame splitter: feed bytes, pull complete frames.

    The workhorse of both :func:`iter_frames` (whole documents in
    memory) and :class:`StreamReader` (bytes trickling off a socket).
    A frame is only surfaced once its full payload has arrived, so a
    consumer never sees a torn payload; :attr:`pending` says how many
    buffered bytes belong to an incomplete trailing frame.
    """

    def __init__(self, max_frame_bytes: int = 1 << 30) -> None:
        self._buffer = bytearray()
        self._pos = 0
        self.max_frame_bytes = max_frame_bytes
        #: total bytes consumed into complete frames
        self.consumed = 0

    def feed(self, data: bytes) -> None:
        self._buffer += data

    @property
    def pending(self) -> int:
        """Buffered bytes not yet part of a surfaced frame."""
        return len(self._buffer) - self._pos

    def next_frame(self) -> Optional[Tuple[int, bytes]]:
        """The next complete ``(tag, payload)``, or None to wait."""
        buffer, pos = self._buffer, self._pos
        if pos >= len(buffer):
            return None
        cursor = pos + 1
        # inline uvarint read that waits instead of raising on a
        # not-yet-complete length prefix
        length = 0
        shift = 0
        while True:
            if cursor >= len(buffer):
                return None
            byte = buffer[cursor]
            cursor += 1
            if byte < 0x80:
                length |= byte << shift
                break
            length |= (byte & 0x7F) << shift
            shift += 7
            if shift > 70:
                raise BinaryFormatError("frame length varint overflow")
        if length > self.max_frame_bytes:
            raise BinaryFormatError(
                f"frame of {length} bytes exceeds the "
                f"{self.max_frame_bytes}-byte cap"
            )
        if cursor + length > len(buffer):
            return None
        payload = bytes(buffer[cursor : cursor + length])
        tag = buffer[pos]
        self._pos = cursor + length
        self.consumed += self._pos - pos
        if self._pos > 1 << 16:
            del self._buffer[: self._pos]
            self._pos = 0
        return tag, payload


def iter_frames(data: bytes, offset: int) -> Iterator[Tuple[int, bytes]]:
    """All frames of an in-memory document, raising on a torn tail."""
    parser = FrameParser()
    parser.feed(data[offset:])
    while True:
        frame = parser.next_frame()
        if frame is None:
            if parser.pending:
                raise BinaryFormatError(
                    "truncated binary profile: torn trailing frame"
                )
            return
        yield frame


# -- document encoding --------------------------------------------------------


def _encode_symbol(out: bytearray, tag: str, value: object) -> None:
    """One grammar symbol as a single varint: bit 0 distinguishes rule
    references (``rule_id << 1 | 1``) from terminals
    (``zigzag(value) << 1``), so the common small terminal costs one
    byte."""
    if tag == "T":
        if not isinstance(value, int) or isinstance(value, bool):
            raise BinaryFormatError(
                f"binary grammars require integer terminals, got {value!r}"
            )
        zigzag = value << 1 if value >= 0 else (-value << 1) - 1
        write_uvarint(out, zigzag << 1)
    elif tag == "R":
        write_uvarint(out, (int(value) << 1) | 1)
    else:
        raise BinaryFormatError(f"bad symbol tag {tag!r}")


def _encode_grammar(name: str, grammar: Dict[str, object]) -> bytes:
    out = bytearray()
    write_token(out, name)
    productions = grammar["productions"]
    try:
        rules = sorted(
            (int(rule_id), rhs) for rule_id, rhs in productions.items()
        )
    except (TypeError, ValueError) as exc:
        raise BinaryFormatError(f"non-integer grammar rule id: {exc}") from exc
    write_uvarint(out, int(grammar["start"]))
    write_uvarint(out, len(rules))
    previous = 0
    for rule_id, rhs in rules:
        if rule_id < previous:
            raise BinaryFormatError("grammar rule ids must be unique")
        write_uvarint(out, rule_id - previous)
        previous = rule_id
        write_uvarint(out, len(rhs))
        for symbol in rhs:
            _encode_symbol(out, symbol[0], symbol[1])
    return bytes(out)


def _decode_grammar_tagged(
    payload: bytes,
) -> Tuple[str, int, Dict[int, List[int]]]:
    """Decode a grammar frame to its *tagged* form: productions as
    lists of the raw symbol varints (bit 0 = is-ref), no per-symbol
    list objects.  The hot inner loop inlines the varint read -- this
    frame is most of a WHOMP document's bytes."""
    name, pos = read_token(payload, 0)
    start, pos = read_uvarint(payload, pos)
    n_rules, pos = read_uvarint(payload, pos)
    if n_rules > len(payload):
        raise BinaryFormatError("grammar claims more rules than bytes")
    productions: Dict[int, List[int]] = {}
    rule_id = 0
    data = payload
    size = len(payload)
    try:
        for __ in range(n_rules):
            delta, pos = read_uvarint(data, pos)
            rule_id += delta
            n_symbols, pos = read_uvarint(data, pos)
            if n_symbols > size:
                raise BinaryFormatError(
                    "production claims more symbols than bytes"
                )
            rhs: List[int] = []
            append = rhs.append
            for __ in range(n_symbols):
                byte = data[pos]
                pos += 1
                if byte < 0x80:
                    append(byte)
                    continue
                tagged = byte & 0x7F
                shift = 7
                while True:
                    byte = data[pos]
                    pos += 1
                    if byte < 0x80:
                        append(tagged | (byte << shift))
                        break
                    tagged |= (byte & 0x7F) << shift
                    shift += 7
                    if shift > 70:
                        raise BinaryFormatError("varint longer than 10 bytes")
            productions[rule_id] = rhs
    except IndexError:
        raise BinaryFormatError("truncated grammar frame") from None
    if pos != size:
        raise BinaryFormatError("trailing bytes in grammar frame")
    return name, start, productions


def _decode_grammar(payload: bytes) -> Tuple[str, Dict[str, object]]:
    name, start, tagged_rules = _decode_grammar_tagged(payload)
    productions: Dict[str, List[List[object]]] = {}
    for rule_id, rhs in tagged_rules.items():
        productions[str(rule_id)] = [
            ["R", tagged >> 1]
            if tagged & 1
            else ["T", (tagged >> 2) ^ -((tagged >> 1) & 1)]
            for tagged in rhs
        ]
    return name, {"start": start, "productions": productions}


def _encode_bases(rows: List[List[int]]) -> bytes:
    """``[group, serial, address]`` rows, delta-coded against the
    previous row (serials and addresses grow near-monotonically within
    a group, so deltas stay one or two bytes)."""
    out = bytearray()
    write_uvarint(out, len(rows))
    prev_group = prev_serial = prev_address = 0
    for group, serial, address in rows:
        write_svarint(out, group - prev_group)
        write_svarint(out, serial - prev_serial)
        write_svarint(out, address - prev_address)
        prev_group, prev_serial, prev_address = group, serial, address
    return bytes(out)


def _decode_bases(payload: bytes) -> List[List[int]]:
    values = _read_varint_block(payload)
    if not values:
        raise BinaryFormatError("empty bases frame")
    count = values[0]
    if len(values) != 1 + 3 * count:
        raise BinaryFormatError("bases frame row count mismatch")
    rows: List[List[int]] = []
    append = rows.append
    group = serial = address = 0
    index = 1
    for __ in range(count):
        zigzag = values[index]
        group += (zigzag >> 1) ^ -(zigzag & 1)
        zigzag = values[index + 1]
        serial += (zigzag >> 1) ^ -(zigzag & 1)
        zigzag = values[index + 2]
        address += (zigzag >> 1) ^ -(zigzag & 1)
        index += 3
        append([group, serial, address])
    return rows


def _encode_lifetimes(rows: List[List[object]]) -> bytes:
    """``[group, serial, alloc, free, size]`` rows; alloc timestamps
    are delta-coded row to row, free as an offset from its own alloc
    (lifetime length), with 0 reserved for "never freed"."""
    out = bytearray()
    write_uvarint(out, len(rows))
    prev_alloc = 0
    for row in rows:
        group, serial, alloc, free, size = row
        write_svarint(out, group)
        write_svarint(out, serial)
        write_svarint(out, alloc - prev_alloc)
        prev_alloc = alloc
        if free is None:
            write_uvarint(out, 0)
        else:
            write_uvarint(out, 1)
            write_svarint(out, free - alloc)
        write_svarint(out, size)
    return bytes(out)


def _decode_lifetimes(payload: bytes) -> List[List[object]]:
    values = _read_varint_block(payload)
    try:
        count = values[0]
        rows: List[List[object]] = []
        append = rows.append
        alloc = 0
        index = 1
        for __ in range(count):
            zigzag = values[index]
            group = (zigzag >> 1) ^ -(zigzag & 1)
            zigzag = values[index + 1]
            serial = (zigzag >> 1) ^ -(zigzag & 1)
            zigzag = values[index + 2]
            alloc += (zigzag >> 1) ^ -(zigzag & 1)
            free: Optional[int] = None
            index += 4
            if values[index - 1]:
                zigzag = values[index]
                free = alloc + ((zigzag >> 1) ^ -(zigzag & 1))
                index += 1
            zigzag = values[index]
            index += 1
            append([group, serial, alloc, free, (zigzag >> 1) ^ -(zigzag & 1)])
    except IndexError:
        raise BinaryFormatError("truncated lifetimes frame") from None
    if index != len(values):
        raise BinaryFormatError("trailing bytes in lifetimes frame")
    return rows


def _encode_labels(labels: Dict[str, object]) -> bytes:
    out = bytearray()
    try:
        rows = sorted((int(key), str(value)) for key, value in labels.items())
    except (TypeError, ValueError) as exc:
        raise BinaryFormatError(f"non-integer group id: {exc}") from exc
    write_uvarint(out, len(rows))
    for group, label in rows:
        write_svarint(out, group)
        write_token(out, label)
    return bytes(out)


def _decode_labels(payload: bytes) -> Dict[str, str]:
    count, pos = read_uvarint(payload, 0)
    if count > len(payload):
        raise BinaryFormatError("labels frame claims more rows than bytes")
    labels: Dict[str, str] = {}
    for __ in range(count):
        group, pos = read_svarint(payload, pos)
        label, pos = read_token(payload, pos)
        labels[str(group)] = label
    if pos != len(payload):
        raise BinaryFormatError("trailing bytes in labels frame")
    return labels


def _encode_entry(record: Dict[str, object]) -> bytes:
    """One LEAP entry frame.  LMAD start vectors are delta-coded
    against the previous LMAD in the entry (descriptors for one
    instruction walk the same object, so starts cluster)."""
    out = bytearray()
    write_svarint(out, record["instruction"])
    write_svarint(out, record["group"])
    write_uvarint(out, record["total"])
    overflow = record["overflow"]
    has_bounds = overflow.get("min") is not None
    flags = (1 if record.get("summarized") else 0) | (2 if has_bounds else 0)
    write_uvarint(out, flags)
    lmads = record["lmads"]
    write_uvarint(out, len(lmads))
    previous_start: Optional[List[int]] = None
    for start, stride, count in lmads:
        write_uvarint(out, len(start))
        if len(stride) != len(start):
            raise BinaryFormatError("LMAD start/stride dimension mismatch")
        if previous_start is not None and len(previous_start) == len(start):
            for component, anchor in zip(start, previous_start):
                write_svarint(out, component - anchor)
        else:
            for component in start:
                write_svarint(out, component)
        previous_start = list(start)
        for component in stride:
            write_svarint(out, component)
        write_uvarint(out, count)
    write_uvarint(out, overflow["count"])
    if has_bounds:
        minimum = overflow["min"]
        maximum = overflow["max"]
        granularity = overflow["granularity"]
        if maximum is None or granularity is None or not (
            len(minimum) == len(maximum) == len(granularity)
        ):
            raise BinaryFormatError("overflow bound vectors disagree")
        write_uvarint(out, len(minimum))
        for low, high, grain in zip(minimum, maximum, granularity):
            write_svarint(out, low)
            write_svarint(out, high - low)
            write_svarint(out, grain)
    return bytes(out)


def _decode_entry(payload: bytes) -> Dict[str, object]:
    values = _read_varint_block(payload)
    try:
        zigzag = values[0]
        instruction = (zigzag >> 1) ^ -(zigzag & 1)
        zigzag = values[1]
        group = (zigzag >> 1) ^ -(zigzag & 1)
        total = values[2]
        flags = values[3]
        n_lmads = values[4]
        if n_lmads > len(payload):
            raise BinaryFormatError("entry frame claims more LMADs than bytes")
        index = 5
        lmads: List[List[object]] = []
        previous_start: Optional[List[int]] = None
        for __ in range(n_lmads):
            dims = values[index]
            index += 1
            if dims > 64:
                raise BinaryFormatError(f"LMAD with {dims} dimensions rejected")
            block = values[index : index + dims]
            if len(block) != dims:
                raise BinaryFormatError("truncated entry frame")
            index += dims
            if previous_start is not None and len(previous_start) == dims:
                start = [
                    anchor + ((z >> 1) ^ -(z & 1))
                    for anchor, z in zip(previous_start, block)
                ]
            else:
                start = [(z >> 1) ^ -(z & 1) for z in block]
            previous_start = start
            block = values[index : index + dims]
            if len(block) != dims:
                raise BinaryFormatError("truncated entry frame")
            index += dims
            stride = [(z >> 1) ^ -(z & 1) for z in block]
            lmads.append([start, stride, values[index]])
            index += 1
        overflow: Dict[str, object] = {
            "count": values[index],
            "min": None,
            "max": None,
            "granularity": None,
        }
        index += 1
        if flags & 2:
            dims = values[index]
            index += 1
            if dims > 64:
                raise BinaryFormatError(
                    f"overflow with {dims} dimensions rejected"
                )
            minimum: List[int] = []
            maximum: List[int] = []
            granularity: List[int] = []
            for __ in range(dims):
                zigzag = values[index]
                low = (zigzag >> 1) ^ -(zigzag & 1)
                zigzag = values[index + 1]
                span = (zigzag >> 1) ^ -(zigzag & 1)
                zigzag = values[index + 2]
                index += 3
                minimum.append(low)
                maximum.append(low + span)
                granularity.append((zigzag >> 1) ^ -(zigzag & 1))
            overflow["min"] = minimum
            overflow["max"] = maximum
            overflow["granularity"] = granularity
    except IndexError:
        raise BinaryFormatError("truncated entry frame") from None
    if index != len(values):
        raise BinaryFormatError("trailing bytes in entry frame")
    return {
        "instruction": instruction,
        "group": group,
        "total": total,
        "summarized": bool(flags & 1),
        "lmads": lmads,
        "overflow": overflow,
    }


def _encode_kinds(kinds: Dict[str, object]) -> bytes:
    """Instruction -> load/store, folded into one uvarint per row
    (``delta << 1 | is_store`` over sorted instruction ids)."""
    out = bytearray()
    try:
        rows = sorted((int(key), str(value)) for key, value in kinds.items())
    except (TypeError, ValueError) as exc:
        raise BinaryFormatError(f"non-integer instruction id: {exc}") from exc
    write_uvarint(out, len(rows))
    previous = 0
    for instruction, value in rows:
        if value == "load":
            bit = 0
        elif value == "store":
            bit = 1
        else:
            raise BinaryFormatError(f"unknown access kind {value!r}")
        delta = instruction - previous
        if delta < 0:
            raise BinaryFormatError("duplicate instruction id in kinds")
        write_uvarint(out, (delta << 1) | bit)
        previous = instruction
    return bytes(out)


def _decode_kinds(payload: bytes) -> Dict[str, str]:
    values = _read_varint_block(payload)
    if not values or len(values) != 1 + values[0]:
        raise BinaryFormatError("kinds frame row count mismatch")
    kinds: Dict[str, str] = {}
    instruction = 0
    for folded in values[1:]:
        instruction += folded >> 1
        kinds[str(instruction)] = "store" if folded & 1 else "load"
    return kinds


def _encode_counts(rows_source: Dict[str, object]) -> bytes:
    """Sorted (id, count) rows with delta-coded ids."""
    out = bytearray()
    try:
        rows = sorted((int(key), int(value)) for key, value in rows_source.items())
    except (TypeError, ValueError) as exc:
        raise BinaryFormatError(f"non-integer count row: {exc}") from exc
    write_uvarint(out, len(rows))
    previous = 0
    for key, value in rows:
        write_svarint(out, key - previous)
        previous = key
        write_uvarint(out, value)
    return bytes(out)


def _decode_counts(payload: bytes, pos: int = 0) -> Dict[str, int]:
    values = _read_varint_block(payload, pos)
    if not values or len(values) != 1 + 2 * values[0]:
        raise BinaryFormatError("counts frame row count mismatch")
    rows: Dict[str, int] = {}
    key = 0
    for index in range(1, len(values), 2):
        zigzag = values[index]
        key += (zigzag >> 1) ^ -(zigzag & 1)
        rows[str(key)] = values[index + 1]
    return rows


def _encode_conflicts(rows_source: List[List[int]]) -> bytes:
    out = bytearray()
    rows = sorted((int(s), int(l), int(c)) for s, l, c in rows_source)
    write_uvarint(out, len(rows))
    prev_store = prev_load = 0
    for store, load, count in rows:
        write_svarint(out, store - prev_store)
        write_svarint(out, load - prev_load)
        write_uvarint(out, count)
        prev_store, prev_load = store, load
    return bytes(out)


def _decode_conflicts(payload: bytes) -> List[List[int]]:
    values = _read_varint_block(payload)
    if not values or len(values) != 1 + 3 * values[0]:
        raise BinaryFormatError("conflicts frame row count mismatch")
    rows: List[List[int]] = []
    store = load = 0
    for index in range(1, len(values), 3):
        zigzag = values[index]
        store += (zigzag >> 1) ^ -(zigzag & 1)
        zigzag = values[index + 1]
        load += (zigzag >> 1) ^ -(zigzag & 1)
        rows.append([store, load, values[index + 2]])
    return rows


# -- document-level encode ----------------------------------------------------


def encode_document(document: Dict[str, object]) -> bytes:
    """Serialize a JSON-shape profile document to its binary form.

    The input is exactly what ``json.loads`` of the canonical JSON
    document yields (and what :func:`decode_document` returns):
    encode/decode round-trips the document identically, which the
    property tests drive across all three kinds.
    """
    try:
        kind = document["format"]
        if kind == "whomp":
            body = _encode_whomp(document)
        elif kind == "leap":
            body = _encode_leap(document)
        elif kind == "dependence":
            body = _encode_dependence(document)
        else:
            raise BinaryFormatError(
                f"kind {kind!r} has no binary encoding (JSON only)"
            )
    except BinaryFormatError:
        raise
    except (KeyError, IndexError, TypeError, ValueError, AttributeError) as exc:
        raise BinaryFormatError(f"malformed {document.get('format')!r} "
                                f"document: {exc}") from exc
    out = bytearray(MAGIC)
    header = bytearray()
    write_uvarint(header, BINARY_VERSION)
    write_token(header, kind)
    write_frame(out, FRAME_HEADER, bytes(header))
    out += body
    crc = zlib.crc32(out) & 0xFFFFFFFF
    write_frame(out, FRAME_END, struct.pack("<I", crc))
    return bytes(out)


def _meta_payload(document: Dict[str, object], *uvarint_keys: str) -> bytes:
    out = bytearray()
    for key in uvarint_keys:
        write_uvarint(out, int(document[key]))
    out += struct.pack("<d", float(document.get("capture_completeness", 1.0)))
    write_uvarint(out, int(document.get("quarantined", 0)))
    return bytes(out)


def _encode_whomp(document: Dict[str, object]) -> bytes:
    out = bytearray()
    write_frame(out, FRAME_META, _meta_payload(document, "access_count"))
    for name in sorted(document["grammars"]):
        write_frame(
            out, FRAME_GRAMMAR, _encode_grammar(name, document["grammars"][name])
        )
    write_frame(out, FRAME_BASES, _encode_bases(document["base_addresses"]))
    write_frame(out, FRAME_LIFETIMES, _encode_lifetimes(document["lifetimes"]))
    write_frame(out, FRAME_LABELS, _encode_labels(document["group_labels"]))
    return bytes(out)


def _encode_leap(document: Dict[str, object]) -> bytes:
    out = bytearray()
    write_frame(
        out, FRAME_META, _meta_payload(document, "access_count", "budget")
    )
    write_frame(out, FRAME_KINDS, _encode_kinds(document["kinds"]))
    write_frame(out, FRAME_EXECS, _encode_counts(document["exec_counts"]))
    for record in document["entries"]:
        write_frame(out, FRAME_ENTRY, _encode_entry(record))
    write_frame(out, FRAME_LABELS, _encode_labels(document["group_labels"]))
    write_frame(out, FRAME_LIFETIMES, _encode_lifetimes(document["lifetimes"]))
    return bytes(out)


def _encode_dependence(document: Dict[str, object]) -> bytes:
    out = bytearray()
    write_frame(out, FRAME_CONFLICTS, _encode_conflicts(document["conflicts"]))
    for which in ("load_counts", "store_counts"):
        payload = bytearray()
        write_token(payload, which)
        payload += _encode_counts(document[which])
        write_frame(out, FRAME_COUNTS, bytes(payload))
    return bytes(out)


# -- document-level decode ----------------------------------------------------


def sniff_kind(data: bytes) -> Optional[str]:
    """The document kind, from the magic and header frame alone.

    Returns None when ``data`` does not start with the binary magic
    (the caller should treat it as JSON); raises
    :class:`BinaryFormatError` when the magic is present but the header
    is unreadable.  This is the cheap gate ``sniff_format`` builds on:
    no body decode, no CRC pass.
    """
    if not data.startswith(MAGIC):
        if MAGIC.startswith(bytes(data[: len(MAGIC)])) and len(data) < len(MAGIC):
            raise BinaryFormatError("truncated binary profile magic")
        return None
    parser = FrameParser()
    parser.feed(data[len(MAGIC) : len(MAGIC) + 64])
    frame = parser.next_frame()
    if frame is None:
        raise BinaryFormatError("truncated binary profile header")
    tag, payload = frame
    if tag != FRAME_HEADER:
        raise BinaryFormatError(f"first frame has tag {tag:#x}, not header")
    version, pos = read_uvarint(payload, 0)
    if version != BINARY_VERSION:
        raise BinaryFormatError(f"unsupported binary version {version}")
    kind, __ = read_token(payload, pos)
    return kind


def _checked_frames(data: bytes) -> Tuple[str, List[Tuple[int, bytes]]]:
    """Magic + frame split + CRC verification; returns (kind, body
    frames with the header stripped)."""
    kind = sniff_kind(data)
    if kind is None:
        raise BinaryFormatError("not a binary profile (bad magic)")
    frames: List[Tuple[int, bytes]] = []
    end_payload: Optional[bytes] = None
    end_frame_start = 0
    parser = FrameParser()
    parser.feed(data[len(MAGIC) :])
    while True:
        frame_start = len(MAGIC) + parser.consumed
        frame = parser.next_frame()
        if frame is None:
            break
        tag, payload = frame
        if end_payload is not None:
            raise BinaryFormatError("frames after the END frame")
        if tag == FRAME_END:
            end_payload = payload
            end_frame_start = frame_start
        else:
            frames.append((tag, payload))
    if parser.pending:
        raise BinaryFormatError("truncated binary profile: torn trailing frame")
    if end_payload is None:
        raise BinaryFormatError("truncated binary profile: no END frame")
    if len(end_payload) != 4:
        raise BinaryFormatError("END frame CRC must be 4 bytes")
    expected = struct.unpack("<I", end_payload)[0]
    actual = zlib.crc32(data[:end_frame_start]) & 0xFFFFFFFF
    if actual != expected:
        raise BinaryFormatError(
            f"CRC mismatch: document says {expected:#010x}, "
            f"content hashes to {actual:#010x}"
        )
    if not frames or frames[0][0] != FRAME_HEADER:
        raise BinaryFormatError("missing header frame")
    return kind, frames[1:]


def decode_document(data: bytes) -> Dict[str, object]:
    """Decode binary bytes back to the JSON-shape document dict.

    Checks the magic, the header, the trailing CRC (so truncation and
    bit flips are detected), and every frame's internal consistency.
    The result is byte-for-byte equivalent to ``json.loads`` of the
    canonical JSON document -- callers run the same validators over
    both formats.
    """
    kind, frames = _checked_frames(data)
    if kind == "whomp":
        return _decode_whomp_frames(frames)
    if kind == "leap":
        return _decode_leap_frames(frames)
    if kind == "dependence":
        return _decode_dependence_frames(frames)
    raise BinaryFormatError(f"unknown binary document kind {kind!r}")


def _decode_meta(
    payload: bytes, *uvarint_keys: str
) -> Dict[str, object]:
    meta: Dict[str, object] = {}
    pos = 0
    for key in uvarint_keys:
        meta[key], pos = read_uvarint(payload, pos)
    meta["capture_completeness"], pos = _read_double(payload, pos)
    meta["quarantined"], pos = read_uvarint(payload, pos)
    if pos != len(payload):
        raise BinaryFormatError("trailing bytes in meta frame")
    return meta


def _decode_whomp_frames(frames: List[Tuple[int, bytes]]) -> Dict[str, object]:
    document: Dict[str, object] = {"format": "whomp", "version": 1}
    grammars: Dict[str, object] = {}
    seen = set()
    for tag, payload in frames:
        if tag == FRAME_META:
            document.update(_decode_meta(payload, "access_count"))
        elif tag == FRAME_GRAMMAR:
            name, grammar = _decode_grammar(payload)
            if name in grammars:
                raise BinaryFormatError(f"duplicate grammar frame {name!r}")
            grammars[name] = grammar
        elif tag == FRAME_BASES:
            document["base_addresses"] = _decode_bases(payload)
        elif tag == FRAME_LIFETIMES:
            document["lifetimes"] = _decode_lifetimes(payload)
        elif tag == FRAME_LABELS:
            document["group_labels"] = _decode_labels(payload)
        else:
            raise BinaryFormatError(f"unexpected frame {tag:#x} in WHOMP")
        seen.add(tag)
    required = {FRAME_META, FRAME_BASES, FRAME_LIFETIMES, FRAME_LABELS}
    if not required <= seen or not grammars:
        raise BinaryFormatError("WHOMP document is missing frames")
    document["grammars"] = grammars
    return document


def _decode_leap_frames(frames: List[Tuple[int, bytes]]) -> Dict[str, object]:
    document: Dict[str, object] = {"format": "leap", "version": 1}
    entries: List[Dict[str, object]] = []
    seen = set()
    for tag, payload in frames:
        if tag == FRAME_META:
            document.update(_decode_meta(payload, "access_count", "budget"))
        elif tag == FRAME_KINDS:
            document["kinds"] = _decode_kinds(payload)
        elif tag == FRAME_EXECS:
            document["exec_counts"] = _decode_counts(payload)
        elif tag == FRAME_ENTRY:
            entries.append(_decode_entry(payload))
        elif tag == FRAME_LABELS:
            document["group_labels"] = _decode_labels(payload)
        elif tag == FRAME_LIFETIMES:
            document["lifetimes"] = _decode_lifetimes(payload)
        else:
            raise BinaryFormatError(f"unexpected frame {tag:#x} in LEAP")
        seen.add(tag)
    required = {
        FRAME_META, FRAME_KINDS, FRAME_EXECS, FRAME_LABELS, FRAME_LIFETIMES
    }
    if not required <= seen:
        raise BinaryFormatError("LEAP document is missing frames")
    document["entries"] = entries
    return document


def _decode_dependence_frames(
    frames: List[Tuple[int, bytes]]
) -> Dict[str, object]:
    document: Dict[str, object] = {"format": "dependence", "version": 1}
    for tag, payload in frames:
        if tag == FRAME_CONFLICTS:
            document["conflicts"] = _decode_conflicts(payload)
        elif tag == FRAME_COUNTS:
            which, pos = read_token(payload, 0)
            if which not in ("load_counts", "store_counts"):
                raise BinaryFormatError(f"unknown counts section {which!r}")
            document[which] = _decode_counts(payload, pos)
        else:
            raise BinaryFormatError(f"unexpected frame {tag:#x} in dependence")
    for key in ("conflicts", "load_counts", "store_counts"):
        if key not in document:
            raise BinaryFormatError(f"dependence document missing {key}")
    return document


# -- fast grammar expansion ---------------------------------------------------


def expand_productions_fast(
    data: Dict[str, object],
    max_symbols: Optional[int] = None,
    fallback: Optional[Callable[..., List[object]]] = None,
) -> List[object]:
    """Bottom-up memoized expansion of serialized productions.

    The per-symbol iterative expander in :mod:`profile_io` walks one
    terminal at a time; this one expands each *rule* exactly once, in
    dependency order, concatenating already-expanded children with
    C-speed list operations -- the difference is most of BINCAP's
    decode speedup on grammar-heavy WHOMP documents.

    Safety matches the iterative expander: cycles and undefined rules
    raise, and claimed sizes are computed *before* any list is built,
    so a doubling-chain bomb is rejected from its arithmetic alone.
    Pathological-but-valid grammars whose per-rule expansions sum far
    past the output length (deep unshared chains) are delegated to
    ``fallback`` (the bounded iterative expander) instead of holding
    every intermediate list in memory.
    """
    try:
        productions = data["productions"]
        start = str(data["start"])
        if start not in productions:
            raise BinaryFormatError(f"start rule {start!r} not in productions")
        # Pass 1: dependency order via iterative DFS, with cycle check.
        order: List[str] = []
        state: Dict[str, int] = {}  # 1 = on stack, 2 = done
        stack: List[Tuple[str, int]] = [(start, 0)]
        state[start] = 1
        while stack:
            rule_id, index = stack.pop()
            rhs = productions[rule_id]
            advanced = False
            while index < len(rhs):
                tag, value = rhs[index]
                index += 1
                if tag == "R":
                    child = str(value)
                    mark = state.get(child)
                    if mark == 1:
                        raise BinaryFormatError(
                            f"grammar cycle through rule {child!r}"
                        )
                    if mark is None:
                        if child not in productions:
                            raise BinaryFormatError(
                                f"undefined rule {child!r}"
                            )
                        stack.append((rule_id, index))
                        stack.append((child, 0))
                        state[child] = 1
                        advanced = True
                        break
                elif tag != "T":
                    raise BinaryFormatError(f"bad symbol tag {tag!r}")
            if not advanced:
                state[rule_id] = 2
                order.append(rule_id)
        # Pass 2: expansion sizes from arithmetic alone (bomb gate).
        sizes: Dict[str, int] = {}
        total_work = 0
        for rule_id in order:
            size = 0
            for tag, value in productions[rule_id]:
                if tag == "T":
                    size += 1
                else:
                    size += sizes[str(value)]
                if max_symbols is not None and size > max_symbols:
                    raise BinaryFormatError(
                        f"grammar expands past the claimed "
                        f"{max_symbols} symbols"
                    )
            sizes[rule_id] = size
            total_work += size
        if (
            fallback is not None
            and max_symbols is not None
            and total_work > 8 * max_symbols + 1024
        ):
            return fallback(data, max_symbols=max_symbols)
        # Pass 3: expand bottom-up; children are always already done.
        expanded: Dict[str, List[object]] = {}
        for rule_id in order:
            out: List[object] = []
            run: List[object] = []  # consecutive terminals, batched
            for tag, value in productions[rule_id]:
                if tag == "T":
                    run.append(value)
                else:
                    if run:
                        out += run
                        run = []
                    out += expanded[str(value)]
            if run:
                out += run
            expanded[rule_id] = out
        return expanded[start]
    except BinaryFormatError:
        raise
    except (KeyError, IndexError, TypeError, ValueError, AttributeError) as exc:
        raise BinaryFormatError(f"malformed grammar: {exc}") from exc


def _expand_tagged(
    start: int, productions: Dict[int, List[int]], max_symbols: int
) -> List[int]:
    """Bottom-up expansion straight off the tagged symbol varints.

    The binary ingest hot path: no ``["T", value]`` lists are ever
    built -- refs and terminals stay single ints until the terminal is
    appended to an output list.  Same safety properties as
    :func:`expand_productions_fast` (cycle / undefined-rule / bomb
    checks before any large list exists); pathological shapes fall back
    to a one-symbol-at-a-time walk bounded by ``max_symbols``.
    """
    if start not in productions:
        raise BinaryFormatError(f"start rule {start!r} not in productions")
    # dependency order (iterative DFS) + cycle / undefined checks
    order: List[int] = []
    state: Dict[int, int] = {start: 1}  # 1 = on stack, 2 = done
    stack: List[Tuple[int, int]] = [(start, 0)]
    while stack:
        rule_id, index = stack.pop()
        rhs = productions[rule_id]
        advanced = False
        while index < len(rhs):
            tagged = rhs[index]
            index += 1
            if tagged & 1:
                child = tagged >> 1
                mark = state.get(child)
                if mark == 1:
                    raise BinaryFormatError(
                        f"grammar cycle through rule {child!r}"
                    )
                if mark is None:
                    if child not in productions:
                        raise BinaryFormatError(f"undefined rule {child!r}")
                    stack.append((rule_id, index))
                    stack.append((child, 0))
                    state[child] = 1
                    advanced = True
                    break
        if not advanced:
            state[rule_id] = 2
            order.append(rule_id)
    # claimed sizes from arithmetic alone (expansion-bomb gate)
    sizes: Dict[int, int] = {}
    total_work = 0
    for rule_id in order:
        size = 0
        for tagged in productions[rule_id]:
            size += sizes[tagged >> 1] if tagged & 1 else 1
            if size > max_symbols:
                raise BinaryFormatError(
                    f"grammar expands past the claimed {max_symbols} symbols"
                )
        sizes[rule_id] = size
        total_work += size
    if total_work > 8 * max_symbols + 1024:
        return _expand_tagged_iterative(start, productions, max_symbols)
    expanded: Dict[int, List[int]] = {}
    for rule_id in order:
        out: List[int] = []
        append = out.append
        for tagged in productions[rule_id]:
            if tagged & 1:
                out += expanded[tagged >> 1]
            else:
                zigzag = tagged >> 1
                append((zigzag >> 1) ^ -(zigzag & 1))
        expanded[rule_id] = out
    return expanded[start]


def _expand_tagged_iterative(
    start: int, productions: Dict[int, List[int]], max_symbols: int
) -> List[int]:
    """Memory-bounded fallback: one terminal at a time, peak memory
    proportional to the output, never to intermediate rule expansions.
    Cycles/undefined rules were already rejected by the caller's DFS."""
    out: List[int] = []
    append = out.append
    stack: List[List[int]] = [[start, 0]]
    while stack:
        frame = stack[-1]
        rhs = productions[frame[0]]
        index = frame[1]
        if index >= len(rhs):
            stack.pop()
            continue
        frame[1] = index + 1
        tagged = rhs[index]
        if tagged & 1:
            stack.append([tagged >> 1, 0])
        else:
            if len(out) >= max_symbols:
                raise BinaryFormatError(
                    f"grammar expands past the claimed {max_symbols} symbols"
                )
            zigzag = tagged >> 1
            append((zigzag >> 1) ^ -(zigzag & 1))
    return out


def decode_whomp_streams(
    data: bytes, dimensions: Tuple[str, ...]
) -> Dict[str, object]:
    """Decode binary WHOMP bytes directly to the loader's stream dict.

    The fast twin of ``decode_document`` + the document-level WHOMP
    decoder: grammar frames expand from their tagged form without ever
    materializing the JSON document, which is what makes binary ingest
    faster than JSON, not merely smaller.  The result and the checks
    match ``profile_io.load_whomp_streams`` exactly -- required
    ``dimensions`` present, every stream exactly ``access_count`` long.
    """
    kind, frames = _checked_frames(data)
    if kind != "whomp":
        raise BinaryFormatError(f"expected a WHOMP document, got {kind!r}")
    meta: Optional[Dict[str, object]] = None
    grammars: Dict[str, Tuple[int, Dict[int, List[int]]]] = {}
    base_addresses: Optional[Dict[Tuple[int, int], int]] = None
    lifetimes: Optional[List[Tuple[object, ...]]] = None
    labels: Optional[Dict[str, str]] = None
    for tag, payload in frames:
        if tag == FRAME_GRAMMAR:
            name, start, productions = _decode_grammar_tagged(payload)
            if name in grammars:
                raise BinaryFormatError(f"duplicate grammar frame {name!r}")
            grammars[name] = (start, productions)
        elif tag == FRAME_META:
            meta = _decode_meta(payload, "access_count")
        elif tag == FRAME_BASES:
            base_addresses = {
                (group, serial): address
                for group, serial, address in _decode_bases(payload)
            }
        elif tag == FRAME_LIFETIMES:
            lifetimes = [tuple(row) for row in _decode_lifetimes(payload)]
        elif tag == FRAME_LABELS:
            labels = _decode_labels(payload)
        else:
            raise BinaryFormatError(f"unexpected frame {tag:#x} in WHOMP")
    if (
        meta is None
        or base_addresses is None
        or lifetimes is None
        or labels is None
        or not grammars
    ):
        raise BinaryFormatError("WHOMP document is missing frames")
    access_count = meta["access_count"]
    streams = {
        name: _expand_tagged(start, productions, access_count)
        for name, (start, productions) in grammars.items()
    }
    missing = [name for name in dimensions if name not in streams]
    if missing:
        raise BinaryFormatError(f"missing dimension streams: {missing}")
    for name, values in streams.items():
        if len(values) != access_count:
            raise BinaryFormatError(
                f"{name} stream has {len(values)} symbols, "
                f"expected {access_count}"
            )
    return {
        "streams": streams,
        "base_addresses": base_addresses,
        "lifetimes": lifetimes,
        "group_labels": {int(k): v for k, v in labels.items()},
        "access_count": access_count,
        "capture_completeness": meta["capture_completeness"],
        "quarantined": meta["quarantined"],
    }


# -- stream protocol ----------------------------------------------------------


class StreamWriter:
    """Emit a multi-document stream over any byte sink.

    ``sink`` is a callable taking bytes (``socket.sendall``, a file's
    ``write``, an HTTP chunk queue).  Documents are format-agnostic at
    this layer -- JSON or binary bytes travel the same CHUNK frames --
    and every document closes with its length and CRC32 so the reader
    verifies reassembly before ingesting anything.
    """

    def __init__(self, sink: Callable[[bytes], object]) -> None:
        self._sink = sink
        self.documents = 0
        self._began = False

    def begin(self) -> None:
        out = bytearray()
        payload = bytearray()
        write_uvarint(payload, STREAM_VERSION)
        write_frame(out, FRAME_STREAM_BEGIN, bytes(payload))
        self._sink(bytes(out))
        self._began = True

    def send_document(
        self,
        workload: str,
        data: bytes,
        meta: Optional[Dict[str, object]] = None,
        chunk_size: int = 1 << 16,
    ) -> None:
        """Stream one complete document as BEGIN + CHUNK* + END."""
        if not self._began:
            self.begin()
        head = bytearray()
        payload = bytearray()
        write_token(payload, workload)
        write_token(
            payload, json.dumps(meta, sort_keys=True) if meta else ""
        )
        write_frame(head, FRAME_DOC_BEGIN, bytes(payload))
        self._sink(bytes(head))
        for offset in range(0, len(data), chunk_size):
            chunk = data[offset : offset + chunk_size]
            framed = bytearray()
            write_frame(framed, FRAME_CHUNK, chunk)
            self._sink(bytes(framed))
        tail = bytearray()
        end = bytearray()
        write_uvarint(end, len(data))
        end += struct.pack("<I", zlib.crc32(data) & 0xFFFFFFFF)
        write_frame(tail, FRAME_DOC_END, bytes(end))
        self._sink(bytes(tail))
        self.documents += 1

    def close(self) -> None:
        """Terminate the stream with the document count."""
        if not self._began:
            self.begin()
        out = bytearray()
        payload = bytearray()
        write_uvarint(payload, self.documents)
        write_frame(out, FRAME_STREAM_END, bytes(payload))
        self._sink(bytes(out))


class StreamReader:
    """Assemble documents from stream bytes as they arrive.

    Feed raw bytes with :meth:`feed`; it returns the events completed
    by that feed, each one of::

        ("doc", workload, meta_dict, document_bytes)   verified document
        ("torn", workload, reason)                     CRC/length mismatch
        ("end", document_count)                        clean STREAM_END

    A producer dying mid-document surfaces through :meth:`summary`
    after the connection closes: completed documents stay completed,
    the partial tail is reported (never delivered), and
    ``capture_completeness`` quantifies the damage for the degraded
    ingest record.
    """

    def __init__(self, max_document_bytes: int = 1 << 30) -> None:
        self._parser = FrameParser()
        self.max_document_bytes = max_document_bytes
        self._workload: Optional[str] = None
        self._meta: Dict[str, object] = {}
        self._chunks: List[bytes] = []
        self._size = 0
        self.documents = 0
        self.torn = 0
        self.ended: Optional[int] = None
        self.version: Optional[int] = None

    def feed(self, data: bytes) -> List[Tuple[object, ...]]:
        self._parser.feed(data)
        events: List[Tuple[object, ...]] = []
        while True:
            frame = self._parser.next_frame()
            if frame is None:
                return events
            tag, payload = frame
            if self.ended is not None:
                raise BinaryFormatError("frames after STREAM_END")
            if tag == FRAME_STREAM_BEGIN:
                self.version, __ = read_uvarint(payload, 0)
                if self.version != STREAM_VERSION:
                    raise BinaryFormatError(
                        f"unsupported stream version {self.version}"
                    )
            elif tag == FRAME_DOC_BEGIN:
                if self._workload is not None:
                    # previous document never closed: torn by protocol
                    events.append(
                        ("torn", self._workload, "document never closed")
                    )
                    self.torn += 1
                workload, pos = read_token(payload, 0)
                meta_text, __ = read_token(payload, pos)
                meta: Dict[str, object] = {}
                if meta_text:
                    try:
                        decoded = json.loads(meta_text)
                        if isinstance(decoded, dict):
                            meta = decoded
                    except ValueError:
                        pass  # meta is advisory; never fail a doc on it
                self._workload = workload
                self._meta = meta
                self._chunks = []
                self._size = 0
            elif tag == FRAME_CHUNK:
                if self._workload is None:
                    raise BinaryFormatError("CHUNK frame outside a document")
                self._size += len(payload)
                if self._size > self.max_document_bytes:
                    raise BinaryFormatError(
                        f"streamed document exceeds "
                        f"{self.max_document_bytes} bytes"
                    )
                self._chunks.append(payload)
            elif tag == FRAME_DOC_END:
                if self._workload is None:
                    raise BinaryFormatError("DOC_END frame outside a document")
                claimed, pos = read_uvarint(payload, 0)
                crc_raw = payload[pos : pos + 4]
                if len(crc_raw) != 4:
                    raise BinaryFormatError("DOC_END missing CRC")
                blob = b"".join(self._chunks)
                workload = self._workload
                self._workload, self._chunks, self._size = None, [], 0
                if len(blob) != claimed:
                    events.append(
                        (
                            "torn",
                            workload,
                            f"reassembled {len(blob)} bytes, "
                            f"producer claimed {claimed}",
                        )
                    )
                    self.torn += 1
                elif zlib.crc32(blob) & 0xFFFFFFFF != struct.unpack(
                    "<I", crc_raw
                )[0]:
                    events.append(("torn", workload, "document CRC mismatch"))
                    self.torn += 1
                else:
                    self.documents += 1
                    events.append(("doc", workload, self._meta, blob))
                self._meta = {}
            elif tag == FRAME_STREAM_END:
                count, __ = read_uvarint(payload, 0)
                if self._workload is not None:
                    events.append(
                        ("torn", self._workload, "stream ended mid-document")
                    )
                    self.torn += 1
                    self._workload, self._chunks, self._size = None, [], 0
                self.ended = count
                events.append(("end", count))
            else:
                raise BinaryFormatError(
                    f"unexpected stream frame tag {tag:#x}"
                )

    @property
    def in_document(self) -> bool:
        """True while a document's frames are still arriving."""
        return self._workload is not None

    def summary(self) -> Dict[str, object]:
        """Close-of-connection verdict for the ingest record.

        ``complete`` means the producer said goodbye (STREAM_END), its
        document count matches, nothing tore, and no bytes trail.
        ``capture_completeness`` is delivered / expected documents --
        the same degraded-mode vocabulary profiles use.
        """
        torn_tail = self.in_document or self._parser.pending > 0
        expected = self.documents + self.torn + (1 if torn_tail else 0)
        if self.ended is not None:
            expected = max(expected, self.ended)
        complete = (
            self.ended is not None
            and not torn_tail
            and self.torn == 0
            and self.documents == self.ended
        )
        return {
            "complete": complete,
            "documents": self.documents,
            "torn": self.torn + (1 if torn_tail else 0),
            "capture_completeness": (
                1.0 if expected == 0 else self.documents / expected
            ),
        }
