"""Speculative load reordering decisions from the MDF profile.

The first target application of LEAP (Section 4): "Speculative load
reordering ... speculatively schedules a load instruction ahead of a
preceding store...  This reordering is beneficial only if the load is
independent of the store or is dependent with a low frequency, because
of the relatively high recovery overhead.  Hence this optimization
requires a very good estimate of dependence frequencies."

This module makes the compiler's call: for every (store, load) pair, a
profile-driven scheduler speculates when the pair's MDF is below a
recovery-cost threshold.  Decision quality is measured the way the
paper's citation of Chen frames it -- by agreement with the decisions
an oracle (the lossless ground truth) would make, and by the expected
cost of the chosen schedule under a simple recovery-penalty model.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, Set, Tuple

from repro.baselines.dependence_lossless import DependenceProfile

Pair = Tuple[int, int]

#: Speculate when the estimated dependence frequency is below this; the
#: classic rule of thumb for recovery costs around 20-30 cycles.
DEFAULT_THRESHOLD = 0.05

#: Cycles saved per successfully hoisted load, and paid per mis-
#: speculation recovery, in the expected-cost model.
HOIST_BENEFIT = 2.0
RECOVERY_PENALTY = 30.0


class Decision(enum.Enum):
    """A scheduler's call for one (store, load) pair."""

    SPECULATE = "speculate"
    KEEP_ORDER = "keep-order"


@dataclass(frozen=True)
class SpeculationPlan:
    """Per-pair scheduling decisions for a set of candidate pairs."""

    decisions: Dict[Pair, Decision]
    threshold: float

    def speculated(self) -> Set[Pair]:
        return {
            pair
            for pair, decision in self.decisions.items()
            if decision is Decision.SPECULATE
        }


def plan(
    profile: DependenceProfile,
    candidates: Iterable[Pair],
    threshold: float = DEFAULT_THRESHOLD,
) -> SpeculationPlan:
    """Decide each candidate pair from the profile's frequencies.

    ``candidates`` is the set of (store, load) pairs the scheduler is
    considering reordering -- typically every pair whose instructions
    are adjacent enough to matter; experiments use all pairs observed
    executing.
    """
    decisions = {
        pair: (
            Decision.SPECULATE
            if profile.frequency(*pair) < threshold
            else Decision.KEEP_ORDER
        )
        for pair in candidates
    }
    return SpeculationPlan(decisions, threshold)


@dataclass
class DecisionQuality:
    """Agreement of a profile-driven plan with the oracle plan."""

    agreements: int
    disagreements: int
    #: speculated although the true frequency was above threshold:
    #: pays recovery penalties (the expensive mistake)
    unsafe_speculations: int
    #: kept order although speculation was safe: missed benefit
    missed_speculations: int

    @property
    def total(self) -> int:
        return self.agreements + self.disagreements

    @property
    def agreement_rate(self) -> float:
        if not self.total:
            return 1.0
        return self.agreements / self.total


def compare_plans(
    estimated: SpeculationPlan, oracle: SpeculationPlan
) -> DecisionQuality:
    """Pairwise decision agreement between two plans over the same
    candidate set."""
    agreements = disagreements = unsafe = missed = 0
    for pair, decision in estimated.decisions.items():
        oracle_decision = oracle.decisions.get(pair)
        if oracle_decision is None:
            continue
        if decision is oracle_decision:
            agreements += 1
        else:
            disagreements += 1
            if decision is Decision.SPECULATE:
                unsafe += 1
            else:
                missed += 1
    return DecisionQuality(agreements, disagreements, unsafe, missed)


def expected_cost(
    decisions: SpeculationPlan, truth: DependenceProfile
) -> float:
    """Expected cycles per scheduled pair under the true frequencies.

    Speculating a pair with true frequency f costs
    ``f * RECOVERY_PENALTY - (1 - f) * HOIST_BENEFIT`` per load
    execution; keeping order costs 0.  Lower is better, negative is a
    net win.
    """
    total = 0.0
    for pair, decision in decisions.decisions.items():
        if decision is Decision.SPECULATE:
            frequency = truth.frequency(*pair)
            total += frequency * RECOVERY_PENALTY - (1 - frequency) * HOIST_BENEFIT
    return total


def evaluate(
    estimated_profile: DependenceProfile,
    truth_profile: DependenceProfile,
    threshold: float = DEFAULT_THRESHOLD,
) -> Tuple[DecisionQuality, float, float]:
    """Full evaluation: (decision quality, profile-driven expected cost,
    oracle expected cost) over every executed (store, load) pair."""
    candidates = [
        (store, load)
        for store in truth_profile.store_counts
        for load in truth_profile.load_counts
    ]
    estimated_plan = plan(estimated_profile, candidates, threshold)
    oracle_plan = plan(truth_profile, candidates, threshold)
    quality = compare_plans(estimated_plan, oracle_plan)
    return (
        quality,
        expected_cost(estimated_plan, truth_profile),
        expected_cost(oracle_plan, truth_profile),
    )
