"""Metric primitives and the named-metric registry.

The telemetry registry is the pipeline's flight recorder: every stage
registers the counters, gauges, and histograms it wants to expose under
a dotted name (``probe.accesses``, ``whomp.grammar_rules``), and the
exporters in :mod:`repro.telemetry.export` render the whole registry in
one pass.  Three metric kinds cover everything the profilers need:

* :class:`Counter` -- monotonically increasing event count
  (accesses fired, symbols discarded);
* :class:`Gauge` -- a point-in-time value that can move both ways
  (live footprint bytes, capture rate);
* :class:`Histogram` -- a bucketed distribution with sum/min/max
  (allocation sizes, LMADs per entry).

Everything is dependency-free and single-threaded by design: the
profilers are synchronous pipelines, so metrics are plain Python
attributes with no locking on the hot path.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union


class Counter:
    """A monotonically increasing count of events."""

    __slots__ = ("name", "help", "_value")

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        self._value += amount

    @property
    def value(self) -> int:
        return self._value

    def __repr__(self) -> str:
        return f"Counter({self.name}={self._value})"


class Gauge:
    """A point-in-time value; may rise and fall."""

    __slots__ = ("name", "help", "_value")

    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._value: Union[int, float] = 0

    def set(self, value: Union[int, float]) -> None:
        self._value = value

    def add(self, delta: Union[int, float]) -> None:
        self._value += delta

    def set_max(self, value: Union[int, float]) -> None:
        """Keep the running maximum (peak tracking)."""
        if value > self._value:
            self._value = value

    @property
    def value(self) -> Union[int, float]:
        return self._value

    def __repr__(self) -> str:
        return f"Gauge({self.name}={self._value})"


#: Default histogram bucket upper bounds: powers of two spanning one
#: byte to one MiB, a good fit for sizes and per-entry counts alike.
DEFAULT_BUCKETS: Tuple[float, ...] = tuple(2.0 ** p for p in range(0, 21, 2))


class Histogram:
    """A cumulative-bucket distribution (Prometheus histogram semantics).

    ``bounds`` are the inclusive upper edges of the finite buckets; an
    implicit ``+Inf`` bucket catches the rest.  Count, sum, min, and max
    are tracked exactly regardless of bucketing.
    """

    __slots__ = ("name", "help", "bounds", "bucket_counts", "count", "sum",
                 "minimum", "maximum")

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        bounds: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        self.name = name
        self.help = help
        self.bounds: Tuple[float, ...] = tuple(sorted(bounds))
        self.bucket_counts: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum: float = 0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None

    def observe(self, value: Union[int, float]) -> None:
        self.count += 1
        self.sum += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[index] += 1
                return
        self.bucket_counts[-1] += 1

    def cumulative_buckets(self) -> List[Tuple[float, int]]:
        """(upper_bound, cumulative count) pairs, ending with +Inf."""
        out: List[Tuple[float, int]] = []
        running = 0
        for bound, count in zip(self.bounds, self.bucket_counts):
            running += count
            out.append((bound, running))
        out.append((float("inf"), self.count))
        return out

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def __repr__(self) -> str:
        return f"Histogram({self.name}: n={self.count} sum={self.sum})"


Metric = Union[Counter, Gauge, Histogram]


class Registry:  # repro: synchronized-externally
    """Named metrics, created on first use and shared thereafter.

    ``registry.counter("probe.accesses")`` returns the same object on
    every call, so pipeline stages can be instrumented independently
    without plumbing metric objects around.  Requesting an existing name
    as a different kind is a programming error and raises.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}

    def _get_or_create(self, cls, name: str, help: str, **kwargs) -> Metric:
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{existing.kind}, requested {cls.kind}"
                )
            return existing
        metric = cls(name, help=help, **kwargs)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)

    def histogram(
        self, name: str, help: str = "", bounds: Sequence[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help, bounds=bounds)

    # -- introspection -------------------------------------------------

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __iter__(self) -> Iterator[Metric]:
        """Metrics in sorted-name order (stable export output)."""
        return iter(sorted(self._metrics.values(), key=lambda m: m.name))

    def get(self, name: str) -> Optional[Metric]:
        return self._metrics.get(name)

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def value(self, name: str) -> Union[int, float, None]:
        """Shortcut: the current value of a counter or gauge."""
        metric = self._metrics.get(name)
        if metric is None or isinstance(metric, Histogram):
            return None
        return metric.value
