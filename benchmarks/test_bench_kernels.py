"""Micro-benchmarks of the core computational kernels.

Not a paper figure: these track the throughput of the pieces everything
else is built on (Sequitur, the LMAD compressor, the OMC's B-tree
translation path, the omega-test solver), so performance regressions
are visible independently of the workload suite.
"""

import random

from repro.analysis.omega import intersect_lmads
from repro.compression.lmad import LMAD, LMADCompressor
from repro.compression.sequitur import SequiturGrammar
from repro.core.interval_index import IntervalIndex
from repro.core.omc import ObjectManager


def test_sequitur_periodic_throughput(benchmark):
    tokens = [0, 4, 8, 12, 16] * 8000  # 40k tokens, heavily compressible

    def run():
        grammar = SequiturGrammar()
        grammar.feed_all(tokens)
        return grammar

    grammar = benchmark.pedantic(run, rounds=3, iterations=1)
    assert grammar.size() < 100


def test_sequitur_random_throughput(benchmark):
    rng = random.Random(0)
    tokens = [rng.randint(0, 30) for __ in range(40_000)]

    def run():
        grammar = SequiturGrammar()
        grammar.feed_all(tokens)
        return grammar

    grammar = benchmark.pedantic(run, rounds=3, iterations=1)
    assert grammar.expand() == tokens


def test_lmad_compressor_throughput(benchmark):
    symbols = [(0, i * 8, i * 4) for i in range(50_000)]

    def run():
        compressor = LMADCompressor(dims=3)
        compressor.feed_all(symbols)
        return compressor.finish()

    entry = benchmark.pedantic(run, rounds=3, iterations=1)
    assert entry.complete


def test_omc_translation_throughput(benchmark):
    """Allocate 2000 objects, translate 50k addresses through the
    B-tree index."""
    rng = random.Random(1)
    omc = ObjectManager()
    bases = []
    for index in range(2000):
        base = 0x100000 + index * 128
        omc.on_alloc(base, 96, f"site{index % 7}", None, index)
        bases.append(base)
    probes = [rng.choice(bases) + rng.randrange(96) for __ in range(50_000)]

    def run():
        hits = 0
        for address in probes:
            if omc.translate(address) is not None:
                hits += 1
        return hits

    hits = benchmark.pedantic(run, rounds=3, iterations=1)
    assert hits == len(probes)


def test_interval_index_churn_throughput(benchmark):
    """Insert/remove churn mimicking malloc/free traffic."""

    def run():
        index = IntervalIndex()
        live = []
        rng = random.Random(2)
        for step in range(20_000):
            if live and rng.random() < 0.5:
                start = live.pop(rng.randrange(len(live)))
                index.remove(start)
            else:
                start = step * 64
                index.insert(start, start + 48, step)
                live.append(start)
        return len(index)

    benchmark.pedantic(run, rounds=3, iterations=1)


def test_omega_solver_throughput(benchmark):
    """10k LMAD-pair intersections (the MDF inner loop)."""
    rng = random.Random(3)
    pairs = []
    for __ in range(10_000):
        writer = LMAD(
            (rng.randrange(4), rng.randrange(0, 512, 8), 100),
            (0, 8, rng.randrange(1, 5)),
            rng.randrange(1, 200),
        )
        reader = LMAD(
            (rng.randrange(4), rng.randrange(0, 512, 8), 150),
            (0, 8, rng.randrange(1, 5)),
            rng.randrange(1, 200),
        )
        pairs.append((writer, reader))

    def run():
        total = 0
        for writer, reader in pairs:
            solution = intersect_lmads(writer, reader, (0, 1), time_dim=2)
            total += solution.distinct_k2()
        return total

    benchmark.pedantic(run, rounds=3, iterations=1)
