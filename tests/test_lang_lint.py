"""Tests for the MIRCHECK linter: every code, both polarities, plus
suppressions and the bundled example programs."""

import os

import pytest

from repro.lang import LangError, parse
from repro.lang.analysis import lint_source

EXAMPLES = os.path.join(
    os.path.dirname(__file__), os.pardir, "examples", "programs"
)


def codes(source):
    return sorted({d.code for d in lint_source(source)})


def by_code(source, code):
    return [d for d in lint_source(source) if d.code == code]


class TestUninitialized:
    def test_maybe_uninitialized_on_one_path(self):
        found = by_code(
            """
            fn main(): int {
              var u: int;
              var v: int = 1;
              if (v > 0) { u = 2; }
              return u;
            }
            """,
            "MIR101",
        )
        assert len(found) == 1
        assert found[0].line == 6
        assert "may be" in found[0].message

    def test_definitely_uninitialized(self):
        found = by_code(
            "fn main(): int { var u: int; return u; }", "MIR101"
        )
        assert len(found) == 1
        assert "is" in found[0].message

    def test_initialized_on_all_paths_clean(self):
        assert not by_code(
            """
            fn main(): int {
              var u: int;
              var v: int = 1;
              if (v > 0) { u = 2; } else { u = 3; }
              return u;
            }
            """,
            "MIR101",
        )


class TestHeapCodes:
    def test_use_after_delete(self):
        found = by_code(
            """
            fn main(): int {
              var a: int* = new int[4];
              delete a;
              return a[0];
            }
            """,
            "MIR102",
        )
        assert len(found) == 1 and found[0].line == 5

    def test_use_after_delete_on_some_path_qualified(self):
        found = by_code(
            """
            fn main(): int {
              var a: int* = new int[4];
              var c: int = 1;
              if (c > 0) { delete a; }
              return a[0];
            }
            """,
            "MIR102",
        )
        assert len(found) == 1
        assert "some path" in found[0].message

    def test_double_delete(self):
        found = by_code(
            """
            fn main(): int {
              var a: int* = new int[4];
              delete a;
              delete a;
              return 0;
            }
            """,
            "MIR103",
        )
        assert len(found) == 1 and found[0].line == 5

    def test_leak_reported_at_allocation(self):
        found = by_code(
            """
            fn main(): int {
              var a: int* = new int[4];
              return 0;
            }
            """,
            "MIR104",
        )
        assert len(found) == 1 and found[0].line == 3

    def test_no_leak_when_deleted(self):
        assert not by_code(
            """
            fn main(): int {
              var a: int* = new int[4];
              delete a;
              return 0;
            }
            """,
            "MIR104",
        )

    def test_no_leak_when_escaping_via_return(self):
        assert not by_code(
            """
            fn make(): int* { return new int[4]; }
            fn main(): int {
              var a: int* = make();
              delete a;
              return 0;
            }
            """,
            "MIR104",
        )

    def test_no_leak_when_stored_to_global(self):
        assert not by_code(
            """
            global int* keep;
            fn main(): int {
              keep = new int[4];
              return 0;
            }
            """,
            "MIR104",
        )


class TestFlowCodes:
    def test_constant_index_out_of_bounds(self):
        found = by_code(
            """
            fn main(): int {
              var a: int* = new int[4];
              a[7] = 1;
              delete a;
              return 0;
            }
            """,
            "MIR105",
        )
        assert len(found) == 1 and found[0].line == 4

    def test_in_bounds_constant_index_clean(self):
        assert not by_code(
            """
            fn main(): int {
              var a: int* = new int[4];
              a[3] = 1;
              delete a;
              return 0;
            }
            """,
            "MIR105",
        )

    def test_dead_store(self):
        found = by_code(
            """
            fn main(): int {
              var x: int = 1;
              x = 2;
              x = 3;
              return x;
            }
            """,
            "MIR106",
        )
        assert [d.line for d in found] == [4]

    def test_store_with_call_rhs_not_dead(self):
        # a call may have side effects; silencing the store would hide them
        assert not by_code(
            """
            fn f(): int { return 1; }
            fn main(): int {
              var x: int = 0;
              x = f();
              return 0;
            }
            """,
            "MIR106",
        )

    def test_unreachable_code(self):
        found = by_code(
            """
            fn main(): int {
              return 1;
              var x: int = 2;
            }
            """,
            "MIR107",
        )
        assert len(found) == 1 and found[0].line == 4

    def test_missing_return(self):
        found = by_code(
            """
            fn f(limit: int): int {
              if (limit > 0) { return limit; }
            }
            fn main(): int { return f(1); }
            """,
            "MIR108",
        )
        assert len(found) == 1
        assert found[0].function == "f"

    def test_void_function_needs_no_return(self):
        assert not by_code(
            """
            fn poke() { var x: int = 1; }
            fn main(): int { poke(); return 0; }
            """,
            "MIR108",
        )


class TestSuppression:
    SOURCE = """
    fn main(): int {
      var a: int* = new int[4];   // mir: allow(MIR104)
      return 0;
    }
    """

    def test_allow_comment_silences_code(self):
        assert not by_code(self.SOURCE, "MIR104")

    def test_allow_all_wildcard(self):
        assert not codes(
            """
            fn main(): int {
              var a: int* = new int[4];   // mir: allow(all)
              return 0;
            }
            """
        )

    def test_allow_is_line_scoped(self):
        found = by_code(
            """
            fn main(): int {
              var a: int* = new int[4];   // mir: allow(MIR102)
              return 0;
            }
            """,
            "MIR104",
        )
        assert len(found) == 1  # wrong code listed: not suppressed


class TestBundledExamples:
    @pytest.mark.parametrize(
        "name", ["matrix.mir", "binary_tree.mir", "linked_list.mir"]
    )
    def test_clean(self, name):
        with open(os.path.join(EXAMPLES, name)) as handle:
            source = handle.read()
        assert lint_source(source) == []

    @pytest.mark.parametrize(
        "name,expected",
        [
            ("defects_heap.mir", {"MIR102", "MIR103", "MIR104"}),
            (
                "defects_flow.mir",
                {"MIR101", "MIR105", "MIR106", "MIR107", "MIR108"},
            ),
        ],
    )
    def test_defect_fixtures(self, name, expected):
        with open(os.path.join(EXAMPLES, name)) as handle:
            source = handle.read()
        assert {d.code for d in lint_source(source)} == expected

    def test_parse_error_propagates(self):
        with pytest.raises(LangError):
            lint_source("fn main(): int { return 1 +; }")
