"""Tests for horizontal and vertical decomposition."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.decomposition import (
    horizontal,
    project,
    recombine,
    vertical,
    vertical_by_instruction_group,
)
from repro.core.events import AccessKind
from repro.core.tuples import DIMENSIONS, ObjectRelativeAccess


def make_access(i, g, o, f, t):
    return ObjectRelativeAccess(i, g, o, f, t, 8, AccessKind.LOAD)


SAMPLE = [
    make_access(0, 0, 0, 0, 0),
    make_access(1, 0, 0, 16, 1),
    make_access(0, 0, 1, 0, 2),
    make_access(1, 0, 1, 16, 3),
    make_access(2, 1, 0, 8, 4),
]


class TestHorizontal:
    def test_default_dimensions(self):
        streams = horizontal(SAMPLE)
        assert set(streams) == set(DIMENSIONS)
        assert streams["instruction"] == [0, 1, 0, 1, 2]
        assert streams["group"] == [0, 0, 0, 0, 1]
        assert streams["object"] == [0, 0, 1, 1, 0]
        assert streams["offset"] == [0, 16, 0, 16, 8]

    def test_subset_of_dimensions(self):
        streams = horizontal(SAMPLE, dimensions=("offset",))
        assert list(streams) == ["offset"]

    def test_streams_have_equal_length(self):
        streams = horizontal(SAMPLE)
        lengths = {len(s) for s in streams.values()}
        assert lengths == {len(SAMPLE)}

    def test_empty_stream(self):
        streams = horizontal([])
        assert all(s == [] for s in streams.values())


class TestVertical:
    def test_partition_by_instruction(self):
        parts = vertical(SAMPLE, "instruction")
        assert set(parts) == {0, 1, 2}
        assert [a.time for a in parts[0]] == [0, 2]
        assert [a.time for a in parts[1]] == [1, 3]

    def test_partition_by_group(self):
        parts = vertical(SAMPLE, "group")
        assert len(parts[0]) == 4
        assert len(parts[1]) == 1

    def test_partitions_preserve_order(self):
        parts = vertical(SAMPLE, "object")
        for sub in parts.values():
            times = [a.time for a in sub]
            assert times == sorted(times)

    def test_by_instruction_group(self):
        parts = vertical_by_instruction_group(SAMPLE)
        assert set(parts) == {(0, 0), (1, 0), (2, 1)}
        assert len(parts[(0, 0)]) == 2


class TestRecombine:
    def test_inverts_vertical(self):
        parts = vertical(SAMPLE, "instruction")
        assert recombine(parts.values()) == SAMPLE

    def test_inverts_nested_vertical(self):
        parts = vertical_by_instruction_group(SAMPLE)
        assert recombine(parts.values()) == SAMPLE


class TestProject:
    def test_triples(self):
        triples = project(SAMPLE, ("object", "offset", "time"))
        assert triples[0] == (0, 0, 0)
        assert triples[-1] == (0, 8, 4)


@settings(max_examples=100, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(0, 5),
            st.integers(0, 3),
            st.integers(0, 4),
            st.integers(0, 64),
        ),
        max_size=60,
    ),
    st.sampled_from(DIMENSIONS),
)
def test_vertical_recombine_roundtrip(rows, dimension):
    """Vertical decomposition by any dimension is invertible via the
    time-stamp tag (the paper's reason for adding time)."""
    stream = [make_access(i, g, o, f, t) for t, (i, g, o, f) in enumerate(rows)]
    parts = vertical(stream, dimension)
    assert recombine(parts.values()) == stream
    # horizontal streams agree with per-tuple dimensions
    streams = horizontal(stream)
    for index, access in enumerate(stream):
        for name in DIMENSIONS:
            assert streams[name][index] == access.dimension(name)
