"""LEAP -- the Loss-Enhanced Access Profiler (Section 4).

LEAP trades completeness for compactness: the object-relative stream is
decomposed vertically by instruction-id and group, and each
``(object, offset, time)`` sub-stream is compressed into at most
*budget* (default 30) LMADs.  Streams too irregular for the budget are
sampled: descriptors keep the initial linear runs and the rest collapses
into min/max/granularity summaries.

The profile is indexed by load and store instructions, ready for the two
post-processors the paper targets: memory-dependence frequency
(:mod:`repro.postprocess.dependence`) and stride patterns
(:mod:`repro.postprocess.strides`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.compression.lmad import DEFAULT_BUDGET, LMADProfileEntry
from repro.core.cdc import OnlineCDC, translate_trace
from repro.core.events import AccessKind, Trace
from repro.core.omc import ObjectManager
from repro.core.scc import VerticalLMADSCC
from repro.telemetry.spans import Telemetry, coalesce

#: bytes per serialized LMAD record: 3-d start + 3-d stride at 8 bytes
#: each, plus an 8-byte count.
LMAD_RECORD_BYTES = 7 * 8

#: bytes per entry header (instruction id, group id, totals) and per
#: overflow summary record.
ENTRY_HEADER_BYTES = 4 * 8
SUMMARY_RECORD_BYTES = 7 * 8


@dataclass
class LeapProfile:
    """LEAP's output: LMAD entries keyed by (instruction-id, group)."""

    entries: Dict[Tuple[int, int], LMADProfileEntry]
    #: instruction id -> load/store kind
    kinds: Dict[int, AccessKind]
    #: instruction id -> total dynamic executions (exact; kept as a
    #: plain counter even for lossy entries)
    exec_counts: Dict[int, int]
    #: group id -> human-readable label
    group_labels: Dict[int, str]
    #: total accesses profiled
    access_count: int
    #: descriptor budget the profile was collected with
    budget: int = DEFAULT_BUDGET
    #: (group, serial, alloc_time, free_time, size) auxiliary rows
    lifetimes: List[Tuple[int, int, int, Optional[int], int]] = field(
        default_factory=list
    )
    #: kept / (kept + quarantined); 1.0 outside degraded mode
    capture_completeness: float = 1.0
    #: tuples diverted to the quarantine sidecar instead of the entries
    quarantined: int = 0

    # -- indexing ------------------------------------------------------

    def instructions(self) -> List[int]:
        return sorted(self.exec_counts)

    def loads(self) -> List[int]:
        return [i for i in self.instructions() if self.kinds[i] is AccessKind.LOAD]

    def stores(self) -> List[int]:
        return [i for i in self.instructions() if self.kinds[i] is AccessKind.STORE]

    def entries_for_instruction(
        self, instruction_id: int
    ) -> Dict[int, LMADProfileEntry]:
        """group id -> entry, for one instruction."""
        return {
            group: entry
            for (instr, group), entry in self.entries.items()
            if instr == instruction_id
        }

    def groups_of(self, instruction_id: int) -> List[int]:
        return sorted(self.entries_for_instruction(instruction_id))

    # -- size & quality metrics (Table 1) ---------------------------------

    def size_bytes(self) -> int:
        total = 0
        for entry in self.entries.values():
            total += ENTRY_HEADER_BYTES
            total += len(entry.lmads) * LMAD_RECORD_BYTES
            if entry.overflow.count:
                total += SUMMARY_RECORD_BYTES
        return total

    def compression_ratio(self, trace_bytes: int) -> float:
        """Raw trace bytes over profile bytes (the paper's `3539x`)."""
        size = self.size_bytes()
        if size == 0:
            return float("inf")
        return trace_bytes / size

    def accesses_captured(self) -> float:
        """Fraction of all accesses captured inside LMADs (Table 1's
        "Accesses captured")."""
        if not self.access_count:
            return 1.0
        captured = sum(entry.captured_symbols for entry in self.entries.values())
        return captured / self.access_count

    def instructions_captured(self) -> float:
        """Fraction of instructions whose behaviour was completely
        captured by their LMADs (Table 1's "Instructions captured")."""
        instructions = self.instructions()
        if not instructions:
            return 1.0
        complete = 0
        for instruction in instructions:
            entries = self.entries_for_instruction(instruction)
            if entries and all(entry.complete for entry in entries.values()):
                complete += 1
        return complete / len(instructions)


class LeapProfiler:
    """Run LEAP over a recorded trace (offline) or attach it to a live
    process bus (online) via :meth:`attach`."""

    def __init__(
        self,
        budget: int = DEFAULT_BUDGET,
        refine_by_type: bool = False,
        telemetry: Optional[Telemetry] = None,
        jobs: int = 1,
        quarantine=None,
        overflow_cap: Optional[int] = None,
    ) -> None:
        self.budget = budget
        self.refine_by_type = refine_by_type
        self.telemetry = coalesce(telemetry)
        self.jobs = jobs
        #: a :class:`~repro.resilience.degraded.Quarantine` enables
        #: degraded mode: untrustworthy tuples are diverted to it and
        #: the profile reports :attr:`LeapProfile.capture_completeness`
        self.quarantine = quarantine
        #: overflow backstop per entry: past this many budget-spilled
        #: symbols an entry degrades to a pure summary descriptor (see
        #: :class:`~repro.compression.lmad.LMADCompressor`)
        self.overflow_cap = overflow_cap

    def _translated(self, trace: Trace, omc: ObjectManager):
        """The translated stream, filtered through the quarantine when
        degraded mode is on."""
        stream = translate_trace(trace, omc)
        if self.quarantine is None:
            return stream
        from repro.resilience.degraded import quarantine_stream

        return quarantine_stream(stream, self.quarantine)

    def _quarantined_since(self, mark: int) -> int:
        if self.quarantine is None:
            return 0
        return self.quarantine.total - mark

    def profile(self, trace: Trace) -> LeapProfile:
        omc = ObjectManager(refine_by_type=self.refine_by_type)
        scc = VerticalLMADSCC(budget=self.budget, overflow_cap=self.overflow_cap)
        telemetry = self.telemetry
        mark = self.quarantine.total if self.quarantine is not None else 0
        if self.jobs != 1:
            from repro.parallel import resolve_jobs

            if resolve_jobs(self.jobs) > 1:
                return self._profile_parallel(trace, omc, scc, telemetry, mark)
        if not telemetry.enabled:
            count = 0
            for access in self._translated(trace, omc):
                scc.consume(access)
                count += 1
            return self._package(scc, omc, count, self._quarantined_since(mark))
        return self._profile_instrumented(trace, omc, scc, telemetry, mark)

    def _profile_parallel(
        self,
        trace: Trace,
        omc: ObjectManager,
        scc: VerticalLMADSCC,
        telemetry: Telemetry,
        mark: int = 0,
    ) -> LeapProfile:
        """The fan-out pipeline: translation and vertical decomposition
        (which also fills the kinds/exec-count side tables) stay
        in-process, then the independent ``(instruction, group)``
        substreams are dealt round-robin into shards, one pool worker
        per shard, and the closed entries merge back keyed exactly as
        serial :meth:`VerticalLMADSCC.finish` would produce them."""
        from repro.parallel import ParallelExecutor
        from repro.parallel.workers import compress_leap_shard, shard_round_robin

        with telemetry.span("leap") as whole:
            with telemetry.span("translation") as span:
                accesses = list(self._translated(trace, omc))
                span.add_items(len(accesses), "accesses")
            with telemetry.span("decomposition") as span:
                substreams = scc.decompose(accesses)
                span.add_items(len(accesses), "accesses")
            executor = ParallelExecutor(jobs=self.jobs, telemetry=telemetry)
            shards = shard_round_robin(
                list(substreams.items()),
                executor.effective_jobs(len(substreams)),
            )
            tasks = [(self.budget, self.overflow_cap, shard) for shard in shards]
            with telemetry.span("compression") as span:
                results = executor.map(
                    compress_leap_shard, tasks, label="leap-substreams"
                )
                span.add_items(len(accesses), "symbols")
            merged = {
                key: entry for shard_out in results for key, entry in shard_out
            }
            scc.adopt_entries({key: merged[key] for key in substreams})
            whole.add_items(len(accesses), "accesses")
        if telemetry.enabled:
            telemetry.counter(
                "cdc.translated_total", "accesses made object-relative"
            ).inc(len(accesses))
        profile = self._package(
            scc, omc, len(accesses), self._quarantined_since(mark)
        )
        if telemetry.enabled:
            self._record_metrics(profile, telemetry)
        return profile

    def _profile_instrumented(
        self,
        trace: Trace,
        omc: ObjectManager,
        scc: VerticalLMADSCC,
        telemetry: Telemetry,
        mark: int = 0,
    ) -> LeapProfile:
        """The telemetry-timed pipeline: translation, vertical
        decomposition, and LMAD fitting each get their own span, and the
        Table 1 quality metrics land in the registry.  Output is
        identical to the streaming path's."""
        with telemetry.span("leap") as whole:
            with telemetry.span("translation") as span:
                accesses = list(self._translated(trace, omc))
                span.add_items(len(accesses), "accesses")
            telemetry.counter(
                "cdc.translated_total", "accesses made object-relative"
            ).inc(len(accesses))
            with telemetry.span("decomposition") as span:
                substreams = scc.decompose(accesses)
                span.add_items(len(accesses), "accesses")
            with telemetry.span("compression") as span:
                scc.compress_streams(substreams)
                span.add_items(len(accesses), "symbols")
            whole.add_items(len(accesses), "accesses")
        profile = self._package(
            scc, omc, len(accesses), self._quarantined_since(mark)
        )
        self._record_metrics(profile, telemetry)
        return profile

    def _record_metrics(self, profile: LeapProfile, telemetry: Telemetry) -> None:
        """Registry metrics shared by the instrumented serial and the
        parallel paths."""
        lmads_histogram = telemetry.histogram(
            "leap.lmads_per_entry", "descriptors per (instruction, group)"
        )
        total_lmads = 0
        overflow_symbols = 0
        overflowed_entries = 0
        for entry in profile.entries.values():
            lmads_histogram.observe(len(entry.lmads))
            total_lmads += len(entry.lmads)
            overflow_symbols += entry.overflow.count
            if entry.overflow.count:
                overflowed_entries += 1
        telemetry.gauge(
            "leap.entries", "(instruction, group) profile entries"
        ).set(len(profile.entries))
        telemetry.gauge(
            "leap.lmads", "LMAD descriptors fitted across all entries"
        ).set(total_lmads)
        telemetry.counter(
            "leap.overflow_symbols_total",
            "symbols discarded to the min/max/granularity summaries "
            "after the descriptor budget filled",
        ).inc(overflow_symbols)
        telemetry.gauge(
            "leap.overflowed_entries", "entries that hit the budget"
        ).set(overflowed_entries)
        telemetry.gauge(
            "leap.capture_rate", "fraction of accesses captured in LMADs"
        ).set(profile.accesses_captured())
        telemetry.gauge(
            "leap.profile_bytes", "serialized LEAP profile size"
        ).set(profile.size_bytes())
        telemetry.gauge("leap.budget", "descriptor budget per entry").set(
            self.budget
        )

    def attach(self, bus) -> "OnlineLeapSession":
        """Attach an online LEAP pipeline to a
        :class:`~repro.runtime.probes.ProbeBus`; used for dilation
        timing, where the profiler must run *during* the program."""
        return OnlineLeapSession(self, bus)

    def _package(
        self,
        scc: VerticalLMADSCC,
        omc: ObjectManager,
        count: int,
        quarantined: int = 0,
    ) -> LeapProfile:
        total = count + quarantined
        if quarantined and self.telemetry.enabled:
            self.telemetry.counter(
                "resilience.quarantined",
                "tuples diverted to the quarantine sidecar",
            ).inc(quarantined)
        return LeapProfile(
            entries=scc.finish(),
            kinds=scc.kinds,
            exec_counts=scc.exec_counts,
            group_labels={g.group_id: g.label for g in omc.groups},
            access_count=count,
            budget=self.budget,
            lifetimes=omc.lifetime_table(),
            capture_completeness=(count / total) if total else 1.0,
            quarantined=quarantined,
        )


class OnlineLeapSession:
    """A live LEAP pipeline: OnlineCDC -> VerticalLMADSCC.

    Detach (or just call :meth:`finish`) when the program completes.
    """

    def __init__(self, profiler: LeapProfiler, bus) -> None:
        self._profiler = profiler
        self._bus = bus
        self._scc = VerticalLMADSCC(
            budget=profiler.budget, overflow_cap=profiler.overflow_cap
        )
        consumer = self._scc.consume
        self._mark = 0
        if profiler.quarantine is not None:
            from repro.resilience.degraded import quarantine_consumer

            self._mark = profiler.quarantine.total
            consumer = quarantine_consumer(consumer, profiler.quarantine)
        self._cdc = OnlineCDC(
            consumer,
            ObjectManager(refine_by_type=profiler.refine_by_type),
            telemetry=profiler.telemetry,
        )
        bus.attach(self._cdc)

    def finish(self) -> LeapProfile:
        self._bus.detach(self._cdc)
        quarantined = self._profiler._quarantined_since(self._mark)
        return self._profiler._package(
            self._scc, self._cdc.omc, self._cdc.clock - quarantined, quarantined
        )
