"""Simulated heap allocators.

The first artifact the paper attacks is the allocator: "even for the same
input set, a different allocator library could lay out the memory
differently" (Section 1).  To reproduce that, the heap is managed by real
allocator implementations -- not a counter handing out sequential ids --
so that address reuse, fragmentation, headers, and policy differences all
show up in the raw address stream exactly as they would natively.

Four policies are provided:

* :class:`BumpAllocator` -- monotonically increasing, never reuses memory.
* :class:`FreeListAllocator` -- classic boundary-tag free list with
  first-fit or best-fit placement, block splitting, and coalescing of
  adjacent free blocks.  This is the workhorse: freed addresses are
  recycled, which creates the false-aliasing raw-address artifacts.
* :class:`SegregatedFitAllocator` -- size-class bins in the style of
  dlmalloc's small bins, backed by a bump region.

All allocators share the :class:`Allocator` interface used by
:class:`repro.runtime.process.Process`; swapping policy mid-experiment is
how the allocator-sensitivity ablation perturbs raw addresses while
leaving object-relative streams untouched.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.runtime.memory import MemoryError_, Segment, align_up

#: Bytes of allocator bookkeeping placed before each user block,
#: mirroring glibc-style boundary tags.  Part of what makes raw heap
#: addresses look arbitrary.
HEADER_SIZE = 16

#: Minimum alignment of user pointers.
MIN_ALIGN = 16


class AllocatorError(MemoryError_):
    """Raised on invalid malloc/free usage (double free, bad pointer...)."""


@dataclass
class Block:
    """One heap block as the allocator sees it (header included)."""

    address: int  # address of the header
    size: int  # total size including header
    free: bool

    @property
    def user_address(self) -> int:
        return self.address + HEADER_SIZE

    @property
    def user_size(self) -> int:
        return self.size - HEADER_SIZE


class Allocator:
    """Interface shared by every heap allocator policy."""

    #: short policy name used in experiment reports
    name = "abstract"

    def __init__(self, heap: Segment) -> None:
        self.heap = heap
        self._live: Dict[int, int] = {}  # user address -> user size

    def malloc(self, size: int) -> int:
        """Allocate ``size`` bytes; return the user address."""
        if size <= 0:
            raise AllocatorError(f"malloc of non-positive size {size}")
        address = self._allocate(size)
        self._live[address] = size
        return address

    def free(self, address: int) -> int:
        """Release the block at ``address``; return its user size."""
        size = self._live.pop(address, None)
        if size is None:
            raise AllocatorError(f"free of unallocated pointer {address:#x}")
        self._release(address)
        return size

    def live_bytes(self) -> int:
        """Total user bytes currently allocated."""
        return sum(self._live.values())

    def size_of(self, address: int) -> Optional[int]:
        """User size of the live block at ``address`` (None if not live)."""
        return self._live.get(address)

    def live_blocks(self) -> int:
        return len(self._live)

    # -- policy hooks -------------------------------------------------

    def _allocate(self, size: int) -> int:
        raise NotImplementedError

    def _release(self, address: int) -> None:
        raise NotImplementedError


class BumpAllocator(Allocator):
    """Monotonic allocator: trivially fast, never reuses addresses.

    Useful as a control: with no address reuse there is no false
    aliasing, yet raw addresses still differ run to run whenever the
    allocation *order* differs.
    """

    name = "bump"

    def __init__(self, heap: Segment) -> None:
        super().__init__(heap)
        self._cursor = heap.base

    def _allocate(self, size: int) -> int:
        total = align_up(size + HEADER_SIZE, MIN_ALIGN)
        if self._cursor + total > self.heap.limit:
            raise AllocatorError("bump allocator out of heap")
        address = self._cursor + HEADER_SIZE
        self._cursor += total
        return address

    def _release(self, address: int) -> None:
        pass  # bump allocators leak by design


class FreeListAllocator(Allocator):
    """Boundary-tag free-list allocator with first-fit or best-fit.

    Maintains the full block list ordered by address so freed neighbours
    can be coalesced; placement policy is a constructor knob.  This is
    the allocator whose recycling behaviour produces the address-reuse
    artifacts Figure 1 of the paper illustrates.
    """

    def __init__(self, heap: Segment, policy: str = "first-fit") -> None:
        super().__init__(heap)
        if policy not in ("first-fit", "best-fit"):
            raise ValueError(f"unknown placement policy {policy!r}")
        self.policy = policy
        self.name = policy
        self._blocks: List[Block] = [Block(heap.base, heap.size, free=True)]
        self._by_user_address: Dict[int, int] = {}  # user addr -> block index hint

    def _find(self, total: int) -> Optional[int]:
        best: Optional[int] = None
        for index, block in enumerate(self._blocks):
            if not block.free or block.size < total:
                continue
            if self.policy == "first-fit":
                return index
            if best is None or block.size < self._blocks[best].size:
                best = index
        return best

    def _allocate(self, size: int) -> int:
        total = align_up(size + HEADER_SIZE, MIN_ALIGN)
        index = self._find(total)
        if index is None:
            raise AllocatorError(f"out of heap memory allocating {size} bytes")
        block = self._blocks[index]
        remainder = block.size - total
        if remainder >= HEADER_SIZE + MIN_ALIGN:
            # Split: the tail stays free.
            self._blocks[index] = Block(block.address, total, free=False)
            self._blocks.insert(
                index + 1, Block(block.address + total, remainder, free=True)
            )
        else:
            block.free = False
        return self._blocks[index].user_address

    def _release(self, user_address: int) -> None:
        index = self._index_of(user_address)
        self._blocks[index].free = True
        self._coalesce(index)

    def _index_of(self, user_address: int) -> int:
        header = user_address - HEADER_SIZE
        low, high = 0, len(self._blocks) - 1
        while low <= high:
            mid = (low + high) // 2
            block = self._blocks[mid]
            if block.address == header:
                return mid
            if block.address < header:
                low = mid + 1
            else:
                high = mid - 1
        raise AllocatorError(f"free of unknown block {user_address:#x}")

    def _coalesce(self, index: int) -> None:
        # Merge with the following block first so `index` stays valid.
        if index + 1 < len(self._blocks) and self._blocks[index + 1].free:
            self._blocks[index].size += self._blocks[index + 1].size
            del self._blocks[index + 1]
        if index > 0 and self._blocks[index - 1].free:
            self._blocks[index - 1].size += self._blocks[index].size
            del self._blocks[index]

    def fragmentation(self) -> float:
        """Fraction of free bytes not in the largest free block."""
        free_sizes = [b.size for b in self._blocks if b.free]
        total = sum(free_sizes)
        if not total:
            return 0.0
        return 1.0 - max(free_sizes) / total


class SegregatedFitAllocator(Allocator):
    """Size-class allocator in the style of dlmalloc small bins.

    Requests are rounded to a size class; each class keeps a LIFO free
    list.  LIFO reuse means a freed address is handed straight back to
    the next same-sized request -- the strongest form of the address
    reuse that confounds raw-address profiles.
    """

    name = "segregated"

    #: size classes in user bytes
    CLASSES = (16, 32, 48, 64, 96, 128, 192, 256, 384, 512, 1024, 2048, 4096)

    def __init__(self, heap: Segment) -> None:
        super().__init__(heap)
        self._cursor = heap.base
        self._bins: Dict[int, List[int]] = {cls: [] for cls in self.CLASSES}
        self._class_of: Dict[int, int] = {}

    def _size_class(self, size: int) -> int:
        for cls in self.CLASSES:
            if size <= cls:
                return cls
        return align_up(size, 4096)

    def _allocate(self, size: int) -> int:
        cls = self._size_class(size)
        stack = self._bins.setdefault(cls, [])
        if stack:
            return stack.pop()
        total = align_up(cls + HEADER_SIZE, MIN_ALIGN)
        if self._cursor + total > self.heap.limit:
            raise AllocatorError("segregated allocator out of heap")
        address = self._cursor + HEADER_SIZE
        self._cursor += total
        self._class_of[address] = cls
        return address

    def _release(self, address: int) -> None:
        cls = self._class_of[address]
        self._bins[cls].append(address)


def make_allocator(policy: str, heap: Segment) -> Allocator:
    """Factory used by experiments: ``policy`` is one of ``bump``,
    ``first-fit``, ``best-fit``, ``segregated``."""
    if policy == "bump":
        return BumpAllocator(heap)
    if policy in ("first-fit", "best-fit"):
        return FreeListAllocator(heap, policy=policy)
    if policy == "segregated":
        return SegregatedFitAllocator(heap)
    raise ValueError(f"unknown allocator policy {policy!r}")


#: Policies exposed to the allocator-sensitivity ablation.
ALL_POLICIES: Tuple[str, ...] = ("bump", "first-fit", "best-fit", "segregated")
