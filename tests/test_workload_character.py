"""Regression tests for the calibrated workload characters.

The figure/table shapes in EXPERIMENTS.md depend on each stand-in
keeping its memory character (mcf = uncapturable chase, parser =
access/instruction inversion, ...).  These tests pin the character at
full scale for the benchmarks whose fingerprint the paper highlights,
so a workload edit that would silently invalidate the calibration
fails here first.
"""

import pytest

from repro.profilers.leap import LeapProfiler
from repro.workloads.registry import create


@pytest.fixture(scope="module")
def leap_profiles():
    names = ("mcf", "parser", "crafty")
    profiles = {}
    for name in names:
        trace = create(name, scale=1.0).trace()
        profiles[name] = LeapProfiler().profile(trace)
    return profiles


class TestCalibratedCharacters:
    def test_mcf_is_the_uncapturable_one(self, leap_profiles):
        """Paper: 6.5% of accesses captured (pointer chasing)."""
        assert leap_profiles["mcf"].accesses_captured() < 0.25

    def test_parser_inversion(self, leap_profiles):
        """Paper: 76.3% of accesses but only 8.2% of instructions --
        the custom-pool carve is linear but exceeds the LMAD budget."""
        profile = leap_profiles["parser"]
        assert profile.accesses_captured() > 0.5
        assert profile.instructions_captured() < 0.25
        assert profile.accesses_captured() > 3 * profile.instructions_captured()

    def test_crafty_balanced_split(self, leap_profiles):
        """Paper: ~50/40 split between constant-location evaluation
        traffic and hash-random transposition traffic."""
        profile = leap_profiles["crafty"]
        assert 0.35 < profile.accesses_captured() < 0.70
        assert 0.30 < profile.instructions_captured() < 0.75

    def test_every_profile_nonempty(self, leap_profiles):
        for profile in leap_profiles.values():
            assert profile.entries
            assert profile.access_count > 10_000
