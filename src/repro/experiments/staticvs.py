"""Static-vs-profiled validation sweep (MIRCHECK oracle).

Not a figure from the paper, but its natural converse: the paper
profiles programs to *discover* LMAD regularity dynamically; this
experiment derives the same LMADs statically for the bundled mini-IR
examples and checks the two views against each other with
:class:`repro.lang.analysis.oracle.StaticOracle`.  For every program it
reports how many instructions the static side proved regular, the
LMAD/exec-count agreement over those, and the dependence-pair agreement
against the profiled MDF table.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional

from repro.lang.analysis.oracle import StaticOracle
from repro.lang.analysis.static_lmad import REGULAR_CLASSES


def _examples_dir() -> Optional[Path]:
    root = Path(__file__).resolve().parents[3] / "examples" / "programs"
    return root if root.is_dir() else None


def run(context=None) -> Dict[str, object]:
    directory = _examples_dir()
    programs: List[Dict[str, object]] = []
    if directory is None:
        return {"programs": programs, "skipped": "examples directory not found"}
    for path in sorted(directory.glob("*.mir")):
        if path.name.startswith("defects_"):
            continue  # linter fixtures, not kernels
        report = StaticOracle(path.read_text()).run()
        total = len(report.verdicts)
        regular = sum(
            1 for v in report.verdicts if v.classification in REGULAR_CLASSES
        )
        programs.append(
            {
                "program": path.name,
                "instructions": total,
                "proved_regular": regular,
                "lmad_matched": report.lmad_matched,
                "lmad_compared": report.lmad_compared,
                "lmad_agreement": report.lmad_agreement,
                "exec_agreement": report.exec_agreement,
                "dependence_agreement": report.dependence_agreement,
                "static_only_pairs": sorted(report.static_only_pairs),
                "profiled_only_pairs": sorted(report.profiled_only_pairs),
                "clean": report.clean,
            }
        )
    return {"programs": programs}


def render(results: Dict[str, object]) -> str:
    lines = [
        "Static-vs-profiled oracle: predicted LMADs checked against LEAP",
        "",
        f"{'program':<20} {'regular':>9} {'lmad ok':>9} "
        f"{'exec':>6} {'deps':>6}  clean",
    ]
    if results.get("skipped"):
        lines.append(f"  skipped: {results['skipped']}")
        return "\n".join(lines)
    for row in results["programs"]:
        lines.append(
            f"{row['program']:<20} "
            f"{row['proved_regular']:>4}/{row['instructions']:<4} "
            f"{row['lmad_matched']:>4}/{row['lmad_compared']:<4} "
            f"{row['exec_agreement']:>6.0%} "
            f"{row['dependence_agreement']:>6.0%}  "
            f"{'yes' if row['clean'] else 'NO'}"
        )
    lines.append("")
    lines.append(
        "clean = every proved-regular instruction matched the profile "
        "exactly and no dependence verdict disagreed"
    )
    return "\n".join(lines)
