"""Figure 6: error distribution of LEAP's memory-dependence results.

For each benchmark, LEAP's MDF estimates (LMAD intersection via the
omega-test solver) are compared pair-by-pair against the lossless
ground-truth profiler; errors are bucketed at 10% granularity.  The
paper observes "a dominating majority (75%) of the dependent pairs
either have frequencies that are completely correct (center point) or
off by no more than 10%".
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.metrics import ErrorDistribution, error_distribution
from repro.analysis.report import format_histogram, format_table, percent
from repro.experiments.context import SuiteContext
from repro.postprocess.dependence import analyze_dependences
from repro.workloads.registry import PAPER_NAMES

#: The paper's headline: 75% of pairs correct or within 10%.
PAPER_WITHIN_10 = 0.75


def distributions(context: SuiteContext) -> Dict[str, ErrorDistribution]:
    """Per-benchmark LEAP error distributions (shared with Figure 8)."""
    result: Dict[str, ErrorDistribution] = {}
    for name in context.benchmarks:
        estimated = analyze_dependences(context.leap(name))
        result[name] = error_distribution(
            estimated, context.truth_dependence(name)
        )
    return result


def run(context: SuiteContext) -> Dict[str, object]:
    per_benchmark = distributions(context)
    average = ErrorDistribution.average(list(per_benchmark.values()))
    rows: List[Dict[str, object]] = [
        {
            "benchmark": name,
            "pairs": dist.total_pairs,
            "exact": dist.exactly_correct(),
            "within_10": dist.within(0.10),
            "fractions": dist.fractions(),
        }
        for name, dist in per_benchmark.items()
    ]
    return {
        "figure": "6",
        "rows": rows,
        "distributions": per_benchmark,
        "average": average,
        "average_within_10": average.within(0.10),
        "paper_within_10": PAPER_WITHIN_10,
    }


def render(results: Dict[str, object]) -> str:
    table = format_table(
        ["benchmark", "pairs", "exact", "within 10%"],
        [
            [
                PAPER_NAMES.get(row["benchmark"], row["benchmark"]),
                row["pairs"],
                percent(row["exact"]),
                percent(row["within_10"]),
            ]
            for row in results["rows"]
        ],
        title="Figure 6: LEAP memory-dependence error distribution",
    )
    histogram = format_histogram(
        results["average"], title="\naverage error distribution (all benchmarks):"
    )
    summary = (
        f"\nwithin 10%: {percent(results['average_within_10'])} "
        f"(paper: {percent(results['paper_within_10'])})"
    )
    return table + "\n" + histogram + summary


def main() -> None:
    print(render(run(SuiteContext())))


if __name__ == "__main__":
    main()
