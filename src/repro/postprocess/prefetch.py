"""Stride-based prefetching driven by LEAP profiles (Section 4's second
target application, end to end).

LEAP identifies the strongly-strided instructions; a compiler would
insert a prefetch ``distance`` iterations ahead of each.  This module
simulates exactly that on the cache model: every execution of a
strongly-strided instruction also touches ``address + distance*stride``
as a prefetch, and the demand miss rates with and without prefetching
are compared.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.events import Trace
from repro.postprocess.strides import dominant_strides, LeapStrideAnalyzer
from repro.profilers.leap import LeapProfile, LeapProfiler
from repro.runtime.cache import CacheConfig, SimulationComparison, simulate


@dataclass
class PrefetchPlan:
    """instruction id -> stride to prefetch at."""

    strides: Dict[int, int]

    def __len__(self) -> int:
        return len(self.strides)


def plan_from_profile(
    profile: LeapProfile,
    threshold: float = 0.70,
    min_samples: int = 4,
) -> PrefetchPlan:
    """Prefetch the strongly-strided instructions at their dominant
    stride (zero-stride instructions are pointless to prefetch and are
    dropped)."""
    analyzer = LeapStrideAnalyzer()
    strong = analyzer.strongly_strided(profile, threshold, min_samples)
    strides = {
        instruction: stride
        for instruction, stride in dominant_strides(profile, min_samples).items()
        if instruction in strong and stride != 0
    }
    return PrefetchPlan(strides)


def evaluate_prefetching(
    trace: Trace,
    profile: Optional[LeapProfile] = None,
    config: CacheConfig = CacheConfig(),
    distance: int = 4,
) -> SimulationComparison:
    """Demand miss rates without and with profile-guided prefetching.

    ``profile`` defaults to a fresh LEAP run over the trace (the
    feedback-directed loop: profile once, optimize the same input).
    """
    if profile is None:
        profile = LeapProfiler().profile(trace)
    plan = plan_from_profile(profile)
    addresses = []
    instructions = []
    for event in trace.accesses():
        addresses.append(event.address)
        instructions.append(event.instruction_id)
    baseline = simulate(addresses, config)
    optimized = simulate(
        addresses,
        config,
        prefetch_for=plan.strides,
        instruction_ids=instructions,
        prefetch_distance=distance,
    )
    return SimulationComparison(
        baseline=baseline,
        optimized=optimized,
        label="stride prefetching",
        extra={"prefetched_instructions": len(plan)},
    )
