"""Intraprocedural lockset tracking over function bodies.

For every statement of a method the tracker computes the set of locks
held when it executes: ``with self._lock:`` regions, nested withs,
multi-item withs, and locks *inherited* by private methods whose every
intra-class call site holds them (``ProfileStore._append_record`` runs
under the ingest lock without naming it).

A with-item counts as a lock guard when its expression is a dotted
``self`` chain that either resolves -- through the class model -- to an
attribute constructed as ``threading.Lock()``/``RLock()``, or falls
under the naming convention (``lock`` / ``*_lock``).  Semaphores and
telemetry spans never count: a semaphore of width eight is not mutual
exclusion.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterator, List, Optional, Tuple

from repro.selfcheck.classmodel import ClassIndex, ClassInfo, is_lock_name
from repro.selfcheck.loader import dotted_name

EMPTY: FrozenSet[str] = frozenset()


def lock_key(
    expr: ast.AST, owner: Optional[ClassInfo], index: Optional[ClassIndex]
) -> Optional[str]:
    """Canonical key (``self._lock``, ``self.metrics.lock``) when the
    with-item expression is a recognizable mutual-exclusion guard."""
    name = dotted_name(expr)
    if name is None or "." not in name:
        # bare local lock objects still guard by naming convention
        if name is not None and is_lock_name(name):
            return name
        return None
    parts = name.split(".")
    final = parts[-1]
    if is_lock_name(final):
        return name
    # resolve the attribute chain through the class model: self ->
    # owner class, each attribute hop follows composition edges
    if parts[0] == "self" and owner is not None and index is not None:
        info: Optional[ClassInfo] = owner
        for hop in parts[1:-1]:
            if info is None:
                return None
            attr = info.attrs.get(hop)
            info = index.get(attr.value_class) if attr is not None else None
        if info is not None:
            attr = info.attrs.get(final)
            if attr is not None and attr.is_lock:
                return name
    return None


class LockTracker:
    """Yields ``(node, held_locks)`` for every node of a function."""

    def __init__(
        self,
        owner: Optional[ClassInfo] = None,
        index: Optional[ClassIndex] = None,
    ) -> None:
        self.owner = owner
        self.index = index

    def walk(
        self, function: ast.FunctionDef, initial: FrozenSet[str] = EMPTY
    ) -> Iterator[Tuple[ast.AST, FrozenSet[str]]]:
        for statement in function.body:
            yield from self._walk(statement, initial)

    def _walk(
        self, node: ast.AST, held: FrozenSet[str]
    ) -> Iterator[Tuple[ast.AST, FrozenSet[str]]]:
        if isinstance(node, (ast.With, ast.AsyncWith)):
            acquired = set(held)
            for item in node.items:
                key = lock_key(item.context_expr, self.owner, self.index)
                if key is not None:
                    acquired.add(key)
                yield item.context_expr, held
            inner = frozenset(acquired)
            for child in node.body:
                yield from self._walk(child, inner)
            return
        # nested defs get a fresh (empty) lockset: they run later
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node, held
            for child in node.body:
                yield from self._walk(child, EMPTY)
            return
        yield node, held
        for child in ast.iter_child_nodes(node):
            yield from self._walk(child, held)


def inherited_locksets(
    info: ClassInfo, index: ClassIndex
) -> Dict[str, FrozenSet[str]]:
    """Locks a method can assume held on entry.

    A private method inherits the *intersection* of the locksets held
    at its intra-class call sites (it is never called from outside the
    class by convention); the ``_locked`` suffix asserts ``self._lock``
    explicitly.  Public methods assume nothing.  Iterates to a fixed
    point so chains of private helpers resolve.
    """
    inherited: Dict[str, FrozenSet[str]] = {}
    for name in info.methods:
        if name.endswith("_locked"):
            inherited[name] = frozenset({"self._lock"})
    for _round in range(4):
        changed = False
        call_locks: Dict[str, List[FrozenSet[str]]] = {}
        for method_name, method in info.methods.items():
            start = inherited.get(method_name, EMPTY)
            tracker = LockTracker(info, index)
            for node, held in tracker.walk(method, start):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id == "self"
                    and node.func.attr in info.methods
                ):
                    call_locks.setdefault(node.func.attr, []).append(held)
        for method_name in info.methods:
            if not method_name.startswith("_"):
                continue
            sites = call_locks.get(method_name)
            if not sites:
                continue
            meet = frozenset.intersection(*sites)
            base = inherited.get(method_name, EMPTY)
            merged = base | meet
            if merged != base:
                inherited[method_name] = merged
                changed = True
        if not changed:
            break
    return inherited
