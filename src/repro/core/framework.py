"""The Figure 4 framework, wired up as a facade.

The paper's Section 2.3 framework connects an instrumented program's
probes to the OMC/CDC/SCC pipeline.  The pieces all exist as separate
classes (:class:`~repro.runtime.process.Process`,
:class:`~repro.core.cdc.OnlineCDC`, the SCCs, the profilers); this
module provides the one-call compositions a profile consumer wants:

* :func:`collect_trace` -- run a workload, get the trace;
* :func:`profile_trace` / :func:`profile_workload` -- produce any
  combination of profiles from one trace;
* :class:`ProfilingSession` -- attach several *online* profilers to one
  live process simultaneously (the paper's configuration: the program
  runs once, every profiler observes the same probe firings).
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Union

from repro.core.events import Trace
from repro.profilers.leap import LeapProfiler
from repro.profilers.whomp import WhompProfiler
from repro.runtime.process import Process
from repro.workloads.base import Workload

#: profiler names accepted by the facade functions
PROFILERS = ("whomp", "leap")


def collect_trace(
    workload: Workload,
    allocator: str = "first-fit",
    probe_padding: int = 0,
    os_offset: int = 0,
    telemetry=None,
) -> Trace:
    """Run a workload under instrumentation and return its trace."""
    return workload.trace(
        allocator=allocator,
        probe_padding=probe_padding,
        os_offset=os_offset,
        telemetry=telemetry,
    )


def profile_trace(
    trace: Trace,
    profilers: Iterable[str] = PROFILERS,
    budget: Optional[int] = None,
    refine_by_type: bool = False,
    telemetry=None,
) -> Dict[str, object]:
    """Collect the named profiles from one recorded trace."""
    results: Dict[str, object] = {}
    for name in profilers:
        if name == "whomp":
            results[name] = WhompProfiler(
                refine_by_type=refine_by_type, telemetry=telemetry
            ).profile(trace)
        elif name == "leap":
            profiler = (
                LeapProfiler(
                    budget=budget,
                    refine_by_type=refine_by_type,
                    telemetry=telemetry,
                )
                if budget is not None
                else LeapProfiler(
                    refine_by_type=refine_by_type, telemetry=telemetry
                )
            )
            results[name] = profiler.profile(trace)
        else:
            raise ValueError(
                f"unknown profiler {name!r}; choose from {PROFILERS}"
            )
    return results


def profile_workload(
    workload: Union[Workload, str],
    profilers: Iterable[str] = PROFILERS,
    scale: float = 1.0,
    seed: int = 0,
    telemetry=None,
    **layout,
) -> Dict[str, object]:
    """End-to-end: run a workload (by instance or registry name) and
    profile it.  The trace is returned under the ``"trace"`` key."""
    if isinstance(workload, str):
        from repro.workloads.registry import create

        workload = create(workload, scale=scale, seed=seed)
    trace = collect_trace(workload, telemetry=telemetry, **layout)
    results = profile_trace(trace, profilers, telemetry=telemetry)
    results["trace"] = trace
    return results


class ProfilingSession:
    """Several online profilers observing one live process.

    >>> session = ProfilingSession(profilers=("whomp", "leap"))
    >>> process = session.process
    >>> # ... drive the process ...
    >>> profiles = session.finish()      # doctest: +SKIP
    """

    def __init__(
        self,
        profilers: Iterable[str] = PROFILERS,
        process: Optional[Process] = None,
        budget: Optional[int] = None,
    ) -> None:
        self.process = process if process is not None else Process(record_trace=False)
        self._sessions: Dict[str, object] = {}
        for name in profilers:
            if name == "whomp":
                self._sessions[name] = WhompProfiler().attach(self.process.bus)
            elif name == "leap":
                profiler = (
                    LeapProfiler(budget=budget) if budget is not None else LeapProfiler()
                )
                self._sessions[name] = profiler.attach(self.process.bus)
            else:
                raise ValueError(
                    f"unknown profiler {name!r}; choose from {PROFILERS}"
                )

    def run(self, workload: Workload) -> "ProfilingSession":
        """Drive the session's process through a workload."""
        workload.run(self.process)
        return self

    def finish(self) -> Dict[str, object]:
        """Finish the process and detach every profiler."""
        self.process.finish()
        return {name: session.finish() for name, session in self._sessions.items()}
