"""REPROLINT determinism and event-schema checks (RL141-RL144)."""

import textwrap

from repro.selfcheck.engine import analyze_modules
from repro.selfcheck.loader import scan_source


def codes(source, path="inline.py"):
    module = scan_source(path, textwrap.dedent(source))
    return [f.code for f in analyze_modules([module])]


CAPTURE = "# repro: capture-path\n"


class TestRL141WallClock:
    def test_time_time_on_capture_path(self):
        source = CAPTURE + "import time\n\n\ndef f():\n    return time.time()\n"
        assert codes(source) == ["RL141"]

    def test_perf_counter_is_fine(self):
        source = (
            CAPTURE
            + "import time\n\n\ndef f():\n    return time.perf_counter()\n"
        )
        assert codes(source) == []

    def test_off_capture_path_is_fine(self):
        assert codes(
            "import time\n\n\ndef f():\n    return time.time()\n"
        ) == []

    def test_package_prefix_counts_as_capture_path(self):
        source = "import time\n\n\ndef f():\n    return time.time()\n"
        module = scan_source("/x/src/repro/core/fake.py", source)
        assert [f.code for f in analyze_modules([module])] == ["RL141"]


class TestRL142UnseededRandomness:
    def test_global_random_draw(self):
        source = (
            CAPTURE + "import random\n\n\ndef f(xs):\n    random.shuffle(xs)\n"
        )
        assert codes(source) == ["RL142"]

    def test_unseeded_generator(self):
        source = (
            CAPTURE
            + "import random\n\n\ndef f():\n    return random.Random()\n"
        )
        assert codes(source) == ["RL142"]

    def test_seeded_generator_is_sanctioned(self):
        source = (
            CAPTURE
            + "import random\n\n\ndef f(seed):\n    return random.Random(seed)\n"
        )
        assert codes(source) == []

    def test_entropy_sources(self):
        source = CAPTURE + "import os\n\n\ndef f():\n    return os.urandom(8)\n"
        assert codes(source) == ["RL142"]


EVENTS_PRELUDE = """\
EVENT_SCHEMAS = {
    "request": {
        "required": ["endpoint", "status"],
        "optional": ["seconds"],
    },
    "fault": {"required": ["fault"], "optional": [], "open": True},
}


"""


class TestEventSchemaChecks:
    def test_unknown_kind(self):
        source = EVENTS_PRELUDE + (
            'def f(log):\n    log.emit("warp-drive", speed=9)\n'
        )
        assert codes(source) == ["RL143"]

    def test_declared_kind_with_declared_fields(self):
        source = EVENTS_PRELUDE + (
            'def f(log):\n'
            '    log.emit("request", endpoint="/x", status=200, seconds=0.1)\n'
        )
        assert codes(source) == []

    def test_undeclared_field(self):
        source = EVENTS_PRELUDE + (
            'def f(log):\n'
            '    log.emit("request", endpoint="/x", status=200, verb="GET")\n'
        )
        assert codes(source) == ["RL144"]

    def test_missing_required_field(self):
        source = EVENTS_PRELUDE + (
            'def f(log):\n    log.emit("request", endpoint="/x")\n'
        )
        assert codes(source) == ["RL144"]

    def test_star_kwargs_waives_missing_but_not_extras(self):
        source = EVENTS_PRELUDE + (
            'def f(log, **fields):\n    log.emit("request", **fields)\n'
        )
        assert codes(source) == []

    def test_open_schema_tolerates_extras(self):
        source = EVENTS_PRELUDE + (
            'def f(log):\n'
            '    log.emit("fault", fault="stall", chunk=3, attempt=1)\n'
        )
        assert codes(source) == []

    def test_envelope_fields_always_legal(self):
        source = EVENTS_PRELUDE + (
            'def f(log):\n'
            '    log.emit("request", trace="t", span="s",\n'
            '             endpoint="/x", status=200)\n'
        )
        assert codes(source) == []

    def test_dynamic_kind_is_skipped(self):
        source = EVENTS_PRELUDE + (
            "def f(log, kind):\n    log.emit(kind, whatever=1)\n"
        )
        assert codes(source) == []

    def test_no_schema_table_no_event_checks(self):
        assert codes(
            'def f(log):\n    log.emit("warp-drive", speed=9)\n'
        ) == []

    def test_real_events_module_declares_all_emitted_kinds(self):
        # every literal emit site in the real tree names a declared kind
        # with declared fields -- proven by the zero-findings sweep, but
        # assert the schema table itself is loadable and non-trivial
        from repro.selfcheck.determinism import extract_event_schemas
        from repro.selfcheck.loader import load_tree

        modules = load_tree(["src/repro/obs"])
        schemas = extract_event_schemas(modules)
        assert schemas is not None
        for kind in ("stage", "request", "quarantine", "retry"):
            assert kind in schemas, kind
