"""The profile store: content-addressed blobs plus a run manifest.

A *run* is one profiling execution's artifact: the serialized profile
document (stored once per distinct content in the
:class:`~repro.store.blobs.BlobStore`) plus the metadata that makes it
queryable and comparable -- workload, profiler kind, scale/seed config,
ingest timestamp, and an optional telemetry summary.  The manifest is
an append-only JSONL file rewritten atomically through
:func:`~repro.resilience.atomic_write_text` on every append, so a crash
at any instant leaves either the previous manifest or the new one,
never a torn line.

Ingest **validates before it stores**: the document must decode cleanly
under :mod:`repro.core.profile_io`'s hardened loaders, so a corrupted
payload (a fault drill's bit-flips, a truncated upload) is rejected
with :class:`~repro.core.profile_io.ProfileFormatError` and the store
never serves bytes it could not itself decode.  Retrieval returns the
exact ingested bytes -- the round-trip is bit-identical by
construction, and the blob layer re-hashes on every read.

Garbage collection removes blobs no manifest entry references (after
runs are dropped), mirroring ``git gc``.
"""

from __future__ import annotations

import dataclasses
import json
import os
import threading
import time
from typing import Dict, List, Optional

from repro.core.profile_io import (
    ProfileFormatError,
    document_from_bytes,
    dumps_bytes,
    loads_bytes,
    sniff_format,
)
from repro.resilience import atomic_write_text
from repro.store.blobs import BlobStore, sha256_hex
from repro.store.cache import LRUCache

#: bumped when the manifest record shape changes; newer-versioned lines
#: are skipped rather than misread
MANIFEST_VERSION = 1


@dataclasses.dataclass(frozen=True)
class RunRecord:
    """One manifest line: a profile artifact and its provenance."""

    run_id: str
    digest: str
    workload: str
    kind: str
    created: float
    #: profile document bytes before compression
    size_bytes: int
    #: free-form provenance: scale, seed, allocator, telemetry summary
    meta: Dict[str, object] = dataclasses.field(default_factory=dict)

    def to_json(self) -> Dict[str, object]:
        out = dataclasses.asdict(self)
        out["manifest_version"] = MANIFEST_VERSION
        return out

    @classmethod
    def from_json(cls, document: Dict[str, object]) -> "RunRecord":
        return cls(
            run_id=str(document["run_id"]),
            digest=str(document["digest"]),
            workload=str(document["workload"]),
            kind=str(document["kind"]),
            created=float(document["created"]),
            size_bytes=int(document["size_bytes"]),
            meta=dict(document.get("meta") or {}),
        )


@dataclasses.dataclass
class GCStats:
    """What one :meth:`ProfileStore.gc` pass removed."""

    scanned: int = 0
    removed: int = 0
    freed_bytes: int = 0


class ProfileStore:
    """Content-addressed profile repository under one root directory.

    Layout::

        root/
          objects/ab/cdef...   zlib blobs, sha256-of-content keyed
          manifest.jsonl       one RunRecord JSON object per line

    Thread-safe: concurrent ingests serialize on an internal lock for
    the manifest append (blob writes are independently atomic and
    idempotent), and reads go through a thread-safe LRU cache of
    decoded profiles.
    """

    def __init__(self, root: str, cache_size: int = 32) -> None:
        self.root = root
        os.makedirs(root, exist_ok=True)
        self.blobs = BlobStore(os.path.join(root, "objects"))
        self.manifest_path = os.path.join(root, "manifest.jsonl")
        self.cache = LRUCache(cache_size)
        self._lock = threading.RLock()
        # serializes manifest-file writes; never held while mutating
        # in-memory state, never acquired under `_lock` held across a
        # write (ordering: _sink_lock before _lock)
        self._sink_lock = threading.Lock()
        self._records: List[RunRecord] = []
        self._by_id: Dict[str, RunRecord] = {}
        self._manifest_text = ""
        self._load_manifest()

    # -- manifest ------------------------------------------------------

    def _load_manifest(self) -> None:
        try:
            with open(self.manifest_path) as handle:
                text = handle.read()
        except OSError:
            return
        kept_lines: List[str] = []
        for line in text.splitlines():
            if not line.strip():
                continue
            try:
                document = json.loads(line)
                if document.get("manifest_version") != MANIFEST_VERSION:
                    continue
                record = RunRecord.from_json(document)
            except (ValueError, KeyError, TypeError):
                # A torn or foreign line (hand-edited file, older crash
                # without atomic writes): skip it -- the runs it named
                # can be re-ingested, the rest of the manifest survives.
                continue
            self._records.append(record)
            self._by_id[record.run_id] = record
            kept_lines.append(line)
        self._manifest_text = "".join(line + "\n" for line in kept_lines)

    def _append_record(self, record: RunRecord) -> None:
        """Append one manifest line to the in-memory state (only);
        callers persist with :meth:`_flush_manifest` after releasing
        the state lock."""
        line = json.dumps(record.to_json(), sort_keys=True)
        self._manifest_text += line + "\n"
        self._records.append(record)
        self._by_id[record.run_id] = record

    def _flush_manifest(self) -> None:
        """Atomically rewrite the manifest file from current state.

        Runs the disk write under the dedicated sink lock, holding the
        state lock only long enough to snapshot the text: concurrent
        ingests keep appending while a slow disk write is in flight,
        and the writer holding the sink lock always writes the newest
        snapshot it took, so the file never goes backwards.
        """
        with self._sink_lock:
            with self._lock:
                text = self._manifest_text
            atomic_write_text(self.manifest_path, text)

    def _next_run_id(self) -> str:
        return f"r{len(self._records) + 1:06d}"

    # -- ingest --------------------------------------------------------

    def ingest_bytes(
        self,
        data: bytes,
        workload: str,
        meta: Optional[Dict[str, object]] = None,
    ) -> RunRecord:
        """Validate, store, and record one serialized profile document.

        The profiler kind and encoding (JSON or BINCAP binary) are
        sniffed from the document itself; the encoding lands in
        ``meta["encoding"]``.  Raises :class:`ProfileFormatError`
        before anything touches disk when the document does not decode
        cleanly.
        """
        kind = sniff_format(data)
        loads_bytes(data)  # full decode: reject anything we could not serve
        meta = dict(meta or {})
        meta.setdefault(
            "encoding", "binary" if data[:1] == b"\x89" else "json"
        )
        with self._lock:
            digest = self.blobs.put(data)
            record = RunRecord(
                run_id=self._next_run_id(),
                digest=digest,
                workload=workload,
                kind=kind,
                created=time.time(),
                size_bytes=len(data),
                meta=meta,
            )
            self._append_record(record)
        # durable before the record is returned, but written outside
        # the state lock so parallel ingests don't stall on the disk
        self._flush_manifest()
        return record

    def ingest_text(
        self,
        text: str,
        workload: str,
        meta: Optional[Dict[str, object]] = None,
    ) -> RunRecord:
        return self.ingest_bytes(text.encode("utf-8"), workload, meta)

    def ingest_profile(
        self,
        profile: object,
        workload: str,
        meta: Optional[Dict[str, object]] = None,
        fmt: str = "json",
    ) -> RunRecord:
        """Serialize a live profile object and ingest the document."""
        return self.ingest_bytes(dumps_bytes(profile, fmt), workload, meta)

    def ingest_file(
        self,
        path: str,
        workload: Optional[str] = None,
        meta: Optional[Dict[str, object]] = None,
    ) -> RunRecord:
        """Ingest an on-disk ``*.whomp.json`` / ``*.leap.json`` file.

        The workload defaults to the filename stem (``gzip.leap.json``
        -> ``gzip``), which is what the profiling CLIs name outputs.
        """
        try:
            with open(path, "rb") as handle:
                data = handle.read()
        except OSError as exc:
            raise ProfileFormatError(f"cannot read {path!r}: {exc}") from exc
        if workload is None:
            workload = os.path.basename(path).split(".")[0]
        return self.ingest_bytes(data, workload, meta)

    # -- retrieval -----------------------------------------------------

    def runs(
        self,
        workload: Optional[str] = None,
        kind: Optional[str] = None,
    ) -> List[RunRecord]:
        """Manifest records in ingest order, optionally filtered."""
        with self._lock:
            records = list(self._records)
        if workload is not None:
            records = [r for r in records if r.workload == workload]
        if kind is not None:
            records = [r for r in records if r.kind == kind]
        return records

    def run(self, run_id: str) -> RunRecord:
        with self._lock:
            record = self._by_id.get(run_id)
        if record is None:
            raise KeyError(f"no run {run_id!r} in the store")
        return record

    def resolve(self, selector: str) -> RunRecord:
        """Resolve a run selector to a record.

        Accepted forms:

        * a run id (``r000007``);
        * a digest prefix of at least 6 hex characters;
        * ``workload@kind`` -- the latest matching run -- optionally
          with a git-style ``~N`` suffix for the N-th previous one
          (``gzip@leap~1`` is the run before the latest).
        """
        with self._lock:
            if selector in self._by_id:
                return self._by_id[selector]
            records = list(self._records)
        if "@" in selector:
            workload, __, rest = selector.partition("@")
            kind, __, back_text = rest.partition("~")
            try:
                back = int(back_text) if back_text else 0
            except ValueError:
                raise KeyError(f"bad run selector {selector!r}") from None
            matches = [
                r for r in records if r.workload == workload and r.kind == kind
            ]
            if back < 0 or back >= len(matches):
                raise KeyError(
                    f"no run matches {selector!r} "
                    f"({len(matches)} {workload}@{kind} run(s) in the store)"
                )
            return matches[-1 - back]
        if len(selector) >= 6 and all(c in "0123456789abcdef" for c in selector):
            matches = [r for r in records if r.digest.startswith(selector)]
            if len(matches) == 1:
                return matches[0]
            if matches:
                # Same blob ingested as several runs: latest wins, like
                # the workload@kind selector.
                return matches[-1]
        raise KeyError(f"no run matches selector {selector!r}")

    def get_bytes(self, selector: str) -> bytes:
        """The exact ingested document bytes for a run (bit-identical)."""
        return self.blobs.get(self.resolve(selector).digest)

    def get_text(self, selector: str) -> str:
        """The ingested document as text (JSON-encoded runs only)."""
        data = self.get_bytes(selector)
        try:
            return data.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ProfileFormatError(
                "run is binary-encoded; use get_bytes/get_document"
            ) from exc

    def get_document(self, selector: str) -> Dict[str, object]:
        """The run's JSON-shape document dict, whatever its encoding."""
        return document_from_bytes(self.get_bytes(selector))

    def get(self, selector: str) -> object:
        """The decoded profile for a run, through the LRU cache.

        Returns what :func:`repro.core.profile_io.loads_bytes` returns
        for the run's format (a stream dict for WHOMP, a profile object
        for LEAP / dependence) -- the JSON and binary encodings decode
        to identical profiles.
        """
        digest = self.resolve(selector).digest
        return self.cache.get_or_load(
            digest, lambda: loads_bytes(self.blobs.get(digest))
        )

    # -- maintenance ---------------------------------------------------

    def repair_blob(
        self, digest: str, data: bytes, workload: str = "unknown"
    ) -> Dict[str, object]:
        """Force-install one blob after full validation (read-repair).

        The payload must hash to ``digest`` and decode cleanly; then
        the blob file is atomically rewritten even if a (corrupt) copy
        already exists.  When no manifest run references the digest, a
        run is created too, so a replica that lost both the blob and
        its run row heals to a queryable state.  Returns
        ``{"replaced": bool, "created_run": run_id | None}``.
        """
        if sha256_hex(data) != digest:
            raise ProfileFormatError(
                f"repair payload does not hash to {digest[:12]}"
            )
        loads_bytes(data)  # reject anything we could not serve
        replaced = self.blobs.contains(digest)
        self.blobs.put(data, force=True)
        self.cache.invalidate(digest)
        with self._lock:
            referenced = any(r.digest == digest for r in self._records)
        created = None
        if not referenced:
            record = self.ingest_bytes(
                data, workload, meta={"source": "read-repair"}
            )
            created = record.run_id
        return {"replaced": replaced, "created_run": created}

    def drop_run(self, run_id: str) -> None:
        """Remove one run from the manifest (its blob stays until gc)."""
        with self._lock:
            if run_id not in self._by_id:
                raise KeyError(f"no run {run_id!r} in the store")
            del self._by_id[run_id]
            self._records = [r for r in self._records if r.run_id != run_id]
            self._manifest_text = "".join(
                json.dumps(r.to_json(), sort_keys=True) + "\n"
                for r in self._records
            )
        self._flush_manifest()

    def gc(self) -> GCStats:
        """Delete blobs no manifest record references."""
        stats = GCStats()
        with self._lock:
            referenced = {r.digest for r in self._records}
            for digest in list(self.blobs.digests()):
                stats.scanned += 1
                if digest in referenced:
                    continue
                try:
                    stats.freed_bytes += os.path.getsize(self.blobs.path(digest))
                except OSError:
                    pass
                if self.blobs.delete(digest):
                    stats.removed += 1
                    self.cache.invalidate(digest)
        return stats

    def stats(self) -> Dict[str, object]:
        """A health snapshot: run/blob counts, sizes, cache behaviour."""
        with self._lock:
            records = list(self._records)
        workloads = sorted({r.workload for r in records})
        kinds = sorted({r.kind for r in records})
        hits, misses, evictions = self.cache.stats()
        return {
            "runs": len(records),
            "workloads": workloads,
            "kinds": kinds,
            "blobs": len(self.blobs),
            "stored_bytes": self.blobs.stored_bytes(),
            "profile_bytes": sum(r.size_bytes for r in records),
            "cache": {
                "capacity": self.cache.capacity,
                "entries": len(self.cache),
                "hits": hits,
                "misses": misses,
                "evictions": evictions,
                "hit_rate": self.cache.hit_rate,
            },
        }
