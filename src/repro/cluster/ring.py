"""Consistent hashing: the cluster's placement function.

A classic consistent-hash ring with virtual nodes: each shard owns
``vnodes`` pseudo-random points on a 64-bit circle (sha256 of
``"<shard>#<i>"``), and a key is placed by hashing it onto the circle
and walking clockwise to the first ``replicas`` *distinct* shards.

The properties the cluster builds on (property-tested in
``tests/test_cluster_ring.py``):

* **Determinism** -- placement depends only on the ring membership and
  the key, never on call order or wall clock, so every router instance
  agrees where a digest lives.
* **Stability** -- adding a shard moves roughly ``1/(N+1)`` of the
  keyspace onto the new shard and nothing anywhere else; removing one
  relocates only the keys it owned.
* **Distinct replicas** -- a key's replica set never names the same
  shard twice (the walk skips duplicates), so replication actually
  buys redundancy.

Keys are profile digests (sha256 hex), already uniformly distributed;
vnodes exist to smooth shard-to-shard load, not key hashing.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, List, Tuple

#: default virtual nodes per shard; at 64 the max/mean keyspace-share
#: imbalance across a handful of shards stays under ~30%
DEFAULT_VNODES = 64


def _point(label: str) -> int:
    """A label's position on the 2**64 circle."""
    digest = hashlib.sha256(label.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:  # repro: synchronized-externally (RingState's lock)
    """The bare ring structure: membership, points, and the walk.

    Not thread-safe by design -- :class:`~repro.cluster.health.RingState`
    owns one behind its lock and is the only caller in the daemon.

    >>> ring = HashRing(vnodes=8)
    >>> ring.add("shard0"); ring.add("shard1"); ring.add("shard2")
    >>> placement = ring.place("a" * 64, replicas=2)
    >>> len(placement) == len(set(placement)) == 2
    True
    """

    def __init__(self, vnodes: int = DEFAULT_VNODES) -> None:
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.vnodes = vnodes
        self._points: List[Tuple[int, str]] = []  # sorted (position, shard)
        self._positions: List[int] = []  # parallel, for bisect
        self._shards: Dict[str, None] = {}  # insertion-ordered set

    def __contains__(self, shard: str) -> bool:
        return shard in self._shards

    def __len__(self) -> int:
        return len(self._shards)

    def shards(self) -> Tuple[str, ...]:
        """Member shards in insertion order."""
        return tuple(self._shards)

    def add(self, shard: str) -> None:
        """Join one shard (idempotent)."""
        if shard in self._shards:
            return
        self._shards[shard] = None
        for index in range(self.vnodes):
            position = _point(f"{shard}#{index}")
            at = bisect.bisect_left(self._positions, position)
            self._positions.insert(at, position)
            self._points.insert(at, (position, shard))

    def remove(self, shard: str) -> None:
        """Leave one shard (idempotent)."""
        if shard not in self._shards:
            return
        del self._shards[shard]
        kept = [(pos, name) for pos, name in self._points if name != shard]
        self._points = kept
        self._positions = [pos for pos, __ in kept]

    def place(self, key: str, replicas: int = 2) -> List[str]:
        """The first ``replicas`` distinct shards clockwise of ``key``.

        Fewer members than ``replicas`` yields every member (a 2-way
        ring of one shard places one copy, not zero); an empty ring
        yields ``[]``.
        """
        if not self._points:
            return []
        wanted = min(max(1, replicas), len(self._shards))
        start = bisect.bisect_right(self._positions, _point(key))
        chosen: List[str] = []
        for step in range(len(self._points)):
            __, shard = self._points[(start + step) % len(self._points)]
            if shard not in chosen:
                chosen.append(shard)
                if len(chosen) == wanted:
                    break
        return chosen

    def layout(self) -> Dict[str, object]:
        """JSON-ready description: members, vnodes, keyspace shares."""
        shares: Dict[str, float] = {name: 0.0 for name in self._shards}
        total = float(1 << 64)
        for index, (position, __) in enumerate(self._points):
            previous = self._points[index - 1][0] if index else (
                self._points[-1][0] - (1 << 64)
            )
            shard = self._points[index][1]
            shares[shard] += (position - previous) / total
        return {
            "shards": list(self._shards),
            "vnodes": self.vnodes,
            "points": len(self._points),
            "keyspace_share": {
                name: round(share, 4) for name, share in shares.items()
            },
        }
