"""Many-thread hammering of the structures REPROLINT vouches for.

These are the dynamic counterparts of the static lockset analysis:
16 threads per structure, invariants checked on the quiesced state.
A missing lock shows up here as a lost update, a hit-rate above 1.0,
or a manifest/record mismatch -- exactly the defect classes RL101,
RL102, and RL105 flag statically.
"""

import json
import threading

import pytest

from repro.core.events import AccessKind
from repro.core.profile_io import dumps_bytes
from repro.profilers.leap import LeapProfiler
from repro.resilience.degraded import Quarantine
from repro.runtime.process import Process
from repro.store import LRUCache, ProfileStore

THREADS = 16
ROUNDS = 200


def hammer(worker):
    """Run ``worker(index)`` on THREADS threads; re-raise any failure."""
    errors = []
    barrier = threading.Barrier(THREADS)

    def run(index):
        try:
            barrier.wait()
            worker(index)
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)

    threads = [
        threading.Thread(target=run, args=(i,)) for i in range(THREADS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if errors:
        raise errors[0]


class TestLRUCacheStress:
    def test_hit_accounting_stays_consistent(self):
        cache = LRUCache(capacity=8)

        def worker(index):
            for round_no in range(ROUNDS):
                key = (index + round_no) % 24
                value = cache.get_or_load(key, lambda k=key: k * 2)
                assert value == key * 2
                rate = cache.hit_rate
                assert 0.0 <= rate <= 1.0

        hammer(worker)
        hits, misses, evictions = cache.stats()
        assert hits + misses == THREADS * ROUNDS
        assert len(cache) <= 8
        assert evictions >= misses - 24  # every over-capacity miss evicts

    def test_eviction_churn_keeps_capacity_bound(self):
        cache = LRUCache(capacity=2)

        def worker(index):
            for round_no in range(ROUNDS):
                cache.get_or_load((index, round_no), lambda: round_no)

        hammer(worker)
        assert len(cache) <= 2
        hits, misses, _ = cache.stats()
        assert hits + misses == THREADS * ROUNDS


class TestQuarantineStress:
    def test_counters_records_and_reasons_agree(self):
        quarantine = Quarantine(limit=64)
        reasons = ["bad-size", "torn-tuple", "unknown-site", "neg-offset"]

        def worker(index):
            for round_no in range(ROUNDS):
                reason = reasons[(index + round_no) % len(reasons)]
                quarantine.add(reason, ("rec", index, round_no))

        hammer(worker)
        assert quarantine.total == THREADS * ROUNDS
        assert sum(quarantine.reasons.values()) == quarantine.total
        assert len(quarantine.records) == 64
        assert quarantine.dropped == quarantine.total - 64

    def test_event_emission_respects_cap(self):
        emitted = []
        emit_lock = threading.Lock()

        class Sink:
            def emit(self, kind, **fields):
                with emit_lock:
                    emitted.append((kind, fields))

        quarantine = Quarantine(limit=8)
        quarantine.events = Sink()

        def worker(index):
            for round_no in range(ROUNDS):
                quarantine.add("bad-size", (index, round_no))

        hammer(worker)
        assert quarantine.total == THREADS * ROUNDS
        assert len(emitted) == Quarantine.EVENT_CAP


def distinct_documents(count):
    """``count`` serialized profiles with pairwise-distinct contents."""
    documents = []
    for variant in range(count):
        process = Process()
        load = process.instruction("ld", AccessKind.LOAD)
        block = process.malloc("site", 512, type_name="long[]")
        for offset in range(variant + 1):
            process.load(load, block + (offset % 64) * 8)
        process.free(block)
        process.finish()
        profile = LeapProfiler().profile(process.trace)
        documents.append(dumps_bytes(profile))
    return documents


class TestProfileStoreStress:
    def test_parallel_ingest_keeps_manifest_consistent(self, tmp_path):
        store = ProfileStore(str(tmp_path))
        documents = distinct_documents(8)
        per_thread = 6

        def worker(index):
            for round_no in range(per_thread):
                data = documents[(index + round_no) % len(documents)]
                record = store.ingest_bytes(
                    data, f"wl-{index}-{round_no}"
                )
                assert store.blobs.get(record.digest) == data

        hammer(worker)
        records = store.runs()
        assert len(records) == THREADS * per_thread
        assert len({r.run_id for r in records}) == len(records)
        # dedup: 8 distinct payloads -> exactly 8 blobs
        assert len(store.blobs) == len(documents)
        # the on-disk manifest agrees with memory line for line
        with open(store.manifest_path) as handle:
            lines = [json.loads(line) for line in handle if line.strip()]
        assert len(lines) == len(records)
        assert {l["run_id"] for l in lines} == {r.run_id for r in records}

    def test_ingest_is_durable_before_return(self, tmp_path):
        store = ProfileStore(str(tmp_path))
        (document,) = distinct_documents(1)
        record = store.ingest_bytes(document, "solo")
        with open(store.manifest_path) as handle:
            lines = [json.loads(line) for line in handle if line.strip()]
        assert [l["run_id"] for l in lines] == [record.run_id]
