"""Tests for the Control and Decomposition Component (translation)."""

import pytest

from repro.core.cdc import OnlineCDC, translate_trace, translate_trace_list
from repro.core.events import AccessKind, Trace
from repro.core.omc import ObjectManager
from repro.core.tuples import WILD_GROUP, WILD_OBJECT
from repro.runtime.process import Process
from repro.workloads.micro import LinkedListTraversal


class TestOfflineTranslation:
    def test_simple_trace(self, simple_trace):
        translated = translate_trace_list(simple_trace)
        assert len(translated) == simple_trace.access_count
        # all accesses hit the single heap object at increasing offsets
        assert {a.group for a in translated} == {0}
        assert {a.object_serial for a in translated} == {0}
        assert [a.offset for a in translated] == list(range(0, 64, 8)) * 2

    def test_timestamps_match_events(self, simple_trace):
        translated = translate_trace_list(simple_trace)
        events = list(simple_trace.accesses())
        assert [a.time for a in translated] == [e.time for e in events]

    def test_kind_and_size_carried(self, simple_trace):
        translated = translate_trace_list(simple_trace)
        kinds = {a.kind for a in translated}
        assert kinds == {AccessKind.LOAD, AccessKind.STORE}
        assert all(a.size == 8 for a in translated)

    def test_wild_access(self):
        """Accesses outside any live object go to the wild group with the
        raw address preserved as the offset."""
        process = Process()
        ld = process.instruction("ld", AccessKind.LOAD)
        block = process.malloc("s", 64)
        process.load(ld, block)
        process.free(block)
        # read of freed memory: no live object contains it now
        process.load(ld, block)
        process.finish()
        translated = translate_trace_list(process.trace)
        assert translated[0].group == 0
        assert translated[1].group == WILD_GROUP
        assert translated[1].object_serial == WILD_OBJECT
        assert translated[1].offset == block
        assert translated[1].wild

    def test_caller_keeps_omc(self, simple_trace):
        omc = ObjectManager()
        list(translate_trace(simple_trace, omc))
        assert len(omc.objects()) == 1
        assert omc.objects()[0].free_time is not None

    def test_translation_is_lazy(self, simple_trace):
        iterator = translate_trace(simple_trace)
        first = next(iterator)
        assert first.offset == 0


class TestOnlineCDC:
    def test_online_equals_offline(self):
        """Attaching the CDC to the live bus must produce the identical
        object-relative stream as offline translation of the trace."""
        workload = LinkedListTraversal(nodes=20, sweeps=3)

        online: list = []
        process = Process()
        process.bus.attach(OnlineCDC(online.append))
        workload.run(process)
        process.finish()

        offline = translate_trace_list(process.trace)
        assert online == offline

    def test_clock_counts_accesses(self):
        process = Process(record_trace=False)
        sink: list = []
        cdc = OnlineCDC(sink.append)
        process.bus.attach(cdc)
        block = process.malloc("s", 64)
        st = process.instruction("st", AccessKind.STORE)
        process.store(st, block)
        process.store(st, block + 8)
        assert cdc.clock == 2
        assert [a.time for a in sink] == [0, 1]

    def test_online_wild(self):
        process = Process(record_trace=False)
        sink: list = []
        process.bus.attach(OnlineCDC(sink.append))
        block = process.malloc("s", 64)
        process.free(block)
        ld = process.instruction("ld", AccessKind.LOAD)
        process.load(ld, block)
        assert sink[0].wild


class TestTupleAPI:
    def test_dimension_accessor(self, simple_trace):
        access = translate_trace_list(simple_trace)[0]
        assert access.dimension("instruction") == access.instruction_id
        assert access.dimension("group") == access.group
        assert access.dimension("object") == access.object_serial
        assert access.dimension("offset") == access.offset
        assert access.dimension("time") == access.time

    def test_dimension_unknown(self, simple_trace):
        access = translate_trace_list(simple_trace)[0]
        with pytest.raises(ValueError):
            access.dimension("color")
