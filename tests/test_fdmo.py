"""Tests for the profile-consuming optimizations (FDMO consumers):
hot streams, object clustering, stride prefetching, field reordering."""

import pytest

from repro.core.cdc import translate_trace_list
from repro.core.events import AccessKind
from repro.postprocess.clustering import (
    ObjectClusterer,
    affinity_graph,
    build_layout,
    cluster_order,
)
from repro.postprocess.field_reorder import FieldReorderer, field_statistics
from repro.postprocess.hot_streams import coverage, extract_hot_streams
from repro.postprocess.prefetch import evaluate_prefetching, plan_from_profile
from repro.profilers.leap import LeapProfiler
from repro.runtime.cache import CacheConfig
from repro.runtime.process import Process
from repro.workloads.micro import LinkedListTraversal, MatrixTraversal


class TestHotStreams:
    def test_traversal_stream_found(self):
        trace = LinkedListTraversal(nodes=50, sweeps=8).trace()
        stream = translate_trace_list(trace)
        hot = extract_hot_streams(stream, top=3)
        assert hot
        # the hottest stream is the full 50-node traversal, repeated
        best = hot[0]
        assert best.length == 50
        assert best.occurrences >= 8
        assert best.heat == best.length * best.occurrences

    def test_wild_accesses_skipped(self):
        process = Process()
        ld = process.instruction("ld", AccessKind.LOAD)
        block = process.malloc("s", 64)
        process.load(ld, block)
        process.free(block)
        process.load(ld, block)  # wild
        process.finish()
        hot = extract_hot_streams(translate_trace_list(process.trace))
        for stream in hot:
            assert all(group >= 0 for group, __ in stream.references)

    def test_min_occurrences_filter(self):
        trace = LinkedListTraversal(nodes=20, sweeps=3).trace()
        stream = translate_trace_list(trace)
        strict = extract_hot_streams(stream, min_occurrences=1000)
        assert strict == []

    def test_coverage_bounds(self):
        trace = LinkedListTraversal(nodes=30, sweeps=5).trace()
        stream = translate_trace_list(trace)
        hot = extract_hot_streams(stream, top=5)
        assert 0.0 <= coverage(hot, len(stream)) <= 1.0
        assert coverage([], 100) == 0.0
        assert coverage(hot, 0) == 0.0


class TestClustering:
    def test_affinity_counts_co_access(self):
        trace = LinkedListTraversal(nodes=10, sweeps=2).trace()
        edges = affinity_graph(translate_trace_list(trace), window=4)
        assert edges
        assert all(weight > 0 for weight in edges.values())
        for (a, b) in edges:
            assert a <= b  # canonical edge order

    def test_cluster_order_is_permutation(self):
        objects = [(0, i) for i in range(10)]
        edges = {((0, 0), (0, 1)): 5, ((0, 2), (0, 3)): 4}
        order = cluster_order(objects, edges)
        assert sorted(order) == sorted(objects)

    def test_affine_objects_adjacent(self):
        objects = [(0, i) for i in range(5)]
        edges = {((0, 1), (0, 3)): 10}
        heat = {(0, 1): 100}
        order = cluster_order(objects, edges, heat)
        assert order[0] == (0, 1)
        assert order[1] == (0, 3)

    def test_layout_is_packed_and_aligned(self):
        order = [(0, 1), (0, 0)]
        sizes = {(0, 0): 24, (0, 1): 40}
        layout = build_layout(order, sizes, align=16)
        assert layout.bases[(0, 1)] % 16 == 0
        assert layout.bases[(0, 0)] == layout.bases[(0, 1)] + 48
        assert layout.total_bytes == 48 + 32

    def test_clustering_reduces_misses_on_scattered_list(self):
        trace = LinkedListTraversal(nodes=150, sweeps=8).trace()
        comparison = ObjectClusterer().evaluate(trace, CacheConfig(4096, 64, 2))
        assert comparison.optimized.miss_rate < comparison.baseline.miss_rate
        assert comparison.miss_reduction > 0.15

    def test_replay_streams_have_equal_length(self):
        trace = LinkedListTraversal(nodes=20, sweeps=2).trace()
        comparison = ObjectClusterer().evaluate(trace)
        assert comparison.baseline.accesses == comparison.optimized.accesses


class TestPrefetch:
    def test_plan_selects_strided_instructions(self):
        trace = MatrixTraversal(rows=40, cols=40).trace()
        profile = LeapProfiler().profile(trace)
        plan = plan_from_profile(profile)
        assert len(plan) >= 1
        assert all(stride != 0 for stride in plan.strides.values())

    def test_prefetching_reduces_misses_on_strided_code(self):
        trace = MatrixTraversal(rows=48, cols=48).trace()
        comparison = evaluate_prefetching(trace, config=CacheConfig(4096, 64, 2))
        assert comparison.miss_reduction > 0.5
        assert comparison.optimized.prefetches > 0

    def test_prefetching_neutral_on_random_code(self):
        from repro.workloads.micro import HashProbe

        trace = HashProbe(buckets=4096, probes=2000).trace()
        comparison = evaluate_prefetching(trace, config=CacheConfig(4096, 64, 2))
        # nothing strongly-strided within objects -> no prefetches for
        # the probe loop; demand misses unchanged
        assert comparison.optimized.miss_rate <= comparison.baseline.miss_rate + 0.01


class TestFieldReorder:
    def hot_cold_trace(self, records=200, sweeps=5, size=256):
        """Two hot fields at opposite ends of a big record + cold ones."""
        process = Process()
        hot_a = process.instruction("hot_a", AccessKind.LOAD)
        hot_b = process.instruction("hot_b", AccessKind.LOAD)
        cold = process.instruction("cold", AccessKind.LOAD)
        objects = [process.malloc("rec", size) for __ in range(records)]
        for sweep in range(sweeps):
            for obj in objects:
                process.load(hot_a, obj)
                process.load(hot_b, obj + size - 8)
            if sweep == 0:
                for obj in objects:
                    process.load(cold, obj + size // 2)
        process.finish()
        return process.trace

    def test_statistics(self):
        trace = self.hot_cold_trace(records=10, sweeps=2)
        frequency, affinity = field_statistics(translate_trace_list(trace))
        group_frequency = frequency[0]
        assert group_frequency[0] == group_frequency[248]
        assert group_frequency[0] > group_frequency[128]
        assert affinity[0]  # the hot pair co-occurs

    def test_proposal_packs_hot_pair(self):
        trace = self.hot_cold_trace(records=30, sweeps=3)
        orders = FieldReorderer().propose(trace)
        order = orders[0]
        new_a, new_b = order.apply(0), order.apply(248)
        assert abs(new_a - new_b) == 8  # now adjacent

    def test_reordering_reduces_misses(self):
        trace = self.hot_cold_trace()
        comparison = FieldReorderer().evaluate(trace, CacheConfig(4096, 64, 2))
        assert comparison.miss_reduction > 0.25

    def test_small_objects_skipped(self):
        trace = LinkedListTraversal(nodes=30, sweeps=3).trace()  # 24B nodes
        orders = FieldReorderer().propose(trace)
        assert orders == {}  # nothing bigger than a line

    def test_noop_when_nothing_reordered(self):
        trace = LinkedListTraversal(nodes=30, sweeps=3).trace()
        comparison = FieldReorderer().evaluate(trace, CacheConfig(2048, 64, 2))
        assert comparison.optimized.miss_rate == pytest.approx(
            comparison.baseline.miss_rate
        )
