"""BINCAP: the compact binary profile format and the document stream.

Three layers under test:

* primitives -- varints, frames, the incremental :class:`FrameParser`;
* documents -- hypothesis-generated WHOMP/LEAP/dependence documents
  must survive ``encode_document`` -> ``decode_document`` identically,
  and every truncation or byte-flip of an encoded document must raise
  :class:`BinaryFormatError` (the trailing CRC's job);
* streams -- :class:`StreamWriter` -> :class:`StreamReader` across
  arbitrary feed boundaries, including torn tails and CRC damage.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import binformat as bf
from repro.core import profile_io as pio
from repro.core.binformat import (
    BinaryFormatError,
    FrameParser,
    StreamReader,
    StreamWriter,
    decode_document,
    encode_document,
    sniff_kind,
)

# -- primitives ---------------------------------------------------------------


class TestVarints:
    @given(st.integers(min_value=0, max_value=2 ** 64))
    @settings(max_examples=80, deadline=None)
    def test_uvarint_round_trip(self, value):
        out = bytearray()
        bf.write_uvarint(out, value)
        decoded, pos = bf.read_uvarint(bytes(out), 0)
        assert decoded == value
        assert pos == len(out)

    @given(st.integers(min_value=-(2 ** 63), max_value=2 ** 63))
    @settings(max_examples=80, deadline=None)
    def test_svarint_round_trip(self, value):
        out = bytearray()
        bf.write_svarint(out, value)
        decoded, pos = bf.read_svarint(bytes(out), 0)
        assert decoded == value
        assert pos == len(out)

    def test_small_values_are_one_byte(self):
        out = bytearray()
        bf.write_uvarint(out, 127)
        assert len(out) == 1

    def test_truncated_uvarint_raises(self):
        out = bytearray()
        bf.write_uvarint(out, 1 << 40)
        with pytest.raises(BinaryFormatError):
            bf.read_uvarint(bytes(out[:-1]), 0)

    @given(st.lists(st.integers(min_value=0, max_value=2 ** 40), max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_varint_block_round_trip(self, values):
        out = bytearray()
        for value in values:
            bf.write_uvarint(out, value)
        assert bf._read_varint_block(bytes(out)) == values

    def test_varint_block_truncation_raises(self):
        out = bytearray()
        bf.write_uvarint(out, 1 << 30)
        with pytest.raises(BinaryFormatError):
            bf._read_varint_block(bytes(out[:-1]))


class TestFrameParser:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=0x0F),
                st.binary(max_size=200),
            ),
            min_size=1,
            max_size=8,
        ),
        st.integers(min_value=1, max_value=64),
    )
    @settings(max_examples=60, deadline=None)
    def test_frames_survive_any_feed_chunking(self, frames, chunk_size):
        wire = bytearray()
        for tag, payload in frames:
            bf.write_frame(wire, tag, payload)
        parser = FrameParser()
        seen = []
        for offset in range(0, len(wire), chunk_size):
            parser.feed(bytes(wire[offset : offset + chunk_size]))
            while True:
                frame = parser.next_frame()
                if frame is None:
                    break
                seen.append(frame)
        assert seen == [(tag, payload) for tag, payload in frames]
        assert parser.pending == 0

    def test_oversized_frame_rejected_before_buffering(self):
        wire = bytearray()
        wire.append(0x02)
        bf.write_uvarint(wire, 1 << 40)  # a length no one should honour
        parser = FrameParser()
        parser.feed(bytes(wire))
        with pytest.raises(BinaryFormatError):
            parser.next_frame()


# -- hypothesis document strategies -------------------------------------------

_label_text = st.text(max_size=12)
_counts = st.dictionaries(
    st.integers(min_value=0, max_value=500).map(str),
    st.integers(min_value=0, max_value=1 << 32),
    max_size=8,
)


@st.composite
def whomp_documents(draw):
    grammars = {}
    for name in draw(
        st.sets(st.sampled_from(["instruction", "group", "object", "offset"]),
                min_size=1)
    ):
        rule_ids = draw(
            st.sets(st.integers(min_value=0, max_value=40), min_size=1,
                    max_size=5)
        )
        productions = {}
        for rule_id in rule_ids:
            symbols = draw(
                st.lists(
                    st.one_of(
                        st.integers(-(1 << 40), 1 << 40).map(
                            lambda v: ["T", v]
                        ),
                        st.integers(0, 60).map(lambda v: ["R", v]),
                    ),
                    max_size=6,
                )
            )
            productions[str(rule_id)] = symbols
        grammars[name] = {
            "start": draw(st.sampled_from(sorted(rule_ids))),
            "productions": productions,
        }
    return {
        "format": "whomp",
        "version": 1,
        "access_count": draw(st.integers(0, 1 << 32)),
        "capture_completeness": draw(
            st.floats(0.0, 1.0, allow_nan=False)
        ),
        "quarantined": draw(st.integers(0, 1000)),
        "grammars": grammars,
        "base_addresses": draw(
            st.lists(
                st.tuples(
                    st.integers(-8, 100),
                    st.integers(0, 100),
                    st.integers(0, 1 << 48),
                ).map(list),
                max_size=10,
            )
        ),
        "lifetimes": draw(_lifetime_rows()),
        "group_labels": draw(
            st.dictionaries(
                st.integers(-8, 100).map(str), _label_text, max_size=6
            )
        ),
    }


@st.composite
def _lifetime_rows(draw):
    rows = []
    for __ in range(draw(st.integers(0, 6))):
        alloc = draw(st.integers(0, 1 << 32))
        rows.append(
            [
                draw(st.integers(-8, 100)),
                draw(st.integers(0, 100)),
                alloc,
                draw(st.one_of(st.none(), st.integers(0, 1 << 32))),
                draw(st.integers(0, 1 << 32)),
            ]
        )
    return rows


@st.composite
def _overflow(draw):
    dims = draw(st.integers(0, 3))
    if dims == 0:
        return {"count": draw(st.integers(0, 1 << 20)), "min": None,
                "max": None, "granularity": None}
    ints = st.integers(-(1 << 40), 1 << 40)
    return {
        "count": draw(st.integers(0, 1 << 20)),
        "min": draw(st.lists(ints, min_size=dims, max_size=dims)),
        "max": draw(st.lists(ints, min_size=dims, max_size=dims)),
        "granularity": draw(st.lists(ints, min_size=dims, max_size=dims)),
    }


@st.composite
def _entries(draw):
    entries = []
    pairs = draw(
        st.sets(
            st.tuples(st.integers(0, 200), st.integers(-8, 100)), max_size=6
        )
    )
    for instruction, group in sorted(pairs):
        lmads = []
        for __ in range(draw(st.integers(0, 3))):
            dims = draw(st.integers(0, 4))
            ints = st.integers(-(1 << 40), 1 << 40)
            lmads.append(
                [
                    draw(st.lists(ints, min_size=dims, max_size=dims)),
                    draw(st.lists(ints, min_size=dims, max_size=dims)),
                    draw(st.integers(0, 1 << 32)),
                ]
            )
        entries.append(
            {
                "instruction": instruction,
                "group": group,
                "total": draw(st.integers(0, 1 << 32)),
                "summarized": draw(st.booleans()),
                "lmads": lmads,
                "overflow": draw(_overflow()),
            }
        )
    return entries


@st.composite
def leap_documents(draw):
    entries = draw(_entries())
    kinds = {
        str(e["instruction"]): draw(st.sampled_from(["load", "store"]))
        for e in entries
    }
    return {
        "format": "leap",
        "version": 1,
        "budget": draw(st.integers(0, 1 << 20)),
        "access_count": draw(st.integers(0, 1 << 32)),
        "capture_completeness": draw(st.floats(0.0, 1.0, allow_nan=False)),
        "quarantined": draw(st.integers(0, 1000)),
        "entries": entries,
        "kinds": kinds,
        "exec_counts": draw(_counts),
        "group_labels": draw(
            st.dictionaries(
                st.integers(-8, 100).map(str), _label_text, max_size=6
            )
        ),
        "lifetimes": draw(_lifetime_rows()),
    }


@st.composite
def dependence_documents(draw):
    pairs = draw(
        st.sets(
            st.tuples(st.integers(0, 300), st.integers(0, 300)), max_size=8
        )
    )
    return {
        "format": "dependence",
        "version": 1,
        "conflicts": [
            [store, load, draw(st.integers(1, 1 << 32))]
            for store, load in sorted(pairs)
        ],
        "load_counts": draw(_counts),
        "store_counts": draw(_counts),
    }


# -- document round trips -----------------------------------------------------


class TestDocumentRoundTrip:
    @given(whomp_documents())
    @settings(max_examples=60, deadline=None)
    def test_whomp(self, document):
        assert decode_document(encode_document(document)) == document

    @given(leap_documents())
    @settings(max_examples=60, deadline=None)
    def test_leap(self, document):
        assert decode_document(encode_document(document)) == document

    @given(dependence_documents())
    @settings(max_examples=60, deadline=None)
    def test_dependence(self, document):
        assert decode_document(encode_document(document)) == document

    @given(leap_documents())
    @settings(max_examples=20, deadline=None)
    def test_binary_equals_json_document(self, document):
        """The two encodings decode to the same document dict."""
        via_json = json.loads(json.dumps(document))
        via_binary = decode_document(encode_document(document))
        assert via_binary == via_json

    def test_trace_documents_stay_json(self):
        with pytest.raises(BinaryFormatError):
            encode_document({"format": "trace", "version": 1})


class TestCorruptionDetection:
    @given(leap_documents(), st.data())
    @settings(max_examples=40, deadline=None)
    def test_any_truncation_raises(self, document, data):
        encoded = encode_document(document)
        cut = data.draw(st.integers(0, len(encoded) - 1))
        with pytest.raises(BinaryFormatError):
            decode_document(encoded[:cut])

    @given(dependence_documents(), st.data())
    @settings(max_examples=40, deadline=None)
    def test_any_byte_flip_raises(self, document, data):
        encoded = bytearray(encode_document(document))
        index = data.draw(st.integers(0, len(encoded) - 1))
        flip = data.draw(st.integers(1, 255))
        encoded[index] ^= flip
        with pytest.raises(BinaryFormatError):
            decode_document(bytes(encoded))

    def test_header_kind_corruption_rejected(self):
        document = {
            "format": "dependence", "version": 1,
            "conflicts": [], "load_counts": {}, "store_counts": {},
        }
        encoded = bytearray(encode_document(document))
        # the version uvarint sits right after the HEADER frame preamble
        with pytest.raises(BinaryFormatError):
            bf.decode_document(
                bytes(encoded).replace(b"dependence", b"dependencf")
            )


class TestSniffing:
    def test_sniff_kind_reads_binary_headers(self):
        document = {
            "format": "dependence", "version": 1,
            "conflicts": [], "load_counts": {}, "store_counts": {},
        }
        assert sniff_kind(encode_document(document)) == "dependence"

    def test_sniff_kind_passes_on_json(self):
        assert sniff_kind(b'{"format": "leap"}') is None

    def test_sniff_kind_rejects_torn_magic(self):
        encoded = encode_document(
            {"format": "dependence", "version": 1,
             "conflicts": [], "load_counts": {}, "store_counts": {}}
        )
        with pytest.raises(BinaryFormatError):
            sniff_kind(encoded[:4])

    def test_profile_io_sniff_format_routes_both(self):
        document = {
            "format": "dependence", "version": 1,
            "conflicts": [], "load_counts": {}, "store_counts": {},
        }
        encoded = encode_document(document)
        assert pio.sniff_format(encoded) == "dependence"
        assert pio.sniff_format(json.dumps(document)) == "dependence"
        assert (
            pio.sniff_format(json.dumps(document).encode()) == "dependence"
        )


# -- streams ------------------------------------------------------------------


def _stream_bytes(documents, close=True, chunk_size=64):
    chunks = []
    writer = StreamWriter(chunks.append)
    writer.begin()
    for workload, meta, payload in documents:
        writer.send_document(
            workload, payload, meta=meta, chunk_size=chunk_size
        )
    if close:
        writer.close()
    return b"".join(chunks)


class TestStream:
    @given(
        st.lists(
            st.tuples(
                st.text(min_size=1, max_size=10),
                st.dictionaries(st.text(max_size=6), st.integers(0, 100),
                                max_size=3),
                st.binary(min_size=0, max_size=500),
            ),
            max_size=5,
        ),
        st.integers(min_value=1, max_value=97),
    )
    @settings(max_examples=50, deadline=None)
    def test_round_trip_across_any_chunking(self, documents, chunk_size):
        wire = _stream_bytes(documents)
        reader = StreamReader()
        events = []
        for offset in range(0, len(wire), chunk_size):
            events.extend(reader.feed(wire[offset : offset + chunk_size]))
        docs = [e for e in events if e[0] == "doc"]
        assert [(w, m, b) for __, w, m, b in docs] == [
            (w, m, b) for w, m, b in documents
        ]
        assert events[-1] == ("end", len(documents))
        summary = reader.summary()
        assert summary["complete"]
        assert summary["capture_completeness"] == 1.0

    def test_torn_tail_degrades_not_raises(self):
        wire = _stream_bytes(
            [("a", {}, b"x" * 300), ("b", {}, b"y" * 300)], close=False
        )
        reader = StreamReader()
        events = reader.feed(wire[: len(wire) - 80])  # kill mid-document
        assert [e[0] for e in events] == ["doc"]
        summary = reader.summary()
        assert not summary["complete"]
        assert summary["torn"] == 1
        assert 0.0 < summary["capture_completeness"] < 1.0

    def test_crc_damage_tears_only_that_document(self):
        payload_a = b"a" * 200
        payload_b = b"b" * 200
        wire = bytearray(
            _stream_bytes(
                [("a", {}, payload_a), ("b", {}, payload_b)],
                chunk_size=1 << 12,
            )
        )
        index = wire.find(payload_a)
        assert index > 0
        wire[index] ^= 0xFF
        reader = StreamReader()
        events = reader.feed(bytes(wire))
        kinds = [e[0] for e in events]
        assert kinds == ["torn", "doc", "end"]
        assert events[1][1] == "b"
        summary = reader.summary()
        assert not summary["complete"]
        assert summary["documents"] == 1

    def test_document_size_cap_enforced(self):
        wire = _stream_bytes([("a", {}, b"z" * 4096)])
        reader = StreamReader(max_document_bytes=1024)
        with pytest.raises(BinaryFormatError):
            reader.feed(wire)


# -- fast grammar expansion ---------------------------------------------------


class TestExpansion:
    def test_matches_iterative_expander(self):
        data = {
            "start": 0,
            "productions": {
                "0": [["R", 1], ["R", 1], ["T", 7]],
                "1": [["T", 1], ["T", 2]],
            },
        }
        fast = bf.expand_productions_fast(data)
        slow = pio._expand_productions(data)
        assert fast == slow == [1, 2, 1, 2, 7]

    def test_grammar_bomb_rejected_before_expansion(self):
        # each rule doubles: 2**40 symbols claimed from 40 rules
        productions = {"40": [["T", 0], ["T", 0]]}
        for rule in range(39, -1, -1):
            productions[str(rule)] = [
                ["R", rule + 1], ["R", rule + 1]
            ]
        data = {"start": 0, "productions": productions}
        with pytest.raises(BinaryFormatError):
            bf.expand_productions_fast(data, max_symbols=10_000)

    def test_cycle_rejected(self):
        data = {"start": 0, "productions": {"0": [["R", 0]]}}
        with pytest.raises(BinaryFormatError):
            bf.expand_productions_fast(data)

    def test_undefined_rule_rejected(self):
        data = {"start": 0, "productions": {"0": [["R", 9]]}}
        with pytest.raises(BinaryFormatError):
            bf.expand_productions_fast(data)
