"""Separation and Compression Component (SCC).

"The SCC first separates the stream into multiple substreams (by
horizontal decomposition, vertical decomposition, or both).  It then
sends the substreams into a stream compressor." (Section 2.3)

Two concrete SCCs are provided, one per profiler:

* :class:`HorizontalSequiturSCC` -- WHOMP's: horizontal decomposition
  along the four tuple dimensions, one Sequitur grammar per dimension.
* :class:`VerticalLMADSCC` -- LEAP's: vertical decomposition by
  instruction-id then group, one bounded LMAD compressor per
  ``(instruction, group)`` sub-stream over (object, offset, time)
  triples.

Both are *online*: they consume one :class:`ObjectRelativeAccess` at a
time, so they can sit behind an :class:`~repro.core.cdc.OnlineCDC` or be
fed from an offline translated stream.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from repro.compression.lmad import DEFAULT_BUDGET, LMADCompressor, LMADProfileEntry
from repro.compression.sequitur import SequiturGrammar
from repro.core.events import AccessKind
from repro.core.tuples import DIMENSIONS, ObjectRelativeAccess


class HorizontalSequiturSCC:
    """WHOMP's SCC: four dimension streams, four stream compressors.

    "The SCC first decomposes the object-relative stream horizontally
    along all four dimensions (instruction ID, group, object and
    offset).  Each of these streams is then fed into a separate Sequitur
    compressor." (Section 3.1)

    The compressor is pluggable (Section 2.3 lists Sequitur, linear
    compression "and others"); any factory producing objects with
    ``feed``/``expand``/``size``/``size_bytes_varint`` works --
    :class:`~repro.compression.rle.DeltaRleCodec` is the built-in
    alternative used by the compressor ablation.
    """

    def __init__(self, compressor=SequiturGrammar) -> None:
        self.grammars: Dict[str, object] = {
            name: compressor() for name in DIMENSIONS
        }

    def consume(self, access: ObjectRelativeAccess) -> None:
        self.grammars["instruction"].feed(access.instruction_id)
        self.grammars["group"].feed(access.group)
        self.grammars["object"].feed(access.object_serial)
        self.grammars["offset"].feed(access.offset)

    # -- staged interface (telemetry-timed profiling) ------------------
    #
    # ``consume`` interleaves decomposition and compression per access;
    # the staged pair below runs each phase over the whole stream so the
    # profilers can time them as separate spans.  Output is identical.

    def decompose(
        self, accesses: Iterable[ObjectRelativeAccess]
    ) -> Dict[str, List[int]]:
        """Horizontal decomposition: the four dimension streams."""
        accesses = list(accesses)
        return {
            "instruction": [a.instruction_id for a in accesses],
            "group": [a.group for a in accesses],
            "object": [a.object_serial for a in accesses],
            "offset": [a.offset for a in accesses],
        }

    def compress_streams(self, streams: Dict[str, List[int]]) -> None:
        """Feed each decomposed dimension stream to its compressor."""
        for name, values in streams.items():
            feed = self.grammars[name].feed
            for value in values:
                feed(value)

    def adopt_grammars(self, grammars: Dict[str, object]) -> None:
        """Install compressors produced elsewhere (pool workers): the
        merge step of the parallel WHOMP path.  Every dimension must be
        covered, and dimension order is preserved."""
        missing = [name for name in DIMENSIONS if name not in grammars]
        if missing:
            raise ValueError(f"missing dimension grammars: {missing}")
        self.grammars = {name: grammars[name] for name in DIMENSIONS}

    def total_size(self) -> int:
        """Combined grammar size across the four dimensions."""
        return sum(grammar.size() for grammar in self.grammars.values())

    def total_size_bytes(self, bytes_per_symbol: int = 4) -> int:
        return sum(
            grammar.size_bytes(bytes_per_symbol) for grammar in self.grammars.values()
        )


class VerticalLMADSCC:
    """LEAP's SCC: per-(instruction, group) LMAD compression.

    "the SCC decomposes the stream vertically by instruction id and then
    by group to get a number of (object, offset, time) streams.  These
    streams are then sent to a linear compressor" (Section 4.1).

    The compressor budget is the paper's 30 descriptors per sub-stream.
    Load/store kind and per-instruction execution counts are tracked on
    the side for the post-processors.
    """

    #: dimension order inside each compressed triple
    TRIPLE_DIMS = ("object", "offset", "time")

    def __init__(
        self,
        budget: int = DEFAULT_BUDGET,
        overflow_cap: "int | None" = None,
    ) -> None:
        self.budget = budget
        self.overflow_cap = overflow_cap
        self._compressors: Dict[Tuple[int, int], LMADCompressor] = {}
        self._kinds: Dict[int, AccessKind] = {}
        self._exec_counts: Dict[int, int] = {}
        self._adopted: "Dict[Tuple[int, int], LMADProfileEntry] | None" = None

    def consume(self, access: ObjectRelativeAccess) -> None:
        key = (access.instruction_id, access.group)
        compressor = self._compressors.get(key)
        if compressor is None:
            compressor = LMADCompressor(
                dims=3, budget=self.budget, overflow_cap=self.overflow_cap
            )
            self._compressors[key] = compressor
        compressor.feed((access.object_serial, access.offset, access.time))
        self._kinds.setdefault(access.instruction_id, access.kind)
        self._exec_counts[access.instruction_id] = (
            self._exec_counts.get(access.instruction_id, 0) + 1
        )

    # -- staged interface (telemetry-timed profiling) ------------------

    def decompose(
        self, accesses: Iterable[ObjectRelativeAccess]
    ) -> Dict[Tuple[int, int], List[Tuple[int, int, int]]]:
        """Vertical decomposition: (instruction, group) -> triple stream.

        Also tracks the side tables (kinds, execution counts) exactly as
        per-access :meth:`consume` would.
        """
        substreams: Dict[Tuple[int, int], List[Tuple[int, int, int]]] = {}
        for access in accesses:
            key = (access.instruction_id, access.group)
            stream = substreams.get(key)
            if stream is None:
                stream = substreams[key] = []
            stream.append((access.object_serial, access.offset, access.time))
            self._kinds.setdefault(access.instruction_id, access.kind)
            self._exec_counts[access.instruction_id] = (
                self._exec_counts.get(access.instruction_id, 0) + 1
            )
        return substreams

    def compress_streams(
        self, substreams: Dict[Tuple[int, int], List[Tuple[int, int, int]]]
    ) -> None:
        """Feed each decomposed sub-stream to its LMAD compressor."""
        for key, triples in substreams.items():
            compressor = self._compressors.get(key)
            if compressor is None:
                compressor = LMADCompressor(
                    dims=3, budget=self.budget, overflow_cap=self.overflow_cap
                )
                self._compressors[key] = compressor
            compressor.feed_all(triples)

    def adopt_entries(
        self, entries: Dict[Tuple[int, int], LMADProfileEntry]
    ) -> None:
        """Install already-closed entries (pool workers): the merge step
        of the parallel LEAP path.  :meth:`finish` then returns them."""
        self._adopted = dict(entries)

    def finish(self) -> Dict[Tuple[int, int], LMADProfileEntry]:
        """Close all compressors and return the entries."""
        if self._adopted is not None:
            return dict(self._adopted)
        return {key: comp.finish() for key, comp in self._compressors.items()}

    @property
    def kinds(self) -> Dict[int, AccessKind]:
        return dict(self._kinds)

    @property
    def exec_counts(self) -> Dict[int, int]:
        return dict(self._exec_counts)
