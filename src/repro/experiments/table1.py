"""Table 1: LEAP profile size, speed, and sample quality.

Per benchmark:

* **compression ratio** -- raw trace bytes over serialized LEAP profile
  bytes (the paper averages 3539x on billion-access SPEC traces; our
  traces are 3-4 orders of magnitude shorter, so the ratio is smaller
  by roughly that factor while the cross-benchmark ordering holds);
* **dilation factor** -- wall-clock of the run with the online LEAP
  pipeline attached over the uninstrumented run (paper average: 11.5x);
* **sample quality** -- percent of accesses captured inside LMADs and
  percent of instructions completely captured (paper averages: 46.5%
  and 40.5%).
"""

from __future__ import annotations

import time
from typing import Dict, List

from repro.analysis.report import format_table, percent, ratio
from repro.experiments.context import SuiteContext
from repro.profilers.leap import LeapProfiler
from repro.runtime.process import Process
from repro.workloads.registry import PAPER_NAMES

#: Paper's Table 1 values: (compression, dilation, accesses %, instrs %).
PAPER_TABLE = {
    "gzip": (1169, 15, 0.571, 0.408),
    "vpr": (3935, 16, 0.347, 0.528),
    "mcf": (9993, 7, 0.065, 0.408),
    "crafty": (967, 9, 0.503, 0.417),
    "parser": (667, 7, 0.763, 0.082),
    "bzip2": (7152, 14, 0.316, 0.506),
    "twolf": (856, 15, 0.665, 0.398),
}


def measure_dilation(context: SuiteContext, name: str, repeats: int = 1) -> float:
    """Wall-clock ratio of the LEAP-instrumented run over the native run."""
    workload = context.workload(name)
    native = 0.0
    instrumented = 0.0
    for __ in range(repeats):
        start = time.perf_counter()
        process = Process(record_trace=False)
        workload.run(process)
        process.finish()
        native += time.perf_counter() - start

        start = time.perf_counter()
        process = Process(record_trace=False)
        session = LeapProfiler().attach(process.bus)
        workload.run(process)
        process.finish()
        session.finish()
        instrumented += time.perf_counter() - start
    return instrumented / native if native else float("inf")


def run(context: SuiteContext, measure_speed: bool = True) -> Dict[str, object]:
    rows: List[Dict[str, object]] = []
    for name in context.benchmarks:
        trace = context.trace(name)
        leap = context.leap(name)
        rows.append(
            {
                "benchmark": name,
                "trace_bytes": trace.raw_size_bytes(),
                "profile_bytes": leap.size_bytes(),
                "compression": leap.compression_ratio(trace.raw_size_bytes()),
                "dilation": measure_dilation(context, name) if measure_speed else None,
                "accesses_captured": leap.accesses_captured(),
                "instructions_captured": leap.instructions_captured(),
            }
        )
    averages = {
        "compression": sum(r["compression"] for r in rows) / len(rows),
        "dilation": (
            sum(r["dilation"] for r in rows) / len(rows) if measure_speed else None
        ),
        "accesses_captured": sum(r["accesses_captured"] for r in rows) / len(rows),
        "instructions_captured": sum(r["instructions_captured"] for r in rows)
        / len(rows),
    }
    return {
        "table": "1",
        "rows": rows,
        "averages": averages,
        "paper": PAPER_TABLE,
    }


def render(results: Dict[str, object]) -> str:
    body = []
    for row in results["rows"]:
        paper = PAPER_TABLE[row["benchmark"]]
        body.append(
            [
                PAPER_NAMES.get(row["benchmark"], row["benchmark"]),
                ratio(row["compression"]),
                ratio(row["dilation"]) if row["dilation"] is not None else "-",
                f"{percent(row['accesses_captured'])} ({percent(paper[2])})",
                f"{percent(row['instructions_captured'])} ({percent(paper[3])})",
            ]
        )
    averages = results["averages"]
    body.append(
        [
            "Average",
            ratio(averages["compression"]),
            ratio(averages["dilation"]) if averages["dilation"] is not None else "-",
            f"{percent(averages['accesses_captured'])} (46.5%)",
            f"{percent(averages['instructions_captured'])} (40.5%)",
        ]
    )
    return format_table(
        [
            "benchmark",
            "compression",
            "dilation",
            "accesses captured (paper)",
            "instrs captured (paper)",
        ],
        body,
        title="Table 1: LEAP profile size, speed, and sample quality",
    )


def main() -> None:
    print(render(run(SuiteContext())))


if __name__ == "__main__":
    main()
