"""PROFSTORE core: blobs, cache, store, and the ingest fault drill."""

import json
import os
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.events import AccessKind
from repro.core.profile_io import ProfileFormatError, dumps, dumps_bytes, loads
from repro.profilers.leap import LeapProfiler
from repro.profilers.whomp import WhompProfiler
from repro.resilience import FaultInjector, parse_fault_spec
from repro.runtime.process import Process
from repro.store import LRUCache, BlobStore, ProfileStore, sha256_hex


@pytest.fixture()
def leap_text(simple_trace):
    return dumps(LeapProfiler().profile(simple_trace))


@pytest.fixture()
def whomp_text(simple_trace):
    return dumps(WhompProfiler().profile(simple_trace))


def make_trace(offsets):
    """A tiny trace whose serialized profile varies with ``offsets``."""
    process = Process()
    ld = process.instruction("ld", AccessKind.LOAD)
    block = process.malloc("site", 512, type_name="long[]")
    for offset in offsets:
        process.load(ld, block + (offset % 64) * 8)
    process.free(block)
    process.finish()
    return process.trace


# -- blob layer ---------------------------------------------------------------


class TestBlobStore:
    def test_put_get_roundtrip(self, tmp_path):
        blobs = BlobStore(str(tmp_path / "objects"))
        data = b'{"format": "fake"} and some bytes \x00\xff'
        digest = blobs.put(data)
        assert digest == sha256_hex(data)
        assert blobs.get(digest) == data
        assert blobs.contains(digest)
        assert len(blobs) == 1

    def test_put_is_idempotent_and_deduplicates(self, tmp_path):
        blobs = BlobStore(str(tmp_path / "objects"))
        assert blobs.put(b"same") == blobs.put(b"same")
        assert len(blobs) == 1

    def test_path_rejects_non_digests(self, tmp_path):
        blobs = BlobStore(str(tmp_path / "objects"))
        with pytest.raises(ValueError):
            blobs.path("../../etc/passwd")
        with pytest.raises(ValueError):
            blobs.path("abc123")  # too short
        assert not blobs.contains("not-a-digest")

    def test_garbage_on_disk_raises_format_error(self, tmp_path):
        blobs = BlobStore(str(tmp_path / "objects"))
        digest = blobs.put(b"precious profile bytes")
        with open(blobs.path(digest), "wb") as handle:
            handle.write(b"not zlib at all")
        with pytest.raises(ProfileFormatError):
            blobs.get(digest)

    def test_content_digest_mismatch_raises_format_error(self, tmp_path):
        """Valid zlib whose content hashes differently is still corrupt."""
        import zlib

        blobs = BlobStore(str(tmp_path / "objects"))
        digest = blobs.put(b"original content")
        with open(blobs.path(digest), "wb") as handle:
            handle.write(zlib.compress(b"swapped content"))
        with pytest.raises(ProfileFormatError, match="does not match"):
            blobs.get(digest)

    def test_missing_blob_raises_format_error(self, tmp_path):
        blobs = BlobStore(str(tmp_path / "objects"))
        with pytest.raises(ProfileFormatError, match="unreadable"):
            blobs.get(sha256_hex(b"never stored"))

    def test_stray_files_are_not_digests(self, tmp_path):
        """Regression: a foreign file in a fan dir used to surface from
        digests() as a 'digest' that path() then rejected mid-gc."""
        blobs = BlobStore(str(tmp_path / "objects"))
        digest = blobs.put(b"real blob")
        fan_dir = os.path.dirname(blobs.path(digest))
        for name in ("README.txt", digest[2:] + ".bak", "zz" + "0" * 60):
            with open(os.path.join(fan_dir, name), "w") as handle:
                handle.write("not a blob")
        os.mkdir(os.path.join(str(tmp_path / "objects"), "notafan"))
        assert list(blobs.digests()) == [digest]
        assert len(blobs) == 1
        assert blobs.stored_bytes() == os.path.getsize(blobs.path(digest))


# -- cache layer --------------------------------------------------------------


class TestLRUCache:
    def test_get_or_load_hits_after_miss(self):
        cache = LRUCache(capacity=4)
        calls = []
        for __ in range(3):
            assert cache.get_or_load("k", lambda: calls.append(1) or "v") == "v"
        assert len(calls) == 1
        assert cache.stats() == (2, 1, 0)
        assert cache.hit_rate == pytest.approx(2 / 3)

    def test_lru_eviction_order(self):
        cache = LRUCache(capacity=2)
        cache.get_or_load("a", lambda: 1)
        cache.get_or_load("b", lambda: 2)
        cache.get_or_load("a", lambda: 1)  # refresh a; b is now oldest
        cache.get_or_load("c", lambda: 3)  # evicts b
        assert cache.get_or_load("a", lambda: "reloaded") == 1
        assert cache.get_or_load("b", lambda: "reloaded") == "reloaded"
        assert cache.evictions >= 1

    def test_invalidate_forces_reload(self):
        cache = LRUCache()
        cache.get_or_load("k", lambda: "old")
        cache.invalidate("k")
        assert cache.get_or_load("k", lambda: "new") == "new"

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            LRUCache(capacity=0)


# -- store layer --------------------------------------------------------------


class TestProfileStore:
    def test_ingest_get_bit_identical(self, tmp_path, leap_text, whomp_text):
        store = ProfileStore(str(tmp_path))
        for text, kind in ((leap_text, "leap"), (whomp_text, "whomp")):
            record = store.ingest_text(text, "simple", meta={"seed": 0})
            assert record.kind == kind
            assert store.get_bytes(record.run_id) == text.encode("utf-8")
            assert store.get_text(record.run_id) == text

    def test_kind_is_sniffed_not_trusted(self, tmp_path, leap_text):
        store = ProfileStore(str(tmp_path))
        record = store.ingest_text(leap_text, "simple")
        assert record.kind == "leap"
        assert store.run(record.run_id).size_bytes == len(leap_text)

    def test_same_content_two_runs_one_blob(self, tmp_path, leap_text):
        store = ProfileStore(str(tmp_path))
        first = store.ingest_text(leap_text, "simple")
        second = store.ingest_text(leap_text, "simple")
        assert first.run_id != second.run_id
        assert first.digest == second.digest
        assert store.stats()["runs"] == 2
        assert store.stats()["blobs"] == 1

    def test_manifest_survives_reopen(self, tmp_path, leap_text, whomp_text):
        store = ProfileStore(str(tmp_path))
        store.ingest_text(leap_text, "simple", meta={"note": "first"})
        store.ingest_text(whomp_text, "simple")
        reopened = ProfileStore(str(tmp_path))
        assert [r.run_id for r in reopened.runs()] == ["r000001", "r000002"]
        assert reopened.run("r000001").meta == {
            "note": "first",
            "encoding": "json",
        }
        assert reopened.get_text("r000001") == leap_text

    def test_torn_manifest_line_is_skipped(self, tmp_path, leap_text):
        store = ProfileStore(str(tmp_path))
        store.ingest_text(leap_text, "simple")
        with open(store.manifest_path, "a") as handle:
            handle.write('{"run_id": "r9, TORN')
        reopened = ProfileStore(str(tmp_path))
        assert [r.run_id for r in reopened.runs()] == ["r000001"]
        # the next ingest heals the file: the torn line is gone for good
        reopened.ingest_text(leap_text, "simple")
        with open(store.manifest_path) as handle:
            assert "TORN" not in handle.read()

    def test_ingest_rejects_undecodable_documents(self, tmp_path):
        store = ProfileStore(str(tmp_path))
        for bad in (
            b"\xff\xfe not utf-8",
            b"not json",
            b'{"format": "unknown-kind"}',
            b'{"no_format_field": 1}',
        ):
            with pytest.raises(ProfileFormatError):
                store.ingest_bytes(bad, "simple")
        assert store.stats()["runs"] == 0
        assert store.stats()["blobs"] == 0

    def test_binary_ingest_round_trips(self, tmp_path, simple_trace):
        store = ProfileStore(str(tmp_path))
        profile = LeapProfiler().profile(simple_trace)
        record = store.ingest_profile(profile, "simple", fmt="binary")
        assert record.kind == "leap"
        assert record.meta["encoding"] == "binary"
        assert store.get_bytes(record.run_id)[:1] == b"\x89"
        # the decoded profile and document match the JSON path exactly
        assert json.loads(dumps(store.get(record.run_id))) == json.loads(
            dumps(profile)
        )
        document = store.get_document(record.run_id)
        assert document == json.loads(dumps(profile))
        with pytest.raises(ProfileFormatError, match="binary"):
            store.get_text(record.run_id)

    def test_json_ingest_records_encoding(self, tmp_path, leap_text):
        store = ProfileStore(str(tmp_path))
        record = store.ingest_text(leap_text, "simple")
        assert record.meta["encoding"] == "json"
        assert store.get_text(record.run_id) == leap_text
        assert store.get_document(record.run_id) == json.loads(leap_text)

    def test_truncated_binary_rejected_at_the_door(self, tmp_path, simple_trace):
        store = ProfileStore(str(tmp_path))
        data = dumps_bytes(LeapProfiler().profile(simple_trace), "binary")
        with pytest.raises(ProfileFormatError):
            store.ingest_bytes(data[: len(data) - 3], "simple")
        assert store.stats()["blobs"] == 0

    def test_ingest_file_defaults_workload_to_stem(self, tmp_path, leap_text):
        path = tmp_path / "gzip.leap.json"
        path.write_text(leap_text)
        store = ProfileStore(str(tmp_path / "store"))
        record = store.ingest_file(str(path))
        assert record.workload == "gzip"
        with pytest.raises(ProfileFormatError):
            store.ingest_file(str(tmp_path / "missing.leap.json"))

    def test_resolve_selectors(self, tmp_path, leap_text, whomp_text):
        store = ProfileStore(str(tmp_path))
        store.ingest_text(leap_text, "gzip")
        store.ingest_text(whomp_text, "gzip")
        second_leap = dumps(LeapProfiler().profile(make_trace(range(32))))
        store.ingest_text(second_leap, "gzip")
        assert store.resolve("r000002").kind == "whomp"
        latest = store.resolve("gzip@leap")
        assert latest.run_id == "r000003"
        assert store.resolve("gzip@leap~1").run_id == "r000001"
        assert store.resolve(latest.digest[:12]).run_id == latest.run_id
        for bad in ("gzip@leap~7", "gzip@nope", "deadbeefdead", "r999999"):
            with pytest.raises(KeyError):
                store.resolve(bad)

    def test_get_decodes_through_cache(self, tmp_path, leap_text):
        store = ProfileStore(str(tmp_path))
        record = store.ingest_text(leap_text, "simple")
        first = store.get(record.run_id)
        second = store.get(record.run_id)
        assert first is second  # cached object, not a re-decode
        assert store.cache.stats()[:2] == (1, 1)
        assert dumps(first) == leap_text

    def test_corrupted_blob_surfaces_as_format_error(
        self, tmp_path, leap_text
    ):
        store = ProfileStore(str(tmp_path))
        record = store.ingest_text(leap_text, "simple")
        path = store.blobs.path(record.digest)
        with open(path, "r+b") as handle:
            handle.seek(4)
            byte = handle.read(1)
            handle.seek(4)
            handle.write(bytes([byte[0] ^ 0x40]))
        with pytest.raises(ProfileFormatError):
            store.get_bytes(record.run_id)
        with pytest.raises(ProfileFormatError):
            store.get(record.run_id)

    def test_drop_run_and_gc(self, tmp_path, leap_text, whomp_text):
        store = ProfileStore(str(tmp_path))
        keep = store.ingest_text(leap_text, "simple")
        drop = store.ingest_text(whomp_text, "simple")
        store.drop_run(drop.run_id)
        with pytest.raises(KeyError):
            store.run(drop.run_id)
        stats = store.gc()
        assert stats.scanned == 2
        assert stats.removed == 1
        assert stats.freed_bytes > 0
        assert store.get_text(keep.run_id) == leap_text
        assert store.stats()["blobs"] == 1
        # a second pass finds nothing to do
        assert store.gc().removed == 0

    def test_concurrent_ingest_is_consistent(self, tmp_path):
        """Eight threads ingesting distinct documents: no lost or
        duplicated manifest entries, every round-trip bit-identical."""
        texts = [
            dumps(LeapProfiler().profile(make_trace(range(0, 64, step))))
            for step in range(1, 9)
        ]
        assert len({t for t in texts}) == len(texts)
        store = ProfileStore(str(tmp_path))
        barrier = threading.Barrier(len(texts))
        errors = []

        def ingest(index):
            barrier.wait()
            try:
                for __ in range(4):
                    store.ingest_text(texts[index], f"w{index}")
            except Exception as exc:  # noqa: BLE001 - collected for assert
                errors.append(exc)

        threads = [
            threading.Thread(target=ingest, args=(i,))
            for i in range(len(texts))
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        records = store.runs()
        assert len(records) == len(texts) * 4
        assert len({r.run_id for r in records}) == len(records)
        for index, text in enumerate(texts):
            assert store.get_text(f"w{index}@leap") == text
        # the manifest on disk agrees with the in-memory view
        reopened = ProfileStore(str(tmp_path))
        assert len(reopened.runs()) == len(records)


# -- property: ingest -> get is bit-identical for arbitrary profiles ----------


@settings(max_examples=25, deadline=None)
@given(
    offsets=st.lists(st.integers(min_value=0, max_value=63), min_size=1,
                     max_size=40),
    profiler=st.sampled_from(["leap", "whomp"]),
)
def test_roundtrip_property(tmp_path_factory, offsets, profiler):
    trace = make_trace(offsets)
    cls = LeapProfiler if profiler == "leap" else WhompProfiler
    text = dumps(cls().profile(trace))
    store = ProfileStore(str(tmp_path_factory.mktemp("store")))
    record = store.ingest_text(text, "prop")
    data = store.get_bytes(record.run_id)
    assert data == text.encode("utf-8")
    assert record.digest == sha256_hex(data)
    if profiler == "leap":
        # the decoded form round-trips through the serializer too
        # (WHOMP decodes to a stream dict, which has no re-serializer)
        assert dumps(loads(store.get_text(record.run_id))) == text


# -- fault drill --------------------------------------------------------------


@pytest.mark.faults
class TestIngestFaultDrill:
    def test_flipped_documents_are_rejected_at_the_door(
        self, tmp_path, leap_text, whomp_text
    ):
        injector = FaultInjector(parse_fault_spec("seed=3;flip-profile=4"))
        store = ProfileStore(str(tmp_path))
        for text in (leap_text, whomp_text):
            damaged = injector.corrupt_bytes(text.encode("utf-8"))
            assert damaged != text.encode("utf-8")
            with pytest.raises(ProfileFormatError):
                store.ingest_bytes(damaged, "drill")
        assert store.stats()["runs"] == 0
        assert store.stats()["blobs"] == 0
        assert not os.path.exists(store.manifest_path)

    def test_serve_cli_ingest_drill_exits_nonzero(self, tmp_path, capsys):
        from repro.store.serve_cli import main

        root = str(tmp_path / "store")
        code = main(
            [
                "ingest", "--root", root, "--workloads", "micro.array",
                "--scale", "0.25",
                "--inject-faults", "seed=3;flip-profile=4",
            ]
        )
        assert code == 1
        assert "REJECTED" in capsys.readouterr().err
        assert ProfileStore(root).stats()["runs"] == 0

    def test_clean_serve_cli_ingest_exits_zero(self, tmp_path, capsys):
        from repro.store.serve_cli import main

        root = str(tmp_path / "store")
        code = main(
            ["ingest", "--root", root, "--workloads", "micro.array",
             "--scale", "0.25"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "ingested r000001" in out
        store = ProfileStore(root)
        assert store.stats()["runs"] == 2  # whomp + leap
        assert {r.kind for r in store.runs()} == {"whomp", "leap"}


def test_manifest_lines_are_versioned_json(tmp_path, leap_text):
    store = ProfileStore(str(tmp_path))
    store.ingest_text(leap_text, "simple")
    with open(store.manifest_path) as handle:
        lines = [json.loads(line) for line in handle if line.strip()]
    assert len(lines) == 1
    assert lines[0]["manifest_version"] == 1
    assert lines[0]["workload"] == "simple"
