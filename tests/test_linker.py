"""Tests for the simulated linker and symbol table."""

import pytest

from repro.runtime.linker import Linker, StaticObject, SymbolTable
from repro.runtime.memory import AddressSpace, MemoryError_


def linked(*objects, probe_padding=0):
    space = AddressSpace()
    linker = Linker(space, probe_padding=probe_padding)
    for obj in objects:
        linker.declare(obj)
    return linker.link(), space


class TestStaticObject:
    def test_rejects_zero_size(self):
        with pytest.raises(ValueError):
            StaticObject("x", 0)

    def test_rejects_non_power_of_two_alignment(self):
        with pytest.raises(ValueError):
            StaticObject("x", 8, align=3)


class TestLinker:
    def test_layout_in_declaration_order(self):
        table, __ = linked(StaticObject("a", 100), StaticObject("b", 50))
        assert table["a"].address < table["b"].address

    def test_alignment_honoured(self):
        table, __ = linked(
            StaticObject("a", 3), StaticObject("b", 64, align=64)
        )
        assert table["b"].address % 64 == 0

    def test_objects_do_not_overlap(self):
        table, __ = linked(
            StaticObject("a", 100), StaticObject("b", 200), StaticObject("c", 8)
        )
        symbols = sorted(table, key=lambda s: s.address)
        for left, right in zip(symbols, symbols[1:]):
            assert left.limit <= right.address

    def test_everything_in_static_segment(self):
        table, space = linked(StaticObject("a", 4096), StaticObject("b", 4096))
        for symbol in table:
            assert space.static.contains(symbol.address, symbol.size)

    def test_duplicate_name_rejected(self):
        space = AddressSpace()
        linker = Linker(space)
        linker.declare(StaticObject("x", 8))
        with pytest.raises(MemoryError_):
            linker.declare(StaticObject("x", 16))

    def test_declare_after_link_rejected(self):
        space = AddressSpace()
        linker = Linker(space)
        linker.declare(StaticObject("x", 8))
        linker.link()
        with pytest.raises(MemoryError_):
            linker.declare(StaticObject("y", 8))

    def test_link_is_idempotent(self):
        space = AddressSpace()
        linker = Linker(space)
        linker.declare(StaticObject("x", 8))
        assert linker.link() is linker.link()

    def test_segment_overflow(self):
        space = AddressSpace(static_size=1 << 12)
        linker = Linker(space)
        linker.declare(StaticObject("big", 1 << 20))
        with pytest.raises(MemoryError_):
            linker.link()

    def test_symbol_table_before_link_rejected(self):
        linker = Linker(AddressSpace())
        with pytest.raises(MemoryError_):
            linker.symbol_table

    def test_probe_padding_shifts_statics(self):
        plain, __ = linked(StaticObject("x", 8))
        padded, __ = linked(StaticObject("x", 8), probe_padding=1 << 16)
        # The paper's third artifact: probes grow code, statics move.
        assert padded["x"].address > plain["x"].address

    def test_negative_probe_padding_rejected(self):
        with pytest.raises(ValueError):
            Linker(AddressSpace(), probe_padding=-1)


class TestSymbolTable:
    def test_lookup_api(self):
        table, __ = linked(StaticObject("a", 100))
        assert "a" in table
        assert "b" not in table
        assert len(table) == 1
        assert table["a"].size == 100

    def test_resolve_by_address(self):
        table, __ = linked(StaticObject("a", 100), StaticObject("b", 100))
        a = table["a"]
        assert table.resolve(a.address).name == "a"
        assert table.resolve(a.address + 99).name == "a"
        assert table.resolve(a.limit) != a or table.resolve(a.limit) is None or \
            table.resolve(a.limit).name == "b"

    def test_resolve_miss(self):
        table, space = linked(StaticObject("a", 8))
        assert table.resolve(space.heap.base) is None

    def test_empty_table(self):
        table = SymbolTable()
        assert len(table) == 0
        assert table.resolve(0x1000) is None
