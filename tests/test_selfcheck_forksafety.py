"""REPROLINT fork-safety checking (RL121-RL125)."""

import textwrap

from repro.selfcheck.engine import analyze_modules
from repro.selfcheck.loader import scan_source


def codes(source, path="inline.py"):
    module = scan_source(path, textwrap.dedent(source))
    return [f.code for f in analyze_modules([module])]


class TestRL121DispatchShapes:
    def test_lambda_to_pool_map(self):
        source = """\
        def launch(pool, chunks):
            return pool.map(lambda c: sum(c), chunks)
        """
        assert codes(source) == ["RL121"]

    def test_nested_function_to_pool_map(self):
        source = """\
        def launch(pool, chunks):
            def worker(chunk):
                return sum(chunk)
            return pool.map(worker, chunks)
        """
        assert codes(source) == ["RL121"]

    def test_module_level_function_is_fine(self):
        source = """\
        def worker(chunk):
            return sum(chunk)


        def launch(pool, chunks):
            return pool.map(worker, chunks)
        """
        assert codes(source) == []


class TestWorkerBodyRules:
    def test_captured_global_lock(self):
        source = """\
        # repro: workers
        import threading

        _LOCK = threading.Lock()


        def worker(chunk):
            with _LOCK:
                return sum(chunk)
        """
        assert codes(source) == ["RL122"]

    def test_local_name_shadows_global(self):
        source = """\
        # repro: workers
        import threading

        _LOCK = threading.Lock()


        def worker(chunk):
            _LOCK = threading.Lock()
            with _LOCK:
                return sum(chunk)
        """
        assert codes(source) == []

    def test_unsharable_default_argument(self):
        source = """\
        # repro: workers
        import threading


        def worker(chunk, guard=threading.Lock()):
            return sum(chunk)
        """
        assert codes(source) == ["RL123"]

    def test_global_statement(self):
        source = """\
        # repro: workers
        _TOTAL = 0


        def worker(chunk):
            global _TOTAL
            _TOTAL += sum(chunk)
            return _TOTAL
        """
        assert codes(source) == ["RL124"]

    def test_bare_activation_leaks(self):
        source = """\
        # repro: workers
        from repro.obs.context import TraceContext, activate


        def worker(chunk):
            activate(TraceContext.new())
            return sum(chunk)
        """
        assert codes(source) == ["RL125"]

    def test_with_scoped_activation_is_fine(self):
        source = """\
        # repro: workers
        from repro.obs.context import TraceContext, activate


        def worker(chunk):
            with activate(TraceContext.new()):
                return sum(chunk)
        """
        assert codes(source) == []

    def test_exitstack_enter_context_is_fine(self):
        source = """\
        # repro: workers
        import contextlib

        from repro.obs.context import TraceContext, activate


        def worker(chunk):
            with contextlib.ExitStack() as stack:
                stack.enter_context(activate(TraceContext.new()))
                return sum(chunk)
        """
        assert codes(source) == []

    def test_rules_apply_only_to_workers(self):
        # same body, no workers marker, never dispatched: not a worker
        source = """\
        import threading

        _LOCK = threading.Lock()


        def helper(chunk):
            with _LOCK:
                return sum(chunk)
        """
        assert codes(source) == []

    def test_dispatched_function_is_checked_without_marker(self):
        source = """\
        import threading

        _LOCK = threading.Lock()


        def worker(chunk):
            with _LOCK:
                return sum(chunk)


        def launch(pool, chunks):
            return pool.map(worker, chunks)
        """
        assert codes(source) == ["RL122"]
