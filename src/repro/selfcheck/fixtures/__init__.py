"""Seeded-defect fixtures for the REPROLINT self-test.

Each sibling module is marked ``# repro: fixture`` and plants known
defects annotated with ``# repro: expect(CODE)`` on the exact line the
checker must convict.  ``repro-lint --fixtures`` analyzes this tree
(fixtures included) and fails unless every expectation fires and every
registered code is exercised -- the analyzer's zero-false-negative
proof, mirroring the ``defects_*.mir`` programs MIRCHECK ships.

The fixtures are parsed, never imported: nothing here runs.
"""
