"""Tests for trace characterization (reuse distance, working set)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.tracestats import (
    COLD,
    characterize,
    format_statistics,
    lru_miss_rate_from_distances,
    reuse_distances,
    reuse_histogram,
    working_set_curve,
)
from repro.runtime.cache import CacheConfig, SetAssociativeCache


def brute_force_distances(addresses, line_bytes=64):
    """Reference implementation: scan back for the previous access."""
    out = []
    lines = [a // line_bytes for a in addresses]
    for i, line in enumerate(lines):
        previous = None
        for j in range(i - 1, -1, -1):
            if lines[j] == line:
                previous = j
                break
        if previous is None:
            out.append(COLD)
        else:
            out.append(len(set(lines[previous + 1 : i])))
    return out


class TestReuseDistance:
    def test_first_touch_is_cold(self):
        assert reuse_distances([0]) == [COLD]

    def test_immediate_reuse_is_zero(self):
        assert reuse_distances([0, 0]) == [COLD, 0]

    def test_one_intervening_line(self):
        assert reuse_distances([0, 64, 0]) == [COLD, COLD, 1]

    def test_same_line_not_counted(self):
        # 0, 0, 0: repeated access to one line never raises the distance
        assert reuse_distances([0, 8, 0]) == [COLD, 0, 0]

    def test_classic_pattern(self):
        # lines a b c a: distance of the final a is 2
        assert reuse_distances([0, 64, 128, 0])[-1] == 2

    @settings(max_examples=80, deadline=None)
    @given(st.lists(st.integers(0, 20), max_size=80))
    def test_matches_brute_force(self, lines):
        addresses = [line * 64 for line in lines]
        assert reuse_distances(addresses) == brute_force_distances(addresses)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(0, 30), max_size=120), st.sampled_from([2, 4, 8]))
    def test_predicts_fully_associative_lru(self, lines, capacity):
        """Stack processing theorem: distance >= capacity iff LRU miss."""
        addresses = [line * 64 for line in lines]
        distances = reuse_distances(addresses)
        predicted = lru_miss_rate_from_distances(distances, capacity)
        cache = SetAssociativeCache(
            CacheConfig(capacity * 64, 64, capacity)  # one set: fully assoc.
        )
        for address in addresses:
            cache.access(address)
        if addresses:
            assert predicted == pytest.approx(cache.stats.miss_rate)


class TestHistogram:
    def test_buckets(self):
        histogram = reuse_histogram([COLD, 0, 1, 3, 100, 10_000])
        assert histogram["cold"] == 1
        assert histogram["<1"] == 1
        assert histogram["<2"] == 1
        assert histogram["<4"] == 1
        assert histogram["<128"] == 1
        assert histogram[">=512"] == 1

    def test_total_preserved(self):
        distances = [COLD, 0, 5, 7, 900]
        histogram = reuse_histogram(distances)
        assert sum(histogram.values()) == len(distances)


class TestWorkingSet:
    def test_windows(self):
        addresses = [0, 64, 128, 0] * 2
        curve = working_set_curve(addresses, window=4)
        assert curve == [3, 3]

    def test_tail_window(self):
        curve = working_set_curve([0] * 5, window=4)
        assert curve == [1, 1]

    def test_empty(self):
        assert working_set_curve([]) == []


class TestCharacterize:
    def test_counts(self, simple_trace):
        stats = characterize(simple_trace)
        assert stats.accesses == 16
        assert stats.loads == 8
        assert stats.stores == 8
        assert stats.static_instructions == 2
        assert stats.objects_allocated == 1
        assert stats.groups == 1
        assert stats.peak_live_objects == 1
        assert stats.footprint_bytes == 64 or stats.footprint_bytes == 128

    def test_load_fraction(self, simple_trace):
        assert characterize(simple_trace).load_fraction == pytest.approx(0.5)

    def test_reuse_can_be_skipped(self, simple_trace):
        stats = characterize(simple_trace, with_reuse=False)
        assert stats.reuse == {}

    def test_format(self, simple_trace):
        text = format_statistics(characterize(simple_trace))
        assert "accesses" in text
        assert "reuse" in text

    def test_workload_stats(self, list_trace):
        stats = characterize(list_trace, with_reuse=False)
        assert stats.peak_live_objects > 1
        assert stats.groups >= 2
