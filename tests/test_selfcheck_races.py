"""REPROLINT lockset race detection (RL101-RL105)."""

import textwrap

from repro.selfcheck.engine import analyze_modules
from repro.selfcheck.loader import scan_source


def codes(source, path="inline.py"):
    module = scan_source(path, textwrap.dedent(source))
    return [f.code for f in analyze_modules([module])]


SHARED_COUNTER = """\
import threading


class Counter:  # repro: shared
    def __init__(self):
        self._lock = threading.Lock()
        self.count = 0

    def bump(self):
        {body}
"""


class TestRL101UnguardedMutation:
    def test_unguarded_mutation_fires(self):
        assert codes(
            SHARED_COUNTER.format(body="self.count += 1")
        ) == ["RL101"]

    def test_mutation_under_lock_is_clean(self):
        source = SHARED_COUNTER.format(
            body="with self._lock:\n            self.count += 1"
        )
        assert codes(source) == []

    def test_init_assignments_are_exempt(self):
        assert codes(SHARED_COUNTER.format(body="pass")) == []

    def test_unshared_class_is_exempt(self):
        source = SHARED_COUNTER.format(body="self.count += 1").replace(
            "  # repro: shared", ""
        )
        assert codes(source) == []

    def test_mutating_method_call_counts(self):
        source = """\
        import threading


        class Bag:  # repro: shared
            def __init__(self):
                self._lock = threading.Lock()
                self.items = []

            def put(self, item):
                self.items.append(item)
        """
        assert codes(source) == ["RL101"]

    def test_allow_comment_suppresses(self):
        source = SHARED_COUNTER.format(
            body="self.count += 1  # repro: allow(RL101)"
        )
        assert codes(source) == []

    def test_private_helper_inherits_call_site_lock(self):
        source = """\
        import threading


        class Counter:  # repro: shared
            def __init__(self):
                self._lock = threading.Lock()
                self.count = 0

            def bump(self):
                with self._lock:
                    self._advance()

            def _advance(self):
                self.count += 1
        """
        assert codes(source) == []

    def test_locked_suffix_asserts_the_lock(self):
        source = """\
        import threading


        class Counter:  # repro: shared
            def __init__(self):
                self._lock = threading.Lock()
                self.count = 0

            def _advance_locked(self):
                self.count += 1
        """
        assert codes(source) == []


class TestRL102TornRead:
    def test_two_guarded_attrs_read_unlocked(self):
        source = """\
        import threading


        class Stats:  # repro: shared
            def __init__(self):
                self._lock = threading.Lock()
                self.hits = 0
                self.misses = 0

            def record(self, hit):
                with self._lock:
                    if hit:
                        self.hits += 1
                    else:
                        self.misses += 1

            def rate(self):
                return self.hits / (self.hits + self.misses)
        """
        assert codes(source) == ["RL102"]

    def test_single_attr_read_is_fine(self):
        source = """\
        import threading


        class Stats:  # repro: shared
            def __init__(self):
                self._lock = threading.Lock()
                self.hits = 0
                self.misses = 0

            def record(self, hit):
                with self._lock:
                    self.hits += 1
                    self.misses += 1

            def hit_total(self):
                return self.hits
        """
        assert codes(source) == []


class TestRL103IOUnderLock:
    def test_write_under_state_lock(self):
        source = """\
        import threading

        from repro.core.fsutil import atomic_write_text


        class Log:  # repro: shared
            def __init__(self):
                self._lock = threading.Lock()
                self.lines = []

            def flush(self, path):
                with self._lock:
                    atomic_write_text(path, "".join(self.lines))
        """
        assert codes(source) == ["RL103"]

    def test_write_under_sink_lock_is_the_fix(self):
        source = """\
        import threading

        from repro.core.fsutil import atomic_write_text


        class Log:  # repro: shared
            def __init__(self):
                self._lock = threading.Lock()
                self._sink_lock = threading.Lock()
                self.lines = []

            def flush(self, path):
                with self._sink_lock:
                    with self._lock:
                        text = "".join(self.lines)
                    atomic_write_text(path, text)
        """
        assert codes(source) == []

    def test_module_function_holding_local_lock(self):
        source = """\
        import threading

        _lock = threading.Lock()


        def flush(path, text):
            with _lock:
                open(path, "w")
        """
        # RL103 (I/O under a lock) and RL131 (non-atomic write)
        assert sorted(codes(source)) == ["RL103", "RL131"]


RL104_SOURCE = """\
import threading


class Digest:  # repro: synchronized-externally
    def __init__(self):
        self.count = 0

    def observe(self):
        self.count += 1


class Owner:  # repro: shared
    def __init__(self):
        self._lock = threading.Lock()
        self.digest = Digest()

    def record(self):
        {body}
"""


class TestRL104ExternallyGuardedCalls:
    def test_unlocked_call_fires(self):
        assert codes(
            RL104_SOURCE.format(body="self.digest.observe()")
        ) == ["RL104"]

    def test_call_under_lock_is_clean(self):
        body = "with self._lock:\n            self.digest.observe()"
        assert codes(RL104_SOURCE.format(body=body)) == []

    def test_guarded_class_internals_are_exempt(self):
        # Digest.observe mutates unlocked, but the contract moves the
        # obligation to the owner: no RL101/RL105 inside Digest
        body = "with self._lock:\n            self.digest.observe()"
        assert codes(RL104_SOURCE.format(body=body)) == []


class TestRL105NoLockAtAll:
    def test_shared_class_without_lock(self):
        source = """\
        class Registry:  # repro: shared
            def __init__(self):
                self.entries = {}

            def put(self, key, value):
                self.entries[key] = value
        """
        assert codes(source) == ["RL105"]

    def test_rl105_subsumes_per_site_reports(self):
        source = """\
        class Registry:  # repro: shared
            def __init__(self):
                self.a = 0
                self.b = 0

            def both(self):
                self.a += 1
                self.b += 1
        """
        assert codes(source) == ["RL105"]

    def test_immutable_shared_class_is_clean(self):
        source = """\
        class Frozen:  # repro: shared
            def __init__(self):
                self.value = 42

            def get(self):
                return self.value
        """
        assert codes(source) == []


class TestSharednessPropagation:
    def test_composition_propagates_sharedness(self):
        source = """\
        import threading


        class Inner:
            def __init__(self):
                self.n = 0

            def tick(self):
                self.n += 1


        class Outer:  # repro: shared
            def __init__(self):
                self._lock = threading.Lock()
                self.inner = Inner()
        """
        # Inner becomes shared through composition and owns no lock
        assert codes(source) == ["RL105"]

    def test_inheritance_propagates_sharedness(self):
        source = """\
        class Base:  # repro: shared
            def __init__(self):
                self.n = 0


        class Child(Base):
            def __init__(self):
                super().__init__()
                self.m = 0

            def tick(self):
                self.m += 1
        """
        assert codes(source) == ["RL105"]
