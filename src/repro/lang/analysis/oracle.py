"""Static-vs-profiled oracle: check MIRCHECK's predictions against LEAP.

The analyzer in :mod:`repro.lang.analysis.static_lmad` predicts, per
static instruction and per object group, the exact (serial, offset)
point set a program will touch.  LEAP *observes* the same thing by
running the program on the simulated process and compressing the probe
stream.  This module runs both on one shared parse tree and compares:

* **LMAD agreement** -- for every proved-regular static instruction,
  the predicted point stream and the profiled point stream (projected
  from (serial, offset, time) down to (serial, offset)) are pushed
  through the same :class:`~repro.compression.lmad.LMADCompressor`, and
  the resulting descriptor lists must be identical.  Canonicalizing
  both sides through one compressor makes the comparison independent of
  how either side happened to factor its descriptors.
* **Execution counts** -- static trip-count arithmetic vs the profiler's
  per-instruction exec counters.
* **Dependence agreement** -- static store/load pairs proved to
  intersect vs the profiled MDF table
  (:func:`repro.postprocess.dependence.analyze_dependences`), restricted
  to pairs whose two endpoints are both proved-regular (the static side
  abstains on ``unknown`` instructions, it is never *wrong* about them).

Sharing one :class:`~repro.lang.ast.Program` between the interpreter and
the analyzer is what makes instruction identity trivial: the dynamic
instruction name is ``{static name}#{seq}`` where ``seq`` is the
interpreter's first-touch intern order for the same AST node object.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.compression.lmad import LMAD, LMADCompressor
from repro.lang import Interpreter, parse
from repro.lang.analysis.static_lmad import (
    REGULAR_CLASSES,
    StaticLmadAnalyzer,
    StaticLmadResult,
)
from repro.lang.ast import Program
from repro.postprocess.dependence import analyze_dependences
from repro.profilers.leap import LeapProfile, LeapProfiler
from repro.runtime.process import Process

#: compressor budget used on both sides of every comparison
ORACLE_BUDGET = 256


def canonical_lmads(
    points: Sequence[Tuple[int, int]], budget: int = ORACLE_BUDGET
) -> Tuple[LMAD, ...]:
    """Canonical descriptor list for a 2-D point stream."""
    compressor = LMADCompressor(dims=2, budget=budget)
    compressor.feed_all(points)
    return tuple(compressor.finish().lmads)


@dataclass(frozen=True)
class InstructionVerdict:
    """One static instruction checked against its profiled counterpart."""

    static_name: str
    dynamic_name: Optional[str]
    verb: str
    classification: str
    static_exec: int
    dynamic_exec: Optional[int]
    #: per-site comparison: site -> True/False, or None when the
    #: profiled entry was lossy (overflowed) and has no exact stream
    site_matches: Dict[str, Optional[bool]] = field(default_factory=dict)

    @property
    def exec_match(self) -> Optional[bool]:
        if self.dynamic_exec is None:
            return None
        return self.static_exec == self.dynamic_exec

    @property
    def lmads_match(self) -> Optional[bool]:
        """True when every comparable site matched, False on any
        mismatch, None when nothing was comparable."""
        verdicts = [v for v in self.site_matches.values() if v is not None]
        if any(v is False for v in verdicts):
            return False
        return True if verdicts else None

    def to_dict(self) -> dict:
        return {
            "static_name": self.static_name,
            "dynamic_name": self.dynamic_name,
            "verb": self.verb,
            "classification": self.classification,
            "static_exec": self.static_exec,
            "dynamic_exec": self.dynamic_exec,
            "exec_match": self.exec_match,
            "lmads_match": self.lmads_match,
            "site_matches": dict(self.site_matches),
        }


@dataclass
class OracleReport:
    """The full static-vs-profiled comparison for one program."""

    entry: str
    verdicts: List[InstructionVerdict] = field(default_factory=list)
    #: dependence pairs as (store static-name, load static-name)
    static_pairs: Set[Tuple[str, str]] = field(default_factory=set)
    profiled_pairs: Set[Tuple[str, str]] = field(default_factory=set)
    #: pairs whose endpoints are both proved-regular: the comparable set
    comparable_pairs: Set[Tuple[str, str]] = field(default_factory=set)

    # -- LMAD / exec-count agreement -------------------------------------

    @property
    def regular(self) -> List[InstructionVerdict]:
        return [
            v for v in self.verdicts if v.classification in REGULAR_CLASSES
        ]

    @property
    def lmad_compared(self) -> int:
        return sum(1 for v in self.regular if v.lmads_match is not None)

    @property
    def lmad_matched(self) -> int:
        return sum(1 for v in self.regular if v.lmads_match)

    @property
    def lmad_agreement(self) -> float:
        compared = self.lmad_compared
        return self.lmad_matched / compared if compared else 1.0

    @property
    def exec_agreement(self) -> float:
        compared = [v for v in self.regular if v.exec_match is not None]
        if not compared:
            return 1.0
        return sum(1 for v in compared if v.exec_match) / len(compared)

    # -- dependence agreement --------------------------------------------

    @property
    def dependence_agree(self) -> Set[Tuple[str, str]]:
        return self.static_pairs & self.profiled_pairs & self.comparable_pairs

    @property
    def static_only_pairs(self) -> Set[Tuple[str, str]]:
        """Statically proved dependences the profiler never observed."""
        return (self.static_pairs & self.comparable_pairs) - self.profiled_pairs

    @property
    def profiled_only_pairs(self) -> Set[Tuple[str, str]]:
        """Profiled dependences the static side proved independent."""
        return (self.profiled_pairs & self.comparable_pairs) - self.static_pairs

    @property
    def dependence_agreement(self) -> float:
        relevant = (self.static_pairs | self.profiled_pairs) & self.comparable_pairs
        if not relevant:
            return 1.0
        return len(self.dependence_agree) / len(relevant)

    @property
    def clean(self) -> bool:
        """No disagreement anywhere the static side claimed precision."""
        return (
            self.lmad_agreement == 1.0
            and self.exec_agreement == 1.0
            and not self.static_only_pairs
            and not self.profiled_only_pairs
        )

    def to_dict(self) -> dict:
        return {
            "entry": self.entry,
            "instructions": [v.to_dict() for v in self.verdicts],
            "lmad_compared": self.lmad_compared,
            "lmad_matched": self.lmad_matched,
            "lmad_agreement": self.lmad_agreement,
            "exec_agreement": self.exec_agreement,
            "static_pairs": sorted(self.static_pairs),
            "profiled_pairs": sorted(self.profiled_pairs),
            "static_only_pairs": sorted(self.static_only_pairs),
            "profiled_only_pairs": sorted(self.profiled_only_pairs),
            "dependence_agreement": self.dependence_agreement,
            "clean": self.clean,
        }


class StaticOracle:
    """Run the profiler and the static analyzer on one shared program."""

    def __init__(
        self,
        source: str,
        entry: str = "main",
        args: Tuple[int, ...] = (),
        budget: int = ORACLE_BUDGET,
    ) -> None:
        self.source = source
        self.entry = entry
        self.args = args
        self.budget = budget
        self.program: Program = parse(source)
        self.interpreter: Optional[Interpreter] = None
        self.profile: Optional[LeapProfile] = None
        self.static: Optional[StaticLmadResult] = None

    def run(self) -> OracleReport:
        process = Process()
        interpreter = Interpreter(self.program, process)
        interpreter.run(self.entry, self.args)
        profile = LeapProfiler(budget=self.budget).profile(process.trace)
        static = StaticLmadAnalyzer(
            self.program, self.entry, self.args
        ).run()
        self.interpreter = interpreter
        self.profile = profile
        self.static = static

        # Identity maps: static node -> dynamic instruction id, and
        # group label -> group id.
        instructions_by_name = {
            instr.name: instr for instr in process.instructions.values()
        }
        group_of_label = {
            label: gid for gid, label in profile.group_labels.items()
        }

        report = OracleReport(entry=self.entry)
        key_to_iid: Dict[int, int] = {}
        for node_key, instruction in sorted(
            static.instructions.items(), key=lambda kv: kv[1].name
        ):
            sequence = interpreter._sites.get(node_key)
            dynamic_name = (
                f"{instruction.name}#{sequence}"
                if sequence is not None
                else None
            )
            dynamic = (
                instructions_by_name.get(dynamic_name)
                if dynamic_name
                else None
            )
            dynamic_exec = None
            site_matches: Dict[str, Optional[bool]] = {}
            if dynamic is not None:
                iid = dynamic.instruction_id
                key_to_iid[node_key] = iid
                dynamic_exec = profile.exec_counts.get(iid, 0)
                if instruction.classification in REGULAR_CLASSES:
                    site_matches = self._compare_sites(
                        static, node_key, instruction.sites, profile,
                        iid, group_of_label,
                    )
            report.verdicts.append(
                InstructionVerdict(
                    static_name=instruction.name,
                    dynamic_name=dynamic_name,
                    verb=instruction.verb,
                    classification=instruction.classification,
                    static_exec=instruction.exec_count,
                    dynamic_exec=dynamic_exec,
                    site_matches=site_matches,
                )
            )

        self._compare_dependences(report, static, profile, key_to_iid)
        return report

    # -- internals -------------------------------------------------------

    def _compare_sites(
        self,
        static: StaticLmadResult,
        node_key: int,
        sites: Sequence[str],
        profile: LeapProfile,
        iid: int,
        group_of_label: Dict[str, int],
    ) -> Dict[str, Optional[bool]]:
        """Per-site canonical LMAD comparison for one instruction."""
        matches: Dict[str, Optional[bool]] = {}
        dynamic_entries = profile.entries_for_instruction(iid)
        for site in sites:
            gid = group_of_label.get(site)
            entry = dynamic_entries.get(gid) if gid is not None else None
            if entry is None:
                # The profiler never attributed an access of this
                # instruction to this group: disagreement.
                matches[site] = False
                continue
            if not entry.complete:
                matches[site] = None  # lossy profile: nothing exact
                continue
            profiled = canonical_lmads(
                [tuple(point[:2]) for point in entry.expand()], self.budget
            )
            predicted = canonical_lmads(
                static.points(node_key, site), self.budget
            )
            matches[site] = predicted == profiled
        return matches

    def _compare_dependences(
        self,
        report: OracleReport,
        static: StaticLmadResult,
        profile: LeapProfile,
        key_to_iid: Dict[int, int],
    ) -> None:
        names = {
            key: instr.name for key, instr in static.instructions.items()
        }
        regular_keys = {
            key
            for key, instr in static.instructions.items()
            if instr.classification in REGULAR_CLASSES
        }
        for writer_key, reader_key, __ in static.dependences():
            report.static_pairs.add((names[writer_key], names[reader_key]))
        for writer_key in regular_keys:
            if static.instructions[writer_key].verb != "store":
                continue
            for reader_key in regular_keys:
                if static.instructions[reader_key].verb != "load":
                    continue
                report.comparable_pairs.add(
                    (names[writer_key], names[reader_key])
                )
        iid_to_name = {
            iid: names[key] for key, iid in key_to_iid.items()
        }
        mdf = analyze_dependences(profile)
        for (store_id, load_id), conflicts in mdf.conflicts.items():
            if conflicts <= 0:
                continue
            store = iid_to_name.get(store_id)
            load = iid_to_name.get(load_id)
            if store is not None and load is not None:
                report.profiled_pairs.add((store, load))


def validate_source(
    source: str,
    entry: str = "main",
    args: Tuple[int, ...] = (),
    budget: int = ORACLE_BUDGET,
) -> OracleReport:
    """Convenience wrapper: parse, profile, analyze, compare."""
    return StaticOracle(source, entry, args, budget).run()
