"""HTTP request-body framing shared by the daemon and the router.

``BaseHTTPRequestHandler`` hands its subclass the raw socket stream, so
anything serving POST bodies has to decode the framing itself.  Both
framings live here, once, for :class:`~repro.store.server.StoreServer`
and :class:`~repro.cluster.router.ClusterRouter`:

* a validated ``Content-Length`` read in bounded pieces -- a short read
  is a 400, never a silently truncated document;
* ``Transfer-Encoding: chunked`` -- which the stdlib server does *not*
  decode -- for clients streaming a body whose length they do not know
  yet.

Oversized bodies are a 413 before the bytes are buffered anywhere.
"""

from __future__ import annotations

from typing import Iterator


class RequestError(ValueError):
    """A malformed request, carrying the HTTP status to answer with.

    Subclasses :class:`ValueError` so code that predates it still maps
    it to a 4xx, but dispatchers honour :attr:`status` (400 for
    malformed framing, 413 for oversized bodies) when they can.
    """

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


def iter_body(request, max_body_bytes: int) -> Iterator[bytes]:
    """Yield the request body as chunks, whatever its framing."""
    encoding = (request.headers.get("Transfer-Encoding") or "").lower()
    if "chunked" in encoding:
        yield from iter_chunked_body(request.rfile, max_body_bytes)
        return
    raw = (request.headers.get("Content-Length") or "").strip()
    if not raw.isdigit():
        raise RequestError(
            400, f"missing or malformed Content-Length: {raw!r}"
        )
    length = int(raw)
    if length > max_body_bytes:
        raise RequestError(
            413,
            f"body of {length} bytes exceeds the "
            f"{max_body_bytes}-byte cap",
        )
    remaining = length
    while remaining > 0:
        piece = request.rfile.read(min(remaining, 1 << 16))
        if not piece:
            raise RequestError(
                400,
                f"request body truncated: read {length - remaining} "
                f"of {length} bytes",
            )
        remaining -= len(piece)
        yield piece


def iter_chunked_body(rfile, max_body_bytes: int) -> Iterator[bytes]:
    """Decode one ``Transfer-Encoding: chunked`` body from the wire."""
    total = 0
    while True:
        line = rfile.readline(128)
        if not line or not line.endswith(b"\n"):
            raise RequestError(400, "truncated chunked body")
        size_text = line.split(b";", 1)[0].strip()
        try:
            size = int(size_text, 16)
        except ValueError:
            raise RequestError(
                400, f"malformed chunk size {size_text!r}"
            ) from None
        if size == 0:
            # trailer section, then the final blank line
            while True:
                trailer = rfile.readline(1024)
                if trailer in (b"\r\n", b"\n", b""):
                    return
            continue
        total += size
        if total > max_body_bytes:
            raise RequestError(
                413,
                f"chunked body exceeds the {max_body_bytes}-byte cap",
            )
        pieces = []
        remaining = size
        while remaining > 0:
            piece = rfile.read(min(remaining, 1 << 16))
            if not piece:
                raise RequestError(400, "truncated chunk payload")
            remaining -= len(piece)
            pieces.append(piece)
        yield b"".join(pieces)
        terminator = rfile.readline(4)
        if terminator not in (b"\r\n", b"\n"):
            raise RequestError(400, "malformed chunk terminator")


def read_body(request, max_body_bytes: int) -> bytes:
    """The whole request body as one byte string."""
    return b"".join(iter_body(request, max_body_bytes))
