"""The PROFSTORE serving daemon: endpoints, errors, concurrency, cache."""

import json
import threading
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.core.events import AccessKind
from repro.core.profile_io import dumps
from repro.profilers.leap import LeapProfiler
from repro.profilers.whomp import WhompProfiler
from repro.runtime.process import Process
from repro.store import ProfileStore
from repro.store.server import StoreServer
from repro.telemetry import Telemetry


def make_leap_text(offsets):
    process = Process()
    ld = process.instruction("ld", AccessKind.LOAD)
    block = process.malloc("site", 512, type_name="long[]")
    for offset in offsets:
        process.load(ld, block + (offset % 64) * 8)
    process.free(block)
    process.finish()
    return dumps(LeapProfiler().profile(process.trace))


@pytest.fixture(scope="module")
def documents():
    return {
        "alpha": make_leap_text(range(80)),
        "beta": make_leap_text(range(0, 160, 2)),
    }


@pytest.fixture()
def server(tmp_path, documents):
    store = ProfileStore(str(tmp_path), cache_size=8)
    for workload, text in documents.items():
        store.ingest_text(text, workload)
    instance = StoreServer(store, port=0, telemetry=Telemetry()).start()
    yield instance
    instance.stop()


def fetch(server, path, method="GET", data=None):
    request = urllib.request.Request(
        server.url + path, data=data, method=method
    )
    with urllib.request.urlopen(request, timeout=10) as response:
        return response.status, json.loads(response.read().decode("utf-8"))


def fetch_error(server, path, method="GET", data=None):
    try:
        fetch(server, path, method, data)
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read().decode("utf-8"))
    raise AssertionError(f"{path} unexpectedly succeeded")


class TestEndpoints:
    def test_healthz(self, server):
        status, payload = fetch(server, "/healthz")
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["runs"] == 2
        assert payload["max_concurrent"] == server.max_concurrent
        assert payload["uptime_seconds"] >= 0

    def test_get_is_bit_identical(self, server, documents):
        status, payload = fetch(server, "/get?run=alpha@leap")
        assert status == 200
        assert payload == json.loads(documents["alpha"])

    def test_query_runs_and_entries(self, server):
        __, runs = fetch(server, "/query/runs?workload=alpha")
        assert [r["workload"] for r in runs["runs"]] == ["alpha"]
        __, entries = fetch(server, "/query/entries?min_count=1")
        assert entries["entries"]
        assert {row["workload"] for row in entries["entries"]} == {
            "alpha", "beta",
        }
        __, shapes = fetch(server, "/query/shapes?run=alpha@leap")
        assert shapes["shapes"]

    def test_diff_endpoint(self, server):
        status, payload = fetch(server, "/diff?a=alpha@leap&b=alpha@leap")
        assert status == 200
        assert payload["identical"]
        assert payload["regressions"] == []
        __, drifted = fetch(server, "/diff?a=alpha@leap&b=beta@leap")
        assert not drifted["identical"]

    def test_ingest_and_gc(self, server):
        document = make_leap_text(range(0, 120, 3)).encode("utf-8")
        status, payload = fetch(
            server, "/ingest?workload=gamma", method="POST", data=document
        )
        assert status == 201
        assert payload["kind"] == "leap"
        status, got = fetch(server, f"/get?run={payload['run_id']}")
        assert got == json.loads(document.decode("utf-8"))
        server.store.drop_run(payload["run_id"])
        status, stats = fetch(server, "/gc", method="POST")
        assert status == 200
        assert stats["removed"] == 1

    def test_metricsz_counts_requests(self, server):
        for __ in range(3):
            fetch(server, "/healthz")
        __, metrics = fetch(server, "/metricsz")
        assert metrics["counters"]["store.http.healthz_total"] >= 3
        assert metrics["counters"]["store.http.requests_total"] >= 3
        assert metrics["latency"] is None or metrics["latency"]["count"] >= 3
        assert {"hits", "misses", "evictions", "hit_rate"} <= set(
            metrics["cache"]
        )


class TestErrors:
    def test_unknown_run_is_404(self, server):
        code, payload = fetch_error(server, "/get?run=r999999")
        assert code == 404
        assert "no run" in payload["error"]

    def test_unknown_endpoint_is_404(self, server):
        code, __ = fetch_error(server, "/nope")
        assert code == 404

    def test_missing_parameter_is_400(self, server):
        code, payload = fetch_error(server, "/get")
        assert code == 400
        assert "run" in payload["error"]

    def test_bad_parameter_is_400(self, server):
        code, __ = fetch_error(server, "/query/entries?instruction=banana")
        assert code == 400

    def test_corrupt_ingest_is_400_and_stores_nothing(self, server):
        before = server.store.stats()["runs"]
        code, payload = fetch_error(
            server, "/ingest?workload=bad", method="POST", data=b"not json"
        )
        assert code == 400
        assert server.store.stats()["runs"] == before
        __, metrics = fetch(server, "/metricsz")
        assert metrics["counters"]["store.http.errors_total"] >= 1


class TestConcurrency:
    def test_parallel_mixed_requests_all_succeed(self, server):
        paths = [
            "/healthz",
            "/query/runs",
            "/query/entries?min_count=1",
            "/diff?a=alpha@leap&b=beta@leap",
            "/get?run=alpha@leap",
            "/query/shapes?run=beta@leap",
        ] * 4
        with ThreadPoolExecutor(max_workers=12) as pool:
            results = list(pool.map(lambda p: fetch(server, p), paths))
        assert all(status == 200 for status, __ in results)
        __, metrics = fetch(server, "/metricsz")
        assert metrics["counters"]["store.http.requests_total"] >= len(paths)

    def test_concurrent_http_ingest_is_consistent(self, server):
        documents = [
            make_leap_text(range(0, 64, step)).encode("utf-8")
            for step in range(1, 7)
        ]
        barrier = threading.Barrier(len(documents))

        def ingest(index):
            barrier.wait()
            return fetch(
                server,
                f"/ingest?workload=conc{index}",
                method="POST",
                data=documents[index],
            )

        with ThreadPoolExecutor(max_workers=len(documents)) as pool:
            results = list(pool.map(ingest, range(len(documents))))
        assert all(status == 201 for status, __ in results)
        run_ids = [payload["run_id"] for __, payload in results]
        assert len(set(run_ids)) == len(run_ids)
        for index, document in enumerate(documents):
            __, got = fetch(server, f"/get?run=conc{index}@leap")
            assert got == json.loads(document.decode("utf-8"))

    def test_repeated_queries_hit_the_lru(self, server):
        """The acceptance floor: >= 50% hit rate on a repeated-query
        pattern (every decode after the first is a hit)."""
        for __ in range(10):
            fetch(server, "/query/entries?workload=alpha&min_count=1")
        __, metrics = fetch(server, "/metricsz")
        assert metrics["cache"]["hits"] >= 9
        assert metrics["cache"]["hit_rate"] >= 0.5


def fetch_raw(server, path):
    with urllib.request.urlopen(server.url + path, timeout=10) as response:
        return response.status, dict(response.headers), response.read()


class TestClusterPrimitives:
    """The shard-side surface SCALE-OUT's router builds on."""

    def test_healthz_reports_bound_address(self, server):
        __, payload = fetch(server, "/healthz")
        host, port = server.address
        assert payload["host"] == host
        assert payload["port"] == port

    def test_blob_serves_raw_bytes_with_provenance(self, server, documents):
        data = documents["alpha"].encode("utf-8")
        from repro.store.blobs import sha256_hex

        digest = sha256_hex(data)
        status, headers, body = fetch_raw(server, f"/blob?digest={digest}")
        assert status == 200
        assert body == data
        assert headers["X-Repro-Digest"] == digest
        assert headers["X-Repro-Workload"] == "alpha"
        assert headers["X-Repro-Kind"] == "leap"

    def test_blob_resolves_run_selectors(self, server, documents):
        data = documents["beta"].encode("utf-8")
        from repro.store.blobs import sha256_hex

        status, headers, body = fetch_raw(server, "/blob?run=beta@leap")
        assert status == 200
        assert body == data
        assert headers["X-Repro-Digest"] == sha256_hex(data)

    def test_repair_force_heals_a_corrupt_blob(self, server, documents):
        import os

        from repro.store.blobs import sha256_hex

        data = documents["alpha"].encode("utf-8")
        digest = sha256_hex(data)
        blob_path = server.store.blobs.path(digest)
        with open(blob_path, "wb") as handle:
            handle.write(b"garbage")
        assert os.path.getsize(blob_path) == len(b"garbage")
        status, payload = fetch(
            server,
            f"/repair?digest={digest}&workload=alpha",
            method="POST",
            data=data,
        )
        assert status == 200
        assert payload["replaced"] is True
        __, __headers, healed = fetch_raw(server, f"/blob?digest={digest}")
        assert healed == data

    def test_repair_creates_a_run_for_new_bytes(self, server):
        from repro.store.blobs import sha256_hex

        data = make_leap_text(range(0, 96, 3)).encode("utf-8")
        digest = sha256_hex(data)
        status, payload = fetch(
            server,
            f"/repair?digest={digest}&workload=orphan",
            method="POST",
            data=data,
        )
        assert status == 200
        assert payload["created_run"]  # the run id of the new record
        __, got = fetch(server, f"/get?run={digest}")
        assert got == json.loads(data.decode("utf-8"))

    def test_repair_rejects_mismatched_digest(self, server, documents):
        data = documents["alpha"].encode("utf-8")
        status, payload = fetch_error(
            server, f"/repair?digest={'0' * 64}&workload=alpha",
            method="POST", data=data,
        )
        assert status == 400
        assert "hash" in payload["error"]

    def test_repair_rejects_corrupt_payload(self, server, documents):
        from repro.store.blobs import sha256_hex

        bad = b"this is not a profile document"
        status, __payload = fetch_error(
            server, f"/repair?digest={sha256_hex(bad)}&workload=x",
            method="POST", data=bad,
        )
        assert status == 400

    def test_drain_with_idle_server_emits_shutdown_event(
        self, tmp_path, documents
    ):
        store = ProfileStore(str(tmp_path / "drain"), cache_size=8)
        instance = StoreServer(store, port=0, telemetry=Telemetry()).start()
        try:
            assert instance.drain(deadline_seconds=1.0) is True
        finally:
            instance.stop()
        shutdowns = [
            record
            for record in instance.events.tail()
            if record["kind"] == "server_shutdown"
        ]
        assert len(shutdowns) == 1
        assert shutdowns[0]["drained"] is True
        assert shutdowns[0]["in_flight"] == 0
        assert shutdowns[0]["deadline_seconds"] == 1.0

    def test_drain_waits_for_inflight_requests(self, server):
        """A request in flight when drain starts completes before the
        drain returns (the daemon never drops accepted work)."""
        import time

        entered = threading.Event()
        release = threading.Event()
        original = server.query.find_runs

        def slow_find_runs(*args, **kwargs):
            entered.set()
            release.wait(timeout=5.0)
            return original(*args, **kwargs)

        server.query.find_runs = slow_find_runs
        try:
            result = {}

            def client():
                result["answer"] = fetch(server, "/query/runs")

            thread = threading.Thread(target=client)
            thread.start()
            assert entered.wait(timeout=5.0)

            def drain_late():
                time.sleep(0.1)
                release.set()

            threading.Thread(target=drain_late).start()
            assert server.drain(deadline_seconds=5.0) is True
            thread.join(timeout=5.0)
            assert result["answer"][0] == 200
        finally:
            server.query.find_runs = original
