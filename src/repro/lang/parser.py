"""Recursive-descent parser for the mini-IR language.

Grammar (roughly)::

    program   := (struct | global | function)*
    struct    := "struct" IDENT "{" (type IDENT ";")* "}"
    global    := "global" type IDENT ";"
    function  := "fn" IDENT "(" params? ")" (":" type)? block
    block     := "{" stmt* "}"
    stmt      := "var" IDENT ":" type ("=" expr)? ";"
               | "if" "(" expr ")" block ("else" (block | if-stmt))?
               | "while" "(" expr ")" block
               | "for" "(" simple? ";" expr? ";" simple? ")" block
               | "return" expr? ";" | "break" ";" | "continue" ";"
               | "delete" expr ";"
               | simple ";"
    simple    := lvalue "=" expr | expr
    type      := ("int" | IDENT) "*"* ("[" INT "]")?
    expr      := precedence-climbing over || && == != < <= > >= + - * / %
    primary   := INT | "null" | "true" | "false" | IDENT | call
               | "new" type ("[" expr "]")? | "(" expr ")"
               | "&" lvalue | unary
    postfix   := primary ("." IDENT | "->" IDENT | "[" expr "]")*
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.lang import ast
from repro.lang.lexer import LangError, Token, TokenKind, tokenize


class ParseError(LangError):
    """Raised when the token stream does not match the grammar."""


#: binary operator precedence (higher binds tighter)
PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "==": 3,
    "!=": 3,
    "<": 4,
    "<=": 4,
    ">": 4,
    ">=": 4,
    "+": 5,
    "-": 5,
    "*": 6,
    "/": 6,
    "%": 6,
}


class Parser:
    def __init__(self, source: str) -> None:
        self._tokens = tokenize(source)
        self._position = 0

    # -- token helpers ----------------------------------------------------

    @property
    def _current(self) -> Token:
        return self._tokens[self._position]

    def _advance(self) -> Token:
        token = self._current
        if token.kind is not TokenKind.EOF:
            self._position += 1
        return token

    def _check(self, text: str) -> bool:
        return self._current.text == text and self._current.kind in (
            TokenKind.PUNCT,
            TokenKind.KEYWORD,
        )

    def _accept(self, text: str) -> bool:
        if self._check(text):
            self._advance()
            return True
        return False

    def _expect(self, text: str) -> Token:
        if not self._check(text):
            raise ParseError(
                f"expected {text!r}, found {self._current.text!r}",
                self._current.line,
                self._current.column,
            )
        return self._advance()

    def _expect_ident(self) -> Token:
        if self._current.kind is not TokenKind.IDENT:
            raise ParseError(
                f"expected identifier, found {self._current.text!r}",
                self._current.line,
                self._current.column,
            )
        return self._advance()

    # -- entry point ----------------------------------------------------

    def parse_program(self) -> ast.Program:
        structs: List[ast.StructDecl] = []
        globals_: List[ast.GlobalDecl] = []
        functions: List[ast.FunctionDecl] = []
        while self._current.kind is not TokenKind.EOF:
            if self._check("struct"):
                structs.append(self._parse_struct())
            elif self._check("global"):
                globals_.append(self._parse_global())
            elif self._check("fn"):
                functions.append(self._parse_function())
            else:
                raise ParseError(
                    f"expected declaration, found {self._current.text!r}",
                    self._current.line,
                    self._current.column,
                )
        return ast.Program(tuple(structs), tuple(globals_), tuple(functions))

    # -- declarations ------------------------------------------------------

    def _parse_struct(self) -> ast.StructDecl:
        start = self._expect("struct")
        name = self._expect_ident().text
        self._expect("{")
        fields: List[ast.FieldDecl] = []
        while not self._accept("}"):
            field_type = self._parse_type()
            field_name = self._expect_ident()
            self._expect(";")
            fields.append(
                ast.FieldDecl(
                    field_name.text,
                    field_type,
                    field_name.line,
                    field_name.column,
                )
            )
        return ast.StructDecl(name, tuple(fields), start.line, start.column)

    def _parse_global(self) -> ast.GlobalDecl:
        start = self._expect("global")
        type_expr = self._parse_type()
        name = self._expect_ident().text
        self._expect(";")
        return ast.GlobalDecl(name, type_expr, start.line, start.column)

    def _parse_function(self) -> ast.FunctionDecl:
        start = self._expect("fn")
        name = self._expect_ident().text
        self._expect("(")
        params: List[ast.Param] = []
        if not self._check(")"):
            while True:
                param_name = self._expect_ident().text
                self._expect(":")
                params.append(ast.Param(param_name, self._parse_type()))
                if not self._accept(","):
                    break
        self._expect(")")
        return_type: Optional[ast.TypeExpr] = None
        if self._accept(":"):
            return_type = self._parse_type()
        body = self._parse_block()
        return ast.FunctionDecl(
            name, tuple(params), return_type, body, start.line, start.column
        )

    def _parse_type(self, allow_array: bool = True) -> ast.TypeExpr:
        token = self._current
        if token.text == "int" and token.kind is TokenKind.KEYWORD:
            self._advance()
            name = "int"
        elif token.kind is TokenKind.IDENT:
            self._advance()
            name = token.text
        else:
            raise ParseError(
                f"expected type, found {token.text!r}", token.line, token.column
            )
        depth = 0
        while self._accept("*"):
            depth += 1
        length: Optional[int] = None
        if allow_array and self._accept("["):
            length_token = self._advance()
            if length_token.kind is not TokenKind.INT:
                raise ParseError(
                    "array length must be an integer literal",
                    length_token.line,
                    length_token.column,
                )
            length = int(length_token.text, 0)
            self._expect("]")
        return ast.TypeExpr(name, depth, length)

    # -- statements --------------------------------------------------------

    def _parse_block(self) -> Tuple[ast.Stmt, ...]:
        self._expect("{")
        statements: List[ast.Stmt] = []
        while not self._accept("}"):
            statements.append(self._parse_statement())
        return tuple(statements)

    def _parse_statement(self) -> ast.Stmt:
        token = self._current
        if self._check("var"):
            return self._parse_var_decl()
        if self._check("if"):
            return self._parse_if()
        if self._check("while"):
            self._advance()
            self._expect("(")
            condition = self._parse_expression()
            self._expect(")")
            body = self._parse_block()
            return ast.While(token.line, token.column, condition, body)
        if self._check("for"):
            return self._parse_for()
        if self._check("return"):
            self._advance()
            value = None if self._check(";") else self._parse_expression()
            self._expect(";")
            return ast.Return(token.line, token.column, value)
        if self._check("break"):
            self._advance()
            self._expect(";")
            return ast.Break(token.line, token.column)
        if self._check("continue"):
            self._advance()
            self._expect(";")
            return ast.Continue(token.line, token.column)
        if self._check("delete"):
            self._advance()
            pointer = self._parse_expression()
            self._expect(";")
            return ast.Delete(token.line, token.column, pointer)
        statement = self._parse_simple()
        self._expect(";")
        return statement

    def _parse_var_decl(self) -> ast.VarDecl:
        start = self._expect("var")
        name = self._expect_ident().text
        self._expect(":")
        type_expr = self._parse_type()
        initializer = None
        if self._accept("="):
            initializer = self._parse_expression()
        self._expect(";")
        return ast.VarDecl(start.line, start.column, name, type_expr, initializer)

    def _parse_if(self) -> ast.If:
        start = self._expect("if")
        self._expect("(")
        condition = self._parse_expression()
        self._expect(")")
        then_body = self._parse_block()
        else_body: Tuple[ast.Stmt, ...] = ()
        if self._accept("else"):
            if self._check("if"):
                else_body = (self._parse_if(),)
            else:
                else_body = self._parse_block()
        return ast.If(start.line, start.column, condition, then_body, else_body)

    def _parse_for(self) -> ast.While:
        """``for`` desugars to a while loop with init/step spliced in."""
        start = self._expect("for")
        self._expect("(")
        init = None if self._check(";") else self._parse_simple_or_decl()
        self._expect(";")
        condition = (
            ast.IntLiteral(start.line, start.column, 1)
            if self._check(";")
            else self._parse_expression()
        )
        self._expect(";")
        step = None if self._check(")") else self._parse_simple()
        self._expect(")")
        body = self._parse_block()
        loop = ast.While(start.line, start.column, condition, body, step)
        if init is None:
            return loop
        return _ForWrapper(start.line, start.column, init, loop)

    def _parse_simple_or_decl(self) -> ast.Stmt:
        if self._check("var"):
            # var decl without the trailing semicolon (consumed by for)
            start = self._expect("var")
            name = self._expect_ident().text
            self._expect(":")
            type_expr = self._parse_type()
            initializer = None
            if self._accept("="):
                initializer = self._parse_expression()
            return ast.VarDecl(start.line, start.column, name, type_expr, initializer)
        return self._parse_simple()

    def _parse_simple(self) -> ast.Stmt:
        expr = self._parse_expression()
        if self._accept("="):
            value = self._parse_expression()
            return ast.Assign(expr.line, expr.column, expr, value)
        return ast.ExprStmt(expr.line, expr.column, expr)

    # -- expressions -------------------------------------------------------

    def _parse_expression(self, min_precedence: int = 1) -> ast.Expr:
        left = self._parse_unary()
        while True:
            op = self._current.text
            precedence = PRECEDENCE.get(op)
            if (
                self._current.kind is not TokenKind.PUNCT
                or precedence is None
                or precedence < min_precedence
            ):
                return left
            self._advance()
            right = self._parse_expression(precedence + 1)
            left = ast.Binary(left.line, left.column, op, left, right)

    def _parse_unary(self) -> ast.Expr:
        token = self._current
        if self._accept("-"):
            return ast.Unary(token.line, token.column, "-", self._parse_unary())
        if self._accept("!"):
            return ast.Unary(token.line, token.column, "!", self._parse_unary())
        if self._accept("&"):
            return ast.AddressOf(token.line, token.column, self._parse_postfix())
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        while True:
            token = self._current
            if self._accept("."):
                expr = ast.FieldAccess(
                    token.line, token.column, expr, self._expect_ident().text, False
                )
            elif self._accept("->"):
                expr = ast.FieldAccess(
                    token.line, token.column, expr, self._expect_ident().text, True
                )
            elif self._accept("["):
                index = self._parse_expression()
                self._expect("]")
                expr = ast.Index(token.line, token.column, expr, index)
            else:
                return expr

    def _parse_primary(self) -> ast.Expr:
        token = self._current
        if token.kind is TokenKind.INT:
            self._advance()
            return ast.IntLiteral(token.line, token.column, int(token.text, 0))
        if self._accept("null"):
            return ast.NullLiteral(token.line, token.column)
        if self._accept("true"):
            return ast.IntLiteral(token.line, token.column, 1)
        if self._accept("false"):
            return ast.IntLiteral(token.line, token.column, 0)
        if self._accept("new"):
            # ``new T[n]``: n is a runtime expression, so the type is
            # parsed without an array suffix.
            type_expr = self._parse_type(allow_array=False)
            count = None
            if self._accept("["):
                count = self._parse_expression()
                self._expect("]")
            return ast.New(token.line, token.column, type_expr, count)
        if self._accept("("):
            expr = self._parse_expression()
            self._expect(")")
            return expr
        if token.kind is TokenKind.IDENT:
            self._advance()
            if self._accept("("):
                args: List[ast.Expr] = []
                if not self._check(")"):
                    while True:
                        args.append(self._parse_expression())
                        if not self._accept(","):
                            break
                self._expect(")")
                return ast.Call(token.line, token.column, token.text, tuple(args))
            return ast.VarRef(token.line, token.column, token.text)
        raise ParseError(
            f"expected expression, found {token.text!r}", token.line, token.column
        )


class _ForWrapper(ast.Stmt):
    """Internal statement pairing a for-loop's init with its while form.

    The interpreter executes ``init`` then the loop in the same scope.
    """

    def __init__(
        self, line: int, column: int, init: ast.Stmt, loop: ast.While
    ) -> None:
        super().__init__(line, column)
        object.__setattr__(self, "init", init)
        object.__setattr__(self, "loop", loop)


def parse(source: str) -> ast.Program:
    """Parse mini-IR source text into a :class:`~repro.lang.ast.Program`."""
    return Parser(source).parse_program()
